//! Workspace-level integration tests: the full stack (simulator → MPI →
//! overlap library → kernels → purification) exercised end to end through
//! the `ovcomm` facade.

use ovcomm::densemat::BlockBuf;
use ovcomm::densemat::{exact_density, fock_like_spectrum, gemm, BlockGrid, Matrix};
use ovcomm::kernels::{symm_square_cube_baseline, symm_square_cube_optimized, Mesh3D, SymmInput};
use ovcomm::prelude::*;
use ovcomm::purify::{purify_rank, KernelChoice, PurifyConfig};

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check mostly; also a minimal run through the prelude.
    let out = run(
        SimConfig::natural(2, 1, MachineProfile::test_profile()),
        |rc: RankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                w.send(1, 0, Payload::from_f64s(&[1.0]));
                0.0
            } else {
                w.recv(0, 0).to_f64s()[0]
            }
        },
    )
    .unwrap();
    assert_eq!(out.results[1], 1.0);
}

#[test]
fn full_pipeline_purification_matches_exact_projector() {
    // 27 ranks (3×3×3 mesh), optimized kernel with N_DUP = 2, real data.
    let n = 27;
    let nocc = 9;
    let seed = 31;
    let cfg = PurifyConfig {
        n,
        nocc,
        tol: 1e-10,
        max_iter: 60,
        phantom: false,
        seed,
    };
    let out = run(
        SimConfig::natural(27, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let res = purify_rank(&rc, &cfg, KernelChoice::Optimized { n_dup: 2 });
            (
                res.converged,
                res.d_block.map(|b| b.unwrap_real().clone().into_vec()),
                rc.rank(),
            )
        },
    )
    .unwrap();
    let p = 3;
    let grid = BlockGrid::new(n, p);
    let mut blocks = vec![Matrix::zeros(0, 0); p * p];
    for (converged, block, rank) in out.results {
        if let Some(v) = block {
            assert!(converged);
            let (i, j) = (rank / p, rank % p);
            let (r, c) = grid.block_dims(i, j);
            blocks[i * p + j] = Matrix::from_vec(r, c, v);
        }
    }
    let d = grid.assemble(&blocks);
    let exact = exact_density(&fock_like_spectrum(n, nocc), nocc, seed);
    assert!(d.max_abs_diff(&exact) < 1e-6);
}

#[test]
fn whole_runs_are_deterministic_across_repetitions() {
    let go = || {
        let cfg = PurifyConfig {
            n: 20,
            nocc: 6,
            tol: 1e-9,
            max_iter: 40,
            phantom: false,
            seed: 9,
        };
        run(
            SimConfig::natural(8, 4, MachineProfile::stampede2_skylake()),
            move |rc: RankCtx| {
                let res = purify_rank(&rc, &cfg, KernelChoice::Optimized { n_dup: 4 });
                (
                    res.iterations,
                    res.kernel_time.as_nanos(),
                    rc.now().as_nanos(),
                )
            },
        )
        .unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.inter_node_bytes, b.inter_node_bytes);
    assert_eq!(a.messages, b.messages);
}

#[test]
fn overlap_and_ppn_combine_for_the_headline_speedup() {
    // The paper's §V-D story at reduced scale: combining N_DUP overlap with
    // a better PPN beats the plain baseline by a wide margin.
    let n = 3000;
    let time_of = |ppn: usize, n_dup: usize| {
        run(
            SimConfig::natural(64, ppn, MachineProfile::stampede2_skylake()),
            move |rc: RankCtx| {
                let mesh = Mesh3D::new(&rc, 4);
                let grid = BlockGrid::new(n, 4);
                let d_block = (mesh.k == 0).then(|| {
                    let (r, c) = grid.block_dims(mesh.i, mesh.j);
                    BlockBuf::Phantom(r, c)
                });
                let input = SymmInput { n, d_block };
                rc.world().barrier();
                let t0 = rc.now();
                if n_dup == 0 {
                    let _ = symm_square_cube_baseline(&rc, &mesh, &input);
                } else {
                    let bundles = mesh.dup_bundles(n_dup);
                    let _ = symm_square_cube_optimized(&rc, &mesh, &bundles, &input);
                }
                rc.world().barrier();
                (rc.now() - t0).as_secs_f64()
            },
        )
        .unwrap()
        .results
        .into_iter()
        .fold(0.0f64, f64::max)
    };
    let baseline = time_of(1, 0);
    let combined = time_of(2, 4);
    assert!(
        combined < baseline,
        "combined techniques ({combined:.4}s) must beat the plain baseline ({baseline:.4}s)"
    );
}

#[test]
fn chunked_overlap_preserves_data_through_the_whole_stack() {
    // Random-ish data through NDup pipelines across mesh communicators.
    let out = run(
        SimConfig::natural(9, 3, MachineProfile::test_profile()),
        |rc: RankCtx| {
            let w = rc.world();
            let row = w
                .split((rc.rank() / 3) as i64, (rc.rank() % 3) as u64)
                .unwrap();
            let comms = NDupComms::new(&row, 3);
            let data: Vec<f64> = (0..100).map(|i| (rc.rank() * 100 + i) as f64).collect();
            let payload = Payload::from_f64s(&data);
            let got = overlapped_bcast(
                &comms,
                1,
                (row.rank() == 1).then_some(&payload),
                payload.len(),
            );
            got.to_f64s()
        },
    )
    .unwrap();
    // Every rank receives the data of its row's middle rank.
    for r in 0..9 {
        let root_world = (r / 3) * 3 + 1;
        let want: Vec<f64> = (0..100).map(|i| (root_world * 100 + i) as f64).collect();
        assert_eq!(out.results[r], want, "rank {r}");
    }
}

#[test]
fn gemm_reference_agrees_with_distributed_square() {
    // One more cross-check: 3-D kernel D² against the dense gemm at a size
    // with ragged blocks on every mesh dimension.
    let n = 13;
    let out = run(
        SimConfig::natural(8, 8, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh3D::new(&rc, 2);
            let grid = BlockGrid::new(n, 2);
            let full = Matrix::from_fn(n, n, |i, j| {
                ((i * 7 + j * 3) % 5) as f64 - 2.0 + if i == j { 1.0 } else { 0.0 }
            });
            // Symmetrize.
            let mut h = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    h[(i, j)] = 0.5 * (full[(i, j)] + full[(j, i)]);
                }
            }
            let d_block = (mesh.k == 0).then(|| BlockBuf::Real(grid.extract(&h, mesh.i, mesh.j)));
            let input = SymmInput { n, d_block };
            let res = symm_square_cube_baseline(&rc, &mesh, &input);
            res.d2
                .map(|b| (mesh.i, mesh.j, b.unwrap_real().clone().into_vec()))
        },
    )
    .unwrap();
    let mut h = Matrix::zeros(n, n);
    let full = Matrix::from_fn(n, n, |i, j| {
        ((i * 7 + j * 3) % 5) as f64 - 2.0 + if i == j { 1.0 } else { 0.0 }
    });
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = 0.5 * (full[(i, j)] + full[(j, i)]);
        }
    }
    let want = gemm(&h, &h);
    let grid = BlockGrid::new(n, 2);
    for res in out.results.into_iter().flatten() {
        let (i, j, v) = res;
        let (r, c) = grid.block_dims(i, j);
        let got = Matrix::from_vec(r, c, v);
        let expect = grid.extract(&want, i, j);
        assert!(got.max_abs_diff(&expect) < 1e-9, "block ({i},{j})");
    }
}
