//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic seeded [`rngs::StdRng`] (xoshiro256**) plus the
//! [`Rng::gen_range`] surface used by the synthetic-spectrum generator.
//! Sequences differ from upstream `rand`'s `StdRng` — acceptable, since the
//! workspace only needs *reproducible* random matrices, not upstream-
//! identical ones. See `shims/README.md`.

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Create an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset: `gen_range` over half-open ranges).
pub trait Rng {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

/// Types uniformly sampleable by this shim.
pub trait SampleUniform: Copy {}
impl SampleUniform for f64 {}
impl SampleUniform for u64 {}
impl SampleUniform for usize {}
impl SampleUniform for i64 {}
impl SampleUniform for u32 {}

/// Ranges that can drive sampling of `T`.
pub trait SampleRange<T> {
    /// Sample a value from the range using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0,1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u64, usize, i64, u32);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_sequences_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
