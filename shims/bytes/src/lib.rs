//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, sliceable view into reference-
//! counted storage — the zero-copy property the payload chunking layer
//! relies on. See `shims/README.md` for why this exists.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, zero-copy view into shared immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice; shares storage with `self`.
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds (len {})",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// View as a byte slice (also available through the `AsRef` impl).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…(+{})", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2u8, 3]));
        assert_eq!(b.slice(4..), Bytes::from(vec![4u8, 5]));
        assert!(b.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
