//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace vends
//! API-compatible subsets of its external dependencies (see `shims/README.md`).
//! Only the surface the workspace actually uses is provided: [`Mutex`] with
//! infallible `lock()`, and [`Condvar`] whose `wait` takes `&mut MutexGuard`
//! (parking_lot style) rather than consuming the guard (std style).

use std::sync::PoisonError;

/// A mutex with parking_lot's infallible `lock()` API.
///
/// Poisoning is deliberately ignored (parking_lot has no poisoning): a
/// panicked rank thread must not wedge the simulation engine's core lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership (std's wait consumes and returns the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available. Never fails.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut MutexGuard)` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block on the condvar, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Block on the condvar for at most `timeout`. Returns a result whose
    /// [`WaitTimeoutResult::timed_out`] tells whether the wait expired
    /// without a notification (parking_lot's `wait_for` API).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake a single waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Outcome of a timed condvar wait (parking_lot-compatible subset).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait expired without a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
