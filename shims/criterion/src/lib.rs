//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Provides the reporting surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `iter_custom`, the
//! `criterion_group!`/`criterion_main!` macros) with a trivial runner: each
//! benchmark executes once and prints its measured (or, for `iter_custom`,
//! reported) time. Statistical sampling and plotting are omitted — the
//! workspace's simulator is deterministic, so repeated samples are
//! identical anyway. When invoked without `--bench` (e.g. by `cargo test`
//! running a `harness = false` target), the harness exits immediately so
//! test runs stay fast.

use std::time::{Duration, Instant};

/// Top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Disable plot generation (no-op: the shim never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Set the warm-up time (no-op: the shim runs one pass).
    pub fn warm_up_time(self, _dur: Duration) -> Self {
        self
    }

    /// Set the measurement time (no-op: the shim runs one pass).
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (no-op: the shim runs one sample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { reported: None };
        let wall = Instant::now();
        f(&mut b, input);
        self.report(&id.label, b.reported, wall.elapsed());
        self
    }

    /// Run a benchmark identified only by name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { reported: None };
        let wall = Instant::now();
        f(&mut b);
        self.report(name, b.reported, wall.elapsed());
        self
    }

    /// Finish the group (prints a terminator line).
    pub fn finish(&mut self) {
        println!("group {} done", self.name);
    }

    fn report(&self, label: &str, reported: Option<Duration>, wall: Duration) {
        match reported {
            Some(d) => println!("{}/{label}: {d:?} (reported), wall {wall:?}", self.name),
            None => println!("{}/{label}: wall {wall:?}", self.name),
        }
    }
}

/// Identifies one benchmark within a group by name and parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    reported: Option<Duration>,
}

impl Bencher {
    /// Run a routine whose measured time the closure itself reports
    /// (used here to report *virtual* simulation time). The closure is
    /// called once with `iters = 1`.
    pub fn iter_custom<F>(&mut self, mut routine: F)
    where
        F: FnMut(u64) -> Duration,
    {
        self.reported = Some(routine(1));
    }

    /// Run and wall-clock a routine once.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let _keep = routine();
        self.reported = Some(start.elapsed());
    }
}

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the given groups (only under `cargo bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; `cargo test` runs harness=false
            // bench targets with no such flag — skip there to keep test
            // runs fast.
            if !std::env::args().any(|a| a == "--bench") {
                println!("criterion shim: skipping benchmarks (run via `cargo bench`)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_custom_reports_virtual_time() {
        let mut c = Criterion::default().without_plots();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 8), &8u32, |b, &x| {
            b.iter_custom(|iters| Duration::from_nanos(iters * x as u64));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }
}
