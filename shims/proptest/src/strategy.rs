//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as f32
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let a = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&a));
            let b = (0u64..=5).generate(&mut rng);
            assert!(b <= 5);
            let c = (-1.0..1.0f64).generate(&mut rng);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combinators_compose");
        let s = (1usize..5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0.0..1.0f64, n..=n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..100 {
            let (n, len) = s.generate(&mut rng);
            assert_eq!(n, len);
        }
    }
}
