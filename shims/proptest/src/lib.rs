//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Supports the subset the workspace tests use: numeric range strategies,
//! `Just`, tuples, `prop_map`/`prop_flat_map`, `prop::collection::vec`,
//! `prop::sample::select`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream: generation is **deterministic** (seeded from
//! the test name, so failures reproduce exactly) and there is **no
//! shrinking** — a failing case panics with the assertion message.

pub mod strategy;
pub mod test_runner;

/// Strategy combinator modules, mirroring proptest's `prop::` namespace.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A vector length range, convertible from `a..b`, `a..=b`, or a fixed
    /// size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() as usize) % self.options.len()].clone()
        }
    }
}

/// The usual glob import: strategies, config, and macros.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fail the current case with a message (returns `Err` from the case body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Discard the current case (it counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    strategy,
                    |($($pat,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
