//! Offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` for non-generic structs with named
//! fields — the only shape the workspace derives on. Parsing is done
//! directly on the token stream (no `syn`/`quote`, which are unavailable
//! offline): the field names are the idents preceding each top-level `:`,
//! with `<…>` generic argument depth tracked so commas inside field types
//! don't split fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec::Vec::from([{entries}]))\n\
             }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive shim: generated code must parse")
}

/// Extract `(struct_name, field_names)` from the derive input.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter();
    // Skip outer attributes / visibility until the `struct` keyword.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde_derive shim: #[derive(Serialize)] on enums is unsupported")
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde_derive shim: expected struct name, got {other:?}"),
                }
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("serde_derive shim: generic structs are unsupported")
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            panic!("serde_derive shim: unit/tuple structs are unsupported")
                        }
                        _ => {}
                    }
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive shim: no struct found in derive input");
    let body = body.expect("serde_derive shim: struct has no braced field list");
    (name, parse_field_names(body))
}

/// Field names of a named-field struct body, in declaration order.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip field attributes (`#[...]`, including expanded doc comments).
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Skip visibility: `pub` possibly followed by `(crate)` etc.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        // Field name.
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break 'fields,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        }
        // Skip `:` and the type, honoring `<…>` nesting, up to the next
        // top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    fields
}
