//! Offline stand-in for the `serde_json` crate (see `shims/README.md`).
//!
//! Serializes the shim [`Value`] tree (defined in the `serde` shim so
//! derived impls can target it) to JSON text, and parses JSON text back —
//! enough for result emission, the Perfetto trace exporter, and the schema
//! validation tests. Output is deterministic: object keys keep insertion
//! order and numbers format via Rust's shortest-round-trip float printing.

pub use serde::Value;

use serde::Serialize;

/// Error type for serialization/parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json refuses non-finite floats; emitting null keeps the
        // output loadable and is what JS `JSON.stringify` does.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `1.0f64` formats as "1"; keep a float marker so the value round-trips
    // as a float, matching serde_json.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`] tree.
pub fn from_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we only \u-escape control chars).
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(3)),
            ("t".into(), Value::Float(1.5)),
            ("s".into(), Value::Str("a\"b\n".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn pretty_prints_with_indentation() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::UInt(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"x\": [\n    1\n  ]\n}");
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parses_nested_json() {
        let v = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().index(1).unwrap(), &Value::Int(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
