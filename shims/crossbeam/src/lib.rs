//! Offline stand-in for the `crossbeam` crate, backed by `std::sync::mpsc`.
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver}` is provided — the
//! surface the progress-worker pool uses. See `shims/README.md`.

/// Multi-producer multi-consumer channels (subset: bounded MPSC).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full. Errors if disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a value arrives. Errors if disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// The channel is disconnected; the value is returned.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// The channel is disconnected and empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let tx2 = tx.clone();
        tx2.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
