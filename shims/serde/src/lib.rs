//! Offline stand-in for the `serde` crate (see `shims/README.md`).
//!
//! Instead of serde's visitor-based data model, this shim serializes
//! directly into a tree [`Value`] (re-exported by the `serde_json` shim),
//! which is all the workspace needs: `#[derive(Serialize)]` on plain
//! structs plus `serde_json::to_string_pretty`. Field order is preserved,
//! so emitted JSON is deterministic.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// An ordered JSON-like value tree — the serialization target.
///
/// Object keys keep insertion order (struct declaration order for derived
/// impls), making the emitted JSON byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (emitted without decimal point).
    Int(i64),
    /// Unsigned integer (emitted without decimal point).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array; `None` for non-arrays or out of range.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (insertion-ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the JSON-like value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(0.5)])),
        ]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().index(0).unwrap().as_f64(), Some(0.5));
        assert!(v.get("c").is_none());
    }
}
