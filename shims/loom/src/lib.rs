//! Offline stand-in for the `loom` crate: a cooperative, seeded-schedule
//! concurrency model checker.
//!
//! The build environment has no access to crates.io, so the workspace vends
//! API-compatible subsets of its external dependencies (see
//! `shims/README.md`). Real loom exhaustively enumerates interleavings under
//! the C11 memory model with DPOR pruning; this shim explores *randomized
//! serialized schedules* instead:
//!
//! * [`model`] runs the closure many times (default 128, override with
//!   `LOOM_SHIM_SCHEDULES`; base seed with `LOOM_SHIM_SEED`). Each run is
//!   driven by one deterministic xorshift-seeded scheduler.
//! * Exactly one model thread executes at a time. Every synchronization
//!   point — mutex acquire/release, condvar wait/notify, atomic access,
//!   spawn, join, [`thread::yield_now`] — is a schedule point where the
//!   scheduler hands the baton to a pseudo-randomly chosen runnable thread.
//! * Deadlocks are detected and reported: all threads blocked (condvar
//!   wait / join with nobody to wake them), or a lock held by a thread
//!   that can never run again.
//! * A panic on any model thread fails the whole schedule and reports the
//!   seed, so failures reproduce by pinning `LOOM_SHIM_SEED`.
//!
//! Deviations from upstream loom that matter:
//!
//! * Exploration is sampled, not exhaustive — a clean run is strong
//!   evidence, not proof. Seeds are deterministic, so runs reproduce.
//! * Only sequential consistency is modeled: schedules interleave at
//!   operation granularity, weak-memory reorderings are not simulated.
//! * `Mutex`/`Condvar` mirror the workspace's parking_lot shim surface
//!   (infallible `lock()`, `wait(&mut guard)`) rather than upstream loom's
//!   std-flavored `Result` API, so `crate::sync`-style switchyards can
//!   re-export either backend unchanged.
//! * Outside [`model`] the primitives degrade to plain `std::sync`
//!   behavior, so code built with `--cfg loom` still runs normally.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic as stdatomic;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Panic payload used to unwind model threads when the schedule aborts
/// (deadlock detected or another thread panicked first). Recognized by the
/// thread wrapper so it does not overwrite the original failure message.
const ABORT_PAYLOAD: &str = "loom-shim: schedule aborted";

/// Consecutive failed `try_lock` attempts with no global progress before a
/// spinning `lock()` declares the schedule wedged (lock holder can never
/// run again).
const STUCK_SPINS: u32 = 5_000;

/// How long [`model`] waits for a schedule before declaring the shim
/// itself wedged. Belt-and-braces: schedules are cooperative and finite.
const SCHEDULE_WALL_LIMIT: Duration = Duration::from_secs(120);

// ---------------------------------------------------------------------------
// Scheduler kernel
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct KState {
    status: Vec<Status>,
    /// Thread currently holding the baton.
    current: usize,
    /// xorshift64* state driving schedule choices.
    rng: u64,
    /// Bumped on unlock / notify / finish; lets spinning lockers detect
    /// that the holder can never release.
    progress: u64,
    /// First failure of this schedule (panic message or deadlock report).
    abort: Option<String>,
    /// Condvar id → threads blocked in `wait`.
    cv_waiters: HashMap<usize, Vec<usize>>,
    /// Target thread → threads blocked joining it.
    join_waiters: HashMap<usize, Vec<usize>>,
}

impl KState {
    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Hand the baton to a pseudo-random runnable thread. With nobody
    /// runnable and somebody blocked, the schedule is deadlocked.
    fn pick_next(&mut self) {
        let runnable: Vec<usize> = self
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if self.abort.is_none() && self.status.contains(&Status::Blocked) {
                let blocked: Vec<usize> = self
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s == Status::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                self.abort = Some(format!(
                    "deadlock: every live thread is blocked (threads {blocked:?} \
                     waiting on a condvar or join with nobody left to wake them)"
                ));
            }
            return;
        }
        let i = (self.xorshift() % runnable.len() as u64) as usize;
        self.current = runnable[i];
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|s| *s == Status::Finished)
    }
}

struct Kernel {
    m: StdMutex<KState>,
    cv: StdCondvar,
}

impl Kernel {
    fn new(seed: u64) -> Kernel {
        Kernel {
            m: StdMutex::new(KState {
                status: Vec::new(),
                current: 0,
                rng: seed | 1,
                progress: 0,
                abort: None,
                cv_waiters: HashMap::new(),
                join_waiters: HashMap::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lk(&self) -> std::sync::MutexGuard<'_, KState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lk();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    }

    /// Abort the schedule with `msg` (first failure wins) and wake every
    /// parked thread so they can unwind.
    fn abort_with(&self, msg: String) -> ! {
        {
            let mut st = self.lk();
            if st.abort.is_none() {
                st.abort = Some(msg);
            }
        }
        self.cv.notify_all();
        std::panic::panic_any(ABORT_PAYLOAD);
    }

    /// Schedule point: offer the baton to a random runnable thread (maybe
    /// self) and wait until it comes back.
    fn yield_point(&self, me: usize) {
        let mut st = self.lk();
        if st.abort.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_PAYLOAD);
        }
        st.pick_next();
        self.cv.notify_all();
        while st.current != me {
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(ABORT_PAYLOAD);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block the calling thread until another thread marks it runnable
    /// again (condvar notify, join target finishing). `register` records
    /// where it is waiting while the kernel lock is held.
    fn block(&self, me: usize, register: impl FnOnce(&mut KState)) {
        let mut st = self.lk();
        if st.abort.is_some() {
            drop(st);
            std::panic::panic_any(ABORT_PAYLOAD);
        }
        register(&mut st);
        st.status[me] = Status::Blocked;
        st.pick_next();
        self.cv.notify_all();
        while st.current != me || st.status[me] != Status::Runnable {
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(ABORT_PAYLOAD);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wait for the baton without being runnable-blocked (thread startup).
    fn wait_for_baton(&self, me: usize) {
        let mut st = self.lk();
        while st.current != me {
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(ABORT_PAYLOAD);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn progress(&self) -> u64 {
        self.lk().progress
    }

    fn on_release(&self) {
        let mut st = self.lk();
        st.progress += 1;
    }

    fn notify_cv(&self, cv_id: usize, all: bool) {
        let mut st = self.lk();
        st.progress += 1;
        if let Some(waiters) = st.cv_waiters.get_mut(&cv_id) {
            let woken: Vec<usize> = if all {
                std::mem::take(waiters)
            } else {
                waiters.drain(..1.min(waiters.len())).collect()
            };
            for t in woken {
                st.status[t] = Status::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lk();
        if let Some(msg) = panic_msg {
            if st.abort.is_none() {
                st.abort = Some(msg);
            }
        }
        st.status[me] = Status::Finished;
        if let Some(joiners) = st.join_waiters.remove(&me) {
            for j in joiners {
                st.status[j] = Status::Runnable;
            }
        }
        st.progress += 1;
        st.pick_next();
        drop(st);
        self.cv.notify_all();
    }

    fn join_on(&self, me: usize, target: usize) {
        let finished = { self.lk().status[target] == Status::Finished };
        if !finished {
            self.block(me, |st| {
                st.join_waiters.entry(target).or_default().push(me);
            });
        }
    }
}

thread_local! {
    /// The active scheduler and this thread's id, set while running inside
    /// [`model`]. `None` means "degrade to plain std behavior".
    static CTX: RefCell<Option<(StdArc<Kernel>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(StdArc<Kernel>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn schedule_point() {
    if let Some((k, me)) = ctx() {
        k.yield_point(me);
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked with a non-string payload".to_string()
    }
}

fn run_managed<T: Send + 'static>(
    kernel: StdArc<Kernel>,
    id: usize,
    result: StdArc<StdMutex<Option<T>>>,
    f: impl FnOnce() -> T + Send + 'static,
) {
    CTX.with(|c| *c.borrow_mut() = Some((kernel.clone(), id)));
    let out = catch_unwind(AssertUnwindSafe(|| {
        kernel.wait_for_baton(id);
        f()
    }));
    let panic_msg = match out {
        Ok(v) => {
            *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            None
        }
        Err(p) => {
            if p.downcast_ref::<&str>() == Some(&ABORT_PAYLOAD) {
                None // the original failure is already recorded
            } else {
                Some(panic_message(p.as_ref()))
            }
        }
    };
    kernel.finish(id, panic_msg);
    CTX.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// model()
// ---------------------------------------------------------------------------

/// Run `f` under many deterministic randomized schedules, panicking with
/// the failing seed if any schedule panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = std::env::var("LOOM_SHIM_SCHEDULES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(128);
    let base = std::env::var("LOOM_SHIM_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    model_with(iters, base, f);
}

/// [`model`] with explicit schedule count and base seed (used by tests to
/// keep runtimes bounded regardless of the environment).
pub fn model_with<F>(iters: u64, base_seed: u64, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    for i in 0..iters {
        let seed = base_seed ^ (i.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
        let kernel = StdArc::new(Kernel::new(seed));
        let id = kernel.register_thread();
        debug_assert_eq!(id, 0);
        let result = StdArc::new(StdMutex::new(None::<()>));
        let (k2, r2, f2) = (kernel.clone(), result.clone(), f.clone());
        let os = std::thread::spawn(move || run_managed(k2, id, r2, move || f2()));
        // Wait for the whole thread tree of this schedule to finish.
        let mut st = kernel.lk();
        let deadline = std::time::Instant::now() + SCHEDULE_WALL_LIMIT;
        while !st.all_finished() {
            let (g, timed_out) = kernel
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
            if timed_out.timed_out() && std::time::Instant::now() > deadline {
                st.abort = Some("schedule wedged: threads did not finish".into());
                kernel.cv.notify_all();
            }
        }
        let abort = st.abort.clone();
        drop(st);
        let _ = os.join();
        if let Some(msg) = abort {
            panic!("loom-shim: schedule {i} of {iters} (seed {seed:#x}) failed: {msg}");
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Managed (or pass-through) threads: `spawn`, `yield_now`, `JoinHandle`.
pub mod thread {
    use super::*;

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Managed {
            id: usize,
            kernel: StdArc<Kernel>,
            result: StdArc<StdMutex<Option<T>>>,
        },
    }

    /// Handle to a spawned model thread; [`JoinHandle::join`] blocks the
    /// schedule until it finishes.
    pub struct JoinHandle<T>(Imp<T>);

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its value. Mirrors
        /// `std::thread::JoinHandle::join`'s `Result` so `.unwrap()` at
        /// call sites works against either backend.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Imp::Std(h) => h.join(),
                Imp::Managed { id, kernel, result } => {
                    let me = ctx().map(|(_, me)| me).unwrap_or_else(|| {
                        panic!("loom-shim: join on a model thread from outside model()")
                    });
                    kernel.join_on(me, id);
                    match result.lock().unwrap_or_else(PoisonError::into_inner).take() {
                        Some(v) => Ok(v),
                        // The target panicked: its message is the schedule's
                        // abort; unwind this thread too.
                        None => std::panic::panic_any(ABORT_PAYLOAD),
                    }
                }
            }
        }
    }

    /// Spawn a thread participating in the current model schedule (plain
    /// `std::thread::spawn` outside [`model`](super::model)).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((kernel, me)) => {
                let id = kernel.register_thread();
                let result = StdArc::new(StdMutex::new(None::<T>));
                let (k2, r2) = (kernel.clone(), result.clone());
                std::thread::spawn(move || run_managed(k2, id, r2, f));
                // Spawn is a schedule point: the child may run first.
                kernel.yield_point(me);
                JoinHandle(Imp::Managed { id, kernel, result })
            }
            None => JoinHandle(Imp::Std(std::thread::spawn(f))),
        }
    }

    /// Voluntary schedule point.
    pub fn yield_now() {
        schedule_point();
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// `Mutex`/`Condvar`/`Arc` and atomics participating in the model schedule.
pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    /// A model-aware mutex with parking_lot's infallible `lock()` API.
    pub struct Mutex<T: ?Sized> {
        inner: StdMutex<T>,
    }

    /// RAII guard returned by [`Mutex::lock`]. Releasing it is a progress
    /// event for the scheduler's deadlock detector.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        guard: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex guarding `value`.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: StdMutex::new(value),
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the mutex, never failing. Under a model schedule this is
        /// a schedule point, and acquisition spins through the scheduler so
        /// a lock held by a permanently-blocked thread is reported as a
        /// deadlock instead of hanging.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if let Some((k, me)) = ctx() {
                let mut spins: u32 = 0;
                let mut last_progress = k.progress();
                loop {
                    k.yield_point(me);
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return MutexGuard {
                                lock: self,
                                guard: Some(g),
                            }
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return MutexGuard {
                                lock: self,
                                guard: Some(p.into_inner()),
                            }
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            let p = k.progress();
                            if p != last_progress {
                                last_progress = p;
                                spins = 0;
                            } else {
                                spins += 1;
                                if spins > STUCK_SPINS {
                                    k.abort_with(
                                        "deadlock: lock() spinning on a mutex whose holder \
                                         never releases it"
                                            .into(),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            MutexGuard {
                lock: self,
                guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        /// Try to acquire the mutex without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            schedule_point();
            match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    guard: Some(g),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    guard: Some(p.into_inner()),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard taken during wait")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard taken during wait")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.guard.take().is_some() && !std::thread::panicking() {
                if let Some((k, _)) = ctx() {
                    k.on_release();
                }
            }
        }
    }

    /// A model-aware condvar with parking_lot's `wait(&mut MutexGuard)`
    /// API. Lost wakeups (notify with no waiter, then wait forever) show
    /// up as model deadlocks.
    pub struct Condvar {
        inner: StdCondvar,
        /// Lazily-assigned scheduler identity (0 = unassigned).
        id: stdatomic::AtomicUsize,
    }

    static NEXT_CV_ID: stdatomic::AtomicUsize = stdatomic::AtomicUsize::new(1);

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Condvar {
            Condvar {
                inner: StdCondvar::new(),
                id: stdatomic::AtomicUsize::new(0),
            }
        }

        fn id(&self) -> usize {
            let v = self.id.load(StdOrdering::SeqCst);
            if v != 0 {
                return v;
            }
            let n = NEXT_CV_ID.fetch_add(1, StdOrdering::SeqCst);
            match self
                .id
                .compare_exchange(0, n, StdOrdering::SeqCst, StdOrdering::SeqCst)
            {
                Ok(_) => n,
                Err(e) => e,
            }
        }

        /// Block on the condvar, releasing the guarded mutex while waiting.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            match ctx() {
                Some((k, me)) => {
                    let lock = guard.lock;
                    // Release without a guard Drop (no relock yet).
                    guard.guard = None;
                    k.on_release();
                    let cv_id = self.id();
                    k.block(me, |st| {
                        st.cv_waiters.entry(cv_id).or_default().push(me);
                    });
                    // Reacquire through the scheduling lock path, then steal
                    // the std guard back into the caller's wrapper.
                    let mut g = lock.lock();
                    guard.guard = g.guard.take();
                    std::mem::forget(g);
                }
                None => {
                    let g = guard.guard.take().expect("guard taken during wait");
                    let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
                    guard.guard = Some(g);
                }
            }
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            match ctx() {
                Some((k, _)) => k.notify_cv(self.id(), false),
                None => self.inner.notify_one(),
            }
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            match ctx() {
                Some((k, _)) => k.notify_cv(self.id(), true),
                None => self.inner.notify_all(),
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    /// Atomics whose every access is a schedule point.
    pub mod atomic {
        use super::super::schedule_point;
        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Model-aware atomic: each access is a schedule point.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Create a new atomic with `v`.
                    pub const fn new(v: $val) -> $name {
                        $name {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $val {
                        schedule_point();
                        self.inner.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, v: $val, order: Ordering) {
                        schedule_point();
                        self.inner.store(v, order)
                    }

                    /// Atomic swap.
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        schedule_point();
                        self.inner.swap(v, order)
                    }

                    /// Atomic compare-and-exchange.
                    pub fn compare_exchange(
                        &self,
                        cur: $val,
                        new: $val,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$val, $val> {
                        schedule_point();
                        self.inner.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        impl AtomicU64 {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                schedule_point();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: u64, order: Ordering) -> u64 {
                schedule_point();
                self.inner.fetch_sub(v, order)
            }
        }

        impl AtomicUsize {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                schedule_point();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
                schedule_point();
                self.inner.fetch_sub(v, order)
            }
        }

        impl AtomicBool {
            /// Atomic or, returning the previous value.
            pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
                schedule_point();
                self.inner.fetch_or(v, order)
            }
        }

        /// Model-aware atomic pointer: each access is a schedule point.
        /// Needed by the runtime's lock-free MPSC injector, whose intrusive
        /// links are `AtomicPtr<Node<T>>`.
        #[derive(Debug)]
        pub struct AtomicPtr<T> {
            inner: std::sync::atomic::AtomicPtr<T>,
        }

        impl<T> AtomicPtr<T> {
            /// Create a new atomic pointer holding `p`.
            pub const fn new(p: *mut T) -> AtomicPtr<T> {
                AtomicPtr {
                    inner: std::sync::atomic::AtomicPtr::new(p),
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> *mut T {
                schedule_point();
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, p: *mut T, order: Ordering) {
                schedule_point();
                self.inner.store(p, order)
            }

            /// Atomic swap.
            pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
                schedule_point();
                self.inner.swap(p, order)
            }

            /// Atomic compare-and-exchange.
            pub fn compare_exchange(
                &self,
                cur: *mut T,
                new: *mut T,
                ok: Ordering,
                err: Ordering,
            ) -> Result<*mut T, *mut T> {
                schedule_point();
                self.inner.compare_exchange(cur, new, ok, err)
            }
        }

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                AtomicPtr::new(std::ptr::null_mut())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model_with(20, 7, || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = counter.clone();
                    super::thread::spawn(move || {
                        for _ in 0..4 {
                            let mut g = c.lock();
                            let v = *g;
                            super::thread::yield_now();
                            *g = v + 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 12);
        });
    }

    #[test]
    fn condvar_wakeup_is_never_lost() {
        super::model_with(40, 11, || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut done = m.lock();
                while !*done {
                    cv.wait(&mut done);
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn deadlock_is_detected() {
        let r = std::panic::catch_unwind(|| {
            super::model_with(1, 3, || {
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                // Nobody ever notifies: the model must report a deadlock
                // rather than hang.
                let (m, cv) = &*pair;
                let mut g = m.lock();
                cv.wait(&mut g);
            });
        });
        let msg = match r {
            Ok(()) => panic!("deadlocked schedule was not reported"),
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
        };
        assert!(msg.contains("deadlock"), "unexpected report: {msg}");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        // The same seed must produce the same interleaving: record the
        // winner of a two-thread race twice and compare.
        let run = || {
            let order = Arc::new(Mutex::new(Vec::new()));
            let winners = Arc::new(Mutex::new(Vec::new()));
            let w2 = winners.clone();
            super::model_with(10, 99, move || {
                let o = order.clone();
                let a = {
                    let o = o.clone();
                    super::thread::spawn(move || o.lock().push('a'))
                };
                let b = {
                    let o = o.clone();
                    super::thread::spawn(move || o.lock().push('b'))
                };
                a.join().unwrap();
                b.join().unwrap();
                let mut g = o.lock();
                w2.lock().push(g[0]);
                g.clear();
            });
            let v = winners.lock().clone();
            v
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn atomics_interleave_and_stay_consistent() {
        super::model_with(20, 5, || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || {
                        for _ in 0..8 {
                            n.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 16);
        });
    }
}
