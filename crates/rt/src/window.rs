//! One-sided (RMA) windows on the wall-clock runtime.
//!
//! The epoch/consistency contract is identical to the simulator's
//! (`ovcomm_simmpi::rma`, documented on `ovcomm_core::Window`): puts and
//! accumulates are *staged* at post time and applied only at the epoch
//! close (fence or unlock) in deterministic `(origin rank, post order)`
//! order, and gets read the committed (epoch-stable) segment state — so
//! kernel results are bit-identical across backends even for
//! non-associative `f64` accumulation. What differs is the transport:
//! segments live in process memory behind one mutex, a put *is* a memcpy
//! into the staging area, and an epoch close costs the apply loop plus
//! two barriers of real wall time.
//!
//! The cross-rank state machine — staging, apply ordering, and the FIFO
//! passive-target lock — is factored into [`WinCore`], generic over the
//! lock-grant handle and synchronized exclusively through [`crate::sync`]
//! primitives. Built with `RUSTFLAGS="--cfg loom"`, the loom suite
//! (`tests/loom.rs`) drives this exact type from concurrent model threads
//! and schedule-checks lock/unlock handoff and concurrent-accumulate
//! determinism. The [`RtWin`] wrapper around it (requests, verify events,
//! metrics, barriers) is production-only plumbing and is not on the
//! loom-checked path, so its private counters use plain `std` atomics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ovcomm_simmpi::payload::Payload;
use ovcomm_simmpi::Request;
use ovcomm_simnet::{EdgeKind, SpanKind};
use ovcomm_verify::{Event as VEvent, RmaKind, Site};

use crate::comm::RtComm;
use crate::shared::RtShared;
use crate::sync::Mutex;

/// Committed bytes of one rank's exposed segment.
enum Seg {
    /// Real data (staged ops are applied in place).
    Real(Vec<u8>),
    /// Size-only stand-in for scale runs: applies are no-ops of the right
    /// size.
    Phantom(usize),
}

impl Seg {
    fn from_payload(p: &Payload) -> Seg {
        match p {
            Payload::Real(b) => Seg::Real(b.to_vec()),
            Payload::Phantom(n) => Seg::Phantom(*n),
        }
    }

    fn len(&self) -> usize {
        match self {
            Seg::Real(v) => v.len(),
            Seg::Phantom(n) => *n,
        }
    }

    fn snapshot(&self, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= self.len(),
            "RMA read {start}..{end} beyond segment length {}",
            self.len()
        );
        match self {
            Seg::Real(v) => Payload::from_vec(v[start..end].to_vec()),
            Seg::Phantom(_) => Payload::Phantom(end - start),
        }
    }
}

/// One staged put/accumulate awaiting its epoch close.
pub struct StagedOp {
    /// Window rank of the origin.
    pub origin: u32,
    /// The origin's RMA post counter: orders one origin's ops.
    pub seq: u64,
    /// Byte offset into the target segment.
    pub offset: usize,
    /// Accumulate (`f64` sum) instead of overwrite?
    pub acc: bool,
    /// The data (captured at post time).
    pub data: Payload,
}

/// Apply one staged op to a committed segment.
// `chunks_exact(8)`/`try_into` on 8-byte slices cannot fail.
#[allow(clippy::unwrap_used)]
fn apply_op(seg: &mut Seg, op: &StagedOp) {
    let v = match seg {
        Seg::Phantom(_) => return,
        Seg::Real(v) => v,
    };
    let b = match &op.data {
        Payload::Real(b) => b,
        Payload::Phantom(_) => panic!("phantom RMA data applied to a real window segment"),
    };
    let end = op.offset + b.len();
    assert!(
        end <= v.len(),
        "RMA apply {}..{end} beyond segment length {}",
        op.offset,
        v.len()
    );
    if op.acc {
        assert!(
            op.offset.is_multiple_of(8) && b.len().is_multiple_of(8),
            "accumulate must be f64-aligned (offset {}, len {})",
            op.offset,
            b.len()
        );
        for (i, c) in b.chunks_exact(8).enumerate() {
            let at = op.offset + i * 8;
            let cur = f64::from_ne_bytes(v[at..at + 8].try_into().unwrap());
            let add = f64::from_ne_bytes(c.try_into().unwrap());
            v[at..at + 8].copy_from_slice(&(cur + add).to_ne_bytes());
        }
    } else {
        v[op.offset..end].copy_from_slice(b);
    }
}

/// Virtual passive-target lock of one segment.
struct LockSt<G> {
    /// Window rank currently holding the lock.
    holder: Option<u32>,
    /// FIFO of waiting acquisitions: (window rank, grant handle).
    queue: VecDeque<(u32, G)>,
}

impl<G> Default for LockSt<G> {
    fn default() -> LockSt<G> {
        LockSt {
            holder: None,
            queue: VecDeque::new(),
        }
    }
}

struct WinState<G> {
    segs: Vec<Option<Seg>>,
    staged: Vec<Vec<StagedOp>>,
    locks: Vec<LockSt<G>>,
    /// Handles not yet freed; the last `free` removes the registry entry.
    live: usize,
}

/// The cross-rank state machine of one window: committed segments, the
/// staging area, and the FIFO passive-target locks, all under one
/// [`crate::sync::Mutex`] so the loom suite can schedule-check it.
///
/// Generic over the lock-grant handle `G`: the production runtime queues
/// `Request<()>` handles completed through the shared runtime
/// (watchdog-visible waits); the loom harness queues its own completion
/// cells. Grants are always handed back to the caller and completed
/// *outside* the state mutex — the same lock-then-complete-outside-lock
/// shape as the mailbox.
pub struct WinCore<G> {
    state: Mutex<WinState<G>>,
}

impl<G> WinCore<G> {
    /// A core spanning `p` ranks, with no segments deposited yet.
    pub fn new(p: usize) -> WinCore<G> {
        WinCore {
            state: Mutex::new(WinState {
                segs: (0..p).map(|_| None).collect(),
                staged: (0..p).map(|_| Vec::new()).collect(),
                locks: (0..p).map(|_| LockSt::default()).collect(),
                live: p,
            }),
        }
    }

    /// Deposit `rank`'s exposed segment (its committed initial contents).
    pub fn deposit(&self, rank: usize, local: &Payload) {
        self.state.lock().segs[rank] = Some(Seg::from_payload(local));
    }

    /// Byte length of `rank`'s exposed segment.
    pub fn segment_len(&self, rank: usize) -> usize {
        match &self.state.lock().segs[rank] {
            Some(s) => s.len(),
            None => panic!("window segment {rank} not deposited"),
        }
    }

    /// Snapshot `start..end` of `rank`'s *committed* segment state.
    pub fn snapshot(&self, rank: usize, start: usize, end: usize) -> Payload {
        match &self.state.lock().segs[rank] {
            Some(s) => s.snapshot(start, end),
            None => panic!("window segment {rank} not deposited"),
        }
    }

    /// Stage `op` against `target`'s segment (applied at epoch close).
    /// Bounds are checked now, so an out-of-range put fails at its post
    /// site rather than at a distant fence.
    pub fn stage(&self, target: usize, op: StagedOp) {
        let mut st = self.state.lock();
        let seg_len = match &st.segs[target] {
            Some(s) => s.len(),
            None => panic!("window segment {target} not deposited"),
        };
        let end = op.offset + op.data.len();
        assert!(
            end <= seg_len,
            "RMA op {}..{end} beyond segment {target} length {seg_len}",
            op.offset
        );
        st.staged[target].push(op);
    }

    /// Apply every staged op targeting `target`'s segment, in
    /// `(origin rank, post order)` order; returns total bytes applied.
    /// The fence's apply step: each rank calls it on its own segment
    /// between the two barriers.
    pub fn apply_target(&self, target: usize) -> usize {
        let mut st = self.state.lock();
        let mut ops = std::mem::take(&mut st.staged[target]);
        ops.sort_by_key(|o| (o.origin, o.seq));
        let seg = match &mut st.segs[target] {
            Some(s) => s,
            None => panic!("window segment {target} not deposited"),
        };
        let mut bytes = 0usize;
        for op in &ops {
            bytes += op.data.len();
            apply_op(seg, op);
        }
        bytes
    }

    /// Acquire the passive-target lock on `target` for window rank `me`,
    /// or join the FIFO queue with `grant`. Returns `true` when acquired
    /// immediately (the grant handle is dropped unused); on `false` the
    /// caller must wait on its own copy of the grant, which the holder's
    /// [`WinCore::unlock`] hands back for completion.
    pub fn lock_or_queue(&self, target: usize, me: u32, grant: G) -> bool {
        let mut st = self.state.lock();
        let l = &mut st.locks[target];
        if l.holder.is_none() {
            l.holder = Some(me);
            true
        } else {
            l.queue.push_back((me, grant));
            false
        }
    }

    /// Release the lock on `target` held by window rank `me`, first
    /// applying `me`'s staged ops to the segment (in post order — the
    /// lock serializes origins, so per-origin apply at unlock reproduces
    /// the serial order the lock imposed). Returns the bytes applied and,
    /// if another origin was queued, its `(rank, grant)` — the new holder;
    /// complete the grant *outside* this call. Releasing a lock `me` does
    /// not hold applies the ops but grants nothing (the double-unlock
    /// case, flagged by the verifier).
    pub fn unlock(&self, target: usize, me: u32) -> (usize, Option<(u32, G)>) {
        let mut st = self.state.lock();
        let mut ops: Vec<StagedOp> = Vec::new();
        let staged = &mut st.staged[target];
        let mut i = 0;
        while i < staged.len() {
            if staged[i].origin == me {
                ops.push(staged.remove(i));
            } else {
                i += 1;
            }
        }
        ops.sort_by_key(|o| o.seq);
        let mut bytes = 0usize;
        {
            let seg = match &mut st.segs[target] {
                Some(s) => s,
                None => panic!("window segment {target} not deposited"),
            };
            for op in &ops {
                bytes += op.data.len();
                apply_op(seg, op);
            }
        }
        let l = &mut st.locks[target];
        let grant = if l.holder == Some(me) {
            l.holder = None;
            match l.queue.pop_front() {
                Some((next, g)) => {
                    l.holder = Some(next);
                    Some((next, g))
                }
                None => None,
            }
        } else {
            None
        };
        (bytes, grant)
    }

    /// Window rank currently holding `target`'s lock, if any.
    pub fn holder(&self, target: usize) -> Option<u32> {
        self.state.lock().locks[target].holder
    }

    /// Drop one handle's claim on the core; `true` when this was the last
    /// one (the caller then removes the registry entry).
    pub fn release_handle(&self) -> bool {
        let mut st = self.state.lock();
        st.live -= 1;
        st.live == 0
    }
}

/// The production window core: lock grants are plain requests, completed
/// through the shared runtime so queued lockers park in watchdog-visible
/// waits.
pub(crate) type RtWinCore = WinCore<Request<()>>;

/// Bump the on-demand `rma.*` counters: one call of `op` moving `bytes`.
/// Same metric names and labels as the simulator backend, so sim-vs-rt
/// reports join RMA records directly.
pub(crate) fn rma_metric(sh: &RtShared, rank: u32, op: &str, bytes: usize) {
    let reg = sh.metrics.registry();
    let labels = [("op", op.to_string()), ("rank", rank.to_string())];
    reg.counter("rma.calls", &labels).inc();
    if bytes > 0 {
        reg.counter("rma.bytes", &labels).add(bytes as u64);
    }
}

/// Account one origin-driven transfer of `n` bytes in the run's traffic
/// counters (same inter/intra split as the simulator).
fn account_transfer(sh: &RtShared, src: u32, dst: u32, n: usize) {
    use crate::sync::Ordering as SyncOrdering;
    sh.messages.fetch_add(1, SyncOrdering::Relaxed);
    if sh.nodemap.node_of(src as usize) == sh.nodemap.node_of(dst as usize) {
        sh.intra_bytes.fetch_add(n as u64, SyncOrdering::Relaxed);
    } else {
        sh.inter_bytes.fetch_add(n as u64, SyncOrdering::Relaxed);
    }
}

/// A one-sided window handle for one rank of the wall-clock runtime (the
/// analogue of `MPI_Win`).
///
/// Created collectively by [`RtComm::win_create`]. See
/// `ovcomm_core::Window` for the epoch/consistency contract the two
/// backends share. Dropping a handle without [`RtWin::free`] is reported
/// by the verifier as a `win-leak` with the creation site.
pub struct RtWin {
    /// Private dup of the creating communicator (fence barriers).
    comm: RtComm,
    core: Arc<RtWinCore>,
    /// Registry key in `RtState::windows`.
    key: (u32, u64),
    id: u64,
    /// This rank's RMA post counter (orders staged ops of one origin).
    post_seq: AtomicU64,
    freed: AtomicBool,
}

impl RtWin {
    pub(crate) fn new(comm: RtComm, core: Arc<RtWinCore>, key: (u32, u64), id: u64) -> RtWin {
        RtWin {
            comm,
            core,
            key,
            id,
            post_seq: AtomicU64::new(0),
            freed: AtomicBool::new(false),
        }
    }

    fn shared(&self) -> &Arc<RtShared> {
        &self.comm.agent.shared
    }

    /// Number of ranks spanning the window.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// This rank's index within the window.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Byte length of `rank`'s exposed segment.
    pub fn segment_len(&self, rank: usize) -> usize {
        self.core.segment_len(rank)
    }

    /// One-sided write into `target`'s segment (`MPI_Put`): staged now,
    /// applied when the epoch closes. Returns immediately; the payload is
    /// captured, so the origin buffer is reusable.
    #[track_caller]
    pub fn put(&self, target: usize, offset: usize, data: Payload) {
        self.post(RmaKind::Put, target, offset, data);
    }

    /// One-sided element-wise `f64` sum into `target`'s segment
    /// (`MPI_Accumulate` with `MPI_SUM`); 8-aligned, staged like a put.
    #[track_caller]
    pub fn accumulate(&self, target: usize, offset: usize, data: Payload) {
        self.post(RmaKind::Accumulate, target, offset, data);
    }

    #[track_caller]
    fn post(&self, kind: RmaKind, target: usize, offset: usize, data: Payload) {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        let n = data.len();
        let me = self.rank();
        let t0 = sh.now();
        let opname = if kind == RmaKind::Accumulate {
            "accumulate"
        } else {
            "put"
        };
        rma_metric(&sh, agent.rank, opname, n);
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::RmaOp {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                kind,
                target: target as u32,
                offset,
                len: n,
                req: None,
                site: Some(site),
            });
        }
        let seq = self.post_seq.fetch_add(1, Ordering::Relaxed);
        self.core.stage(
            target,
            StagedOp {
                origin: me as u32,
                seq,
                offset,
                acc: kind == RmaKind::Accumulate,
                data,
            },
        );
        if n > 0 {
            let origin_w = self.comm.info.ranks[me];
            let target_w = self.comm.info.ranks[target];
            account_transfer(&sh, origin_w, target_w, n);
            sh.edge(EdgeKind::SendRecv, origin_w, t0, target_w, sh.now());
        }
        sh.span(agent.id, SpanKind::Post, None, t0, sh.now(), || {
            format!("{} post {n}B -> {target}", kind.name())
        });
    }

    /// One-sided read of `len` bytes from `target`'s segment at `offset`
    /// (`MPI_Rget`): returns a request completing with the data. Reads the
    /// committed (epoch-stable) segment state; on this backend the
    /// transfer is a memcpy, so the request is complete on return.
    #[track_caller]
    pub fn get(&self, target: usize, offset: usize, len: usize) -> Request<Payload> {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        let t0 = sh.now();
        rma_metric(&sh, agent.rank, "get", len);
        let req = sh.new_req::<Payload>(|id| VEvent::RmaOp {
            agent: agent.id,
            rank: agent.rank,
            win: self.id,
            kind: RmaKind::Get,
            target: target as u32,
            offset,
            len,
            req: Some(id),
            site: Some(site),
        });
        let snap = self.core.snapshot(target, offset, offset + len);
        if len > 0 {
            let origin_w = self.comm.info.ranks[self.rank()];
            let target_w = self.comm.info.ranks[target];
            account_transfer(&sh, target_w, origin_w, len);
            sh.edge(EdgeKind::SendRecv, target_w, t0, origin_w, sh.now());
        }
        sh.complete(&req, snap);
        sh.span(agent.id, SpanKind::Post, None, t0, sh.now(), || {
            format!("MPI_Rget post {len}B <- {target}")
        });
        req
    }

    /// Wait a [`RtWin::get`] request, recording a `Wait` span.
    pub fn wait(&self, req: &Request<Payload>) -> Payload {
        self.comm.wait_traced(req, "MPI_Rget")
    }

    /// Active-target epoch boundary (`MPI_Win_fence`): synchronizes all
    /// members, applies the staged operations targeting this rank's
    /// segment in `(origin, post order)` order, and synchronizes again so
    /// no rank enters the next epoch before every segment is committed.
    /// (Transfers are synchronous on this backend, so there is nothing to
    /// drain before the first barrier.)
    #[track_caller]
    pub fn fence(&self) {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        let t0 = sh.now();
        rma_metric(&sh, agent.rank, "fence", 0);
        self.comm.barrier();
        self.core.apply_target(self.rank());
        self.comm.barrier();
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::WinFence {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                site: Some(site),
            });
        }
        sh.metrics
            .blocking_duration(agent.rank, sh.now().saturating_since(t0).as_nanos());
        sh.span(agent.id, SpanKind::BlockingCall, None, t0, sh.now(), || {
            "MPI_Win_fence".to_string()
        });
    }

    /// Acquire the passive-target lock on `target`'s segment (exclusive,
    /// FIFO): contended acquisitions park in a watchdog-visible wait until
    /// the holder's unlock grants the handoff.
    #[track_caller]
    pub fn lock(&self, target: usize) {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        let t0 = sh.now();
        rma_metric(&sh, agent.rank, "lock", 0);
        let me = self.rank() as u32;
        // Internal grant handle: untracked, invisible to leak analysis.
        let grant: Request<()> = Request::new();
        if !self.core.lock_or_queue(target, me, grant.clone()) {
            agent.wait(&grant);
        }
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::WinLock {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                target: target as u32,
                site: Some(site),
            });
        }
        sh.span(agent.id, SpanKind::BlockingCall, None, t0, sh.now(), || {
            format!("MPI_Win_lock {target}")
        });
    }

    /// Release the passive-target lock on `target`: applies this origin's
    /// staged ops to the target segment (the lock serializes origins, so
    /// per-origin apply at unlock reproduces the serial order the lock
    /// imposed), then hands the lock to the next queued origin. Unlocking
    /// a segment this rank does not hold is tolerated here and flagged by
    /// the verifier (`rma-double-unlock`).
    #[track_caller]
    pub fn unlock(&self, target: usize) {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        let t0 = sh.now();
        rma_metric(&sh, agent.rank, "unlock", 0);
        let me = self.rank() as u32;
        let (_bytes, grant) = self.core.unlock(target, me);
        // The handoff completes outside the core's mutex, like every
        // completion in this runtime.
        if let Some((_next, g)) = grant {
            sh.complete(&g, ());
        }
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::WinUnlock {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                target: target as u32,
                site: Some(site),
            });
        }
        sh.span(agent.id, SpanKind::BlockingCall, None, t0, sh.now(), || {
            format!("MPI_Win_unlock {target}")
        });
    }

    /// Snapshot of this rank's committed local segment.
    pub fn local(&self) -> Payload {
        let me = self.rank();
        self.core.snapshot(me, 0, self.core.segment_len(me))
    }

    /// Collective teardown (`MPI_Win_free`): synchronizes all members and
    /// releases the window. Dropping a handle without calling this is
    /// reported by the verifier as a `win-leak`.
    #[track_caller]
    pub fn free(self) {
        let site: Site = std::panic::Location::caller();
        let sh = self.shared().clone();
        let agent = &self.comm.agent;
        rma_metric(&sh, agent.rank, "win_free", 0);
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::WinFree {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                site: Some(site),
            });
        }
        self.comm.barrier();
        self.freed.store(true, Ordering::Relaxed);
        if self.core.release_handle() {
            sh.state.lock().windows.remove(&self.key);
        }
        // `self` drops here, recording `WinDropped { freed: true }`.
    }
}

impl Drop for RtWin {
    fn drop(&mut self) {
        // Drop-time leak check, mirroring the request one: a window
        // dropped without `free` surfaces as a `win-leak` finding carrying
        // the creation site.
        if let Some(v) = self.shared().verify.as_ref() {
            v.record(VEvent::WinDropped {
                rank: self.comm.agent.rank,
                win: self.id,
                freed: self.freed.load(Ordering::Relaxed),
            });
        }
    }
}

impl ovcomm_core::Window for RtWin {
    fn size(&self) -> usize {
        RtWin::size(self)
    }
    fn rank(&self) -> usize {
        RtWin::rank(self)
    }
    fn segment_len(&self, rank: usize) -> usize {
        RtWin::segment_len(self, rank)
    }
    fn put(&self, target: usize, offset: usize, data: Payload) {
        RtWin::put(self, target, offset, data)
    }
    fn get(&self, target: usize, offset: usize, len: usize) -> Request<Payload> {
        RtWin::get(self, target, offset, len)
    }
    fn accumulate(&self, target: usize, offset: usize, data: Payload) {
        RtWin::accumulate(self, target, offset, data)
    }
    fn wait(&self, req: &Request<Payload>) -> Payload {
        RtWin::wait(self, req)
    }
    fn fence(&self) {
        RtWin::fence(self)
    }
    fn lock(&self, target: usize) {
        RtWin::lock(self, target)
    }
    fn unlock(&self, target: usize) {
        RtWin::unlock(self, target)
    }
    fn local(&self) -> Payload {
        RtWin::local(self)
    }
    fn free(self) {
        RtWin::free(self)
    }
}
