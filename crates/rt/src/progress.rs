//! The sharded progress engine.
//!
//! Nonblocking collectives run as jobs on worker threads. Pre-sharding,
//! every job went through one [`Pool`]'s free-list lock; with N_DUP
//! communicators issuing concurrent collectives (the paper's central
//! overlap pattern) that single queue serialized job handoff. Here the
//! engine is split into shards — one grow-on-demand [`Pool`] each —
//! and jobs route by communicator context (`ctx % nshards`), so each
//! dup'd communicator's collectives progress on their own shard. The
//! CollPlan interpreter the jobs run is untouched.
//!
//! Per-shard occupancy is kept in atomics for the telemetry sampler
//! (`rt.sampler.shard{N}.queue_depth`); the aggregate gauge
//! (`simmpi.pool_occupancy` → `rt.sampler.pool_queue_depth`) is
//! maintained by the caller exactly as before, for dashboard
//! compatibility.

use crate::sync::{AtomicUsize, Ordering};
use ovcomm_simmpi::{Job, Pool};

struct Shard {
    pool: Pool,
    occupancy: AtomicUsize,
}

/// The progress engine: `nshards` independent worker pools.
pub(crate) struct ProgressShards {
    shards: Vec<Shard>,
}

impl ProgressShards {
    /// An engine with `nshards` pools (minimum 1).
    pub fn new(nshards: usize) -> ProgressShards {
        ProgressShards {
            shards: (0..nshards.max(1))
                .map(|_| Shard {
                    pool: Pool::new(),
                    occupancy: AtomicUsize::new(0),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard serves communicator context `ctx`. Contexts are minted
    /// sequentially by dup/split, so consecutive dups land on distinct
    /// shards.
    pub fn shard_of(&self, ctx: u32) -> usize {
        ctx as usize % self.shards.len()
    }

    /// Submit a job to `shard` and bump its occupancy; the caller pairs
    /// this with [`ProgressShards::job_finished`] when the job completes.
    pub fn submit(&self, shard: usize, job: Job) {
        self.shards[shard].occupancy.fetch_add(1, Ordering::SeqCst);
        self.shards[shard].pool.submit(job);
    }

    /// Mark a job on `shard` finished (drops its occupancy count).
    pub fn job_finished(&self, shard: usize) {
        self.shards[shard].occupancy.fetch_sub(1, Ordering::SeqCst);
    }

    /// Jobs currently queued or running on `shard`.
    pub fn occupancy(&self, shard: usize) -> usize {
        self.shards[shard].occupancy.load(Ordering::SeqCst)
    }

    /// Total worker threads ever spawned, across shards.
    pub fn spawned(&self) -> usize {
        self.shards.iter().map(|s| s.pool.spawned()).sum()
    }

    /// Shut every shard's workers down (joins idle workers).
    pub fn shutdown(&self) {
        for s in &self.shards {
            s.pool.shutdown();
        }
    }
}
