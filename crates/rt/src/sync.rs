//! Sync-primitive switchyard for the runtime backend.
//!
//! Everything in `ovcomm-rt` that synchronizes between rank threads,
//! progress workers, and the watchdog imports its primitives from here
//! instead of naming `parking_lot` / `std::sync::atomic` directly. In a
//! normal build this module is a pure re-export — zero cost, identical
//! types. Built with `RUSTFLAGS="--cfg loom"`, the same names resolve to
//! the loom model-checking primitives, so the mailbox-matching and
//! rendezvous-handshake state machines can be exhaustively schedule-tested
//! (`tests/loom.rs`) without a second copy of the protocol code.
//!
//! One deliberate exception: [`crate::shared::RtShared::plan_cache`] stays
//! a `parking_lot::Mutex` unconditionally, because its type is pinned by
//! `ovcomm_simmpi::compile_plans`'s signature (shared verbatim with the
//! simulator backend) and it is never on a loom-checked path.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
