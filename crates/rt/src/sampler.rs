//! Live runtime telemetry: a low-overhead sampler thread.
//!
//! While a run executes, one background thread wakes every
//! [`RtConfig::sample_interval`](crate::RtConfig) and records a snapshot
//! of the runtime's load indicators into the shared obs registry:
//!
//! * `rt.sampler.pool_queue_depth` — jobs currently running on progress
//!   workers, aggregated across every shard of the progress engine (kept
//!   under its historical name for dashboard compatibility);
//! * `rt.sampler.shard{N}.queue_depth` — the same occupancy per progress
//!   shard, so the N_DUP overlap pattern is visible as parallel load on
//!   distinct shards rather than one blended number;
//! * `rt.sampler.mailbox_slots` — unmatched sends parked in the mailbox;
//! * `rt.sampler.posted_recvs` — unmatched posted receives;
//! * `rt.sampler.blocked_ranks` — threads parked inside a wait;
//! * `rt.sampler.samples` — how many snapshots were taken (so downstream
//!   analysis can spot a run too short for the histograms to mean much).
//!
//! All samples land in *histograms*: wall-clock sampling is inherently
//! nondeterministic, and histograms-of-samples keep the full occupancy
//! distribution (median queue depth vs. spikes) rather than one final
//! value. On the lock-free transport every gauge reads matcher-maintained
//! atomics; on the locked baseline the mailbox gauges briefly take the
//! mailbox mutex. Either way the sampler touches nothing on the rank
//! threads' hot paths — its overhead is bounded by the sampling
//! frequency, which the `rt_sampler_overhead` test pins.

use crate::sync::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use ovcomm_obs::{Counter, Histogram};

use crate::shared::RtShared;

/// Handle to the running sampler thread; join via [`Sampler::stop`].
pub(crate) struct Sampler {
    stop_tx: mpsc::Sender<()>,
    handle: std::thread::JoinHandle<()>,
}

/// Spawn the sampler thread, recording into `shared`'s metrics registry
/// every `interval` until stopped.
pub(crate) fn start(shared: Arc<RtShared>, interval: Duration) -> Option<Sampler> {
    struct Handles {
        pool_queue_depth: Histogram,
        shard_queue_depth: Vec<Histogram>,
        mailbox_slots: Histogram,
        posted_recvs: Histogram,
        blocked_ranks: Histogram,
        samples: Counter,
    }
    let reg = shared.metrics.registry();
    let h = Handles {
        pool_queue_depth: reg.histogram("rt.sampler.pool_queue_depth", &[]),
        shard_queue_depth: (0..shared.progress.nshards())
            .map(|i| reg.histogram(&format!("rt.sampler.shard{i}.queue_depth"), &[]))
            .collect(),
        mailbox_slots: reg.histogram("rt.sampler.mailbox_slots", &[]),
        posted_recvs: reg.histogram("rt.sampler.posted_recvs", &[]),
        blocked_ranks: reg.histogram("rt.sampler.blocked_ranks", &[]),
        samples: reg.counter("rt.sampler.samples", &[]),
    };
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let handle = std::thread::Builder::new()
        .name("rt-sampler".into())
        .spawn(move || {
            // recv_timeout doubles as the sampling sleep: a stop message
            // (or the sender dropping) ends the loop without a full
            // interval of shutdown latency.
            while let Err(mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                let (slots, recvs) = shared.transport.gauges();
                h.pool_queue_depth
                    .record(shared.metrics.pool_occupancy.get());
                for (i, sh) in h.shard_queue_depth.iter().enumerate() {
                    sh.record(shared.progress.occupancy(i) as u64);
                }
                h.mailbox_slots.record(slots as u64);
                h.posted_recvs.record(recvs as u64);
                h.blocked_ranks
                    .record(shared.blocked.load(Ordering::Relaxed) as u64);
                h.samples.inc();
            }
        })
        .ok()?;
    Some(Sampler { stop_tx, handle })
}

impl Sampler {
    /// Stop the sampler and wait for its thread to exit.
    pub fn stop(self) {
        let _ = self.stop_tx.send(());
        let _ = self.handle.join();
    }
}
