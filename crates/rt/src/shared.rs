//! Shared runtime state: the wall clock, the mailbox matching layer, and
//! the blocking-wait protocol.
//!
//! Unlike the simulator — where a virtual-time engine owns the clock and
//! message transport is modeled by network flows — here everything is
//! real: the clock is `Instant::elapsed` since the run's epoch, payloads
//! move by reference through a mutex-protected mailbox table, and a
//! blocked rank parks its thread on a condvar until a completion wakes it.
//! The *protocols* mirror simmpi's exactly:
//!
//! * **Eager** (`n < eager_limit`): the sender's request completes at post
//!   time (the payload handle is "buffered" in the mailbox); the receive
//!   completes as soon as it matches.
//! * **Rendezvous** (`n ≥ eager_limit`): the sender's request completes
//!   only when the matching receive arrives — so code that deadlocks under
//!   MPI's synchronizing large-message semantics deadlocks here too.
//!
//! Matching follows MPI's non-overtaking rule per `(context, source,
//! destination, tag)` envelope: FIFO queues, no wildcards.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::mailbox::{LockFreeMailbox, Mailbox, MatchPair, PostedOp, RecvPost, RtKey, SendPost};
use crate::progress::ProgressShards;
use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};

use ovcomm_obs::Histogram;
use ovcomm_simmpi::payload::Payload;
use ovcomm_simmpi::request::{ReqMeta, Request};
use ovcomm_simmpi::universe::PlanCache;
use ovcomm_simmpi::{CollSelector, SimMetrics, SplitResult};
use ovcomm_simnet::{
    EdgeKind, MachineProfile, NodeMap, ParkCell, SimTime, SpanKind, Trace, TraceEdge, TraceSpan,
};
use ovcomm_verify::{Event, ReqId, Verifier, VerifyMode, INTERNAL_TAG_BIT};

use crate::{ComputeMode, MailboxBackend};

/// How long a parked thread waits before re-checking the abort flag. Also
/// bounds how quickly a deadlock abort propagates to blocked threads.
pub(crate) const PARK_SLICE: Duration = Duration::from_millis(25);

/// Per-producer ring depth of the lock-free mailbox router. Deep enough
/// that a rank bursting nonblocking posts rarely self-drains; overflow is
/// handled (the poster drains to make room), never dropped.
pub(crate) const RING_CAPACITY: usize = 256;

/// Pre-registered wall-clock-only profiling handles (`rt.*` metrics),
/// feeding the same registry as the backend's `simmpi.*` handles. The
/// blame layer (`ovcomm-obs`) reads these sums to split rt wait time into
/// named causes — spin vs. park vs. rendezvous stall.
pub(crate) struct RtProf {
    /// Per rank: wait time spent spinning (not parked), ns.
    pub wait_spin_ns: Vec<Histogram>,
    /// Per rank: wait time spent parked on the condvar, ns.
    pub wait_park_ns: Vec<Histogram>,
    /// Per rank: time the first-posted side of a rendezvous pair waited
    /// for its partner to post, ns. Attributed to the late-matched rank's
    /// peer (the side that stalled).
    pub rendezvous_stall_ns: Vec<Histogram>,
}

impl RtProf {
    pub fn new(metrics: &SimMetrics, nranks: usize) -> RtProf {
        let reg = metrics.registry();
        let per_rank = |name: &str| -> Vec<Histogram> {
            (0..nranks)
                .map(|r| reg.histogram(name, &[("rank", r.to_string())]))
                .collect()
        };
        RtProf {
            wait_spin_ns: per_rank("rt.wait_spin_ns"),
            wait_park_ns: per_rank("rt.wait_park_ns"),
            rendezvous_stall_ns: per_rank("rt.rendezvous_stall_ns"),
        }
    }
}

/// One posted send parked in the mailbox awaiting its receive.
pub(crate) struct Slot {
    pub payload: Payload,
    /// Sender's request — already complete for eager sends (buffered),
    /// completed at match time for rendezvous.
    pub sender_req: Request<()>,
    /// Eager protocol? (Decides whether matching must also complete the
    /// sender.)
    pub eager: bool,
    /// Wall time the send was posted, for rendezvous-stall accounting.
    pub posted_at: SimTime,
}

/// Accumulates `split` participants until the whole communicator called.
pub(crate) struct RtSplitGather {
    pub entries: Vec<(usize, i64, u64)>,
    pub expected: usize,
    pub waiters: Vec<Arc<ParkCell>>,
    pub result: Option<Arc<SplitResult>>,
}

/// What a posted receive parks in the mailbox: its request plus the post
/// time, for rendezvous-stall accounting.
pub(crate) type RecvEntry = (Request<Payload>, SimTime);

/// The envelope-matching transport, selected by
/// [`MailboxBackend`](crate::MailboxBackend).
pub(crate) enum Transport {
    /// Pre-fast-path behaviour: one global mutex around the sequential
    /// matching tables. Kept selectable so microbenches can measure
    /// against the historical baseline and semantics suites can re-run
    /// against both backends.
    Locked(Mutex<Mailbox<Slot, RecvEntry>>),
    /// The lock-free router: per-rank SPSC rings + an MPSC injector in
    /// front of the same sequential tables (see [`crate::mailbox`]).
    LockFree(LockFreeMailbox<Slot, RecvEntry>),
}

impl Transport {
    /// (unmatched sends, posted receives) — the sampler's mailbox gauges.
    pub fn gauges(&self) -> (usize, usize) {
        match self {
            Transport::Locked(mb) => {
                let mb = mb.lock();
                (mb.unmatched_sends(), mb.posted_recvs())
            }
            Transport::LockFree(lf) => (lf.unmatched_sends(), lf.posted_recvs()),
        }
    }
}

/// The mutex-protected mutable state of one runtime instance. Hot-path
/// traffic counters and the matching tables used to live here; they moved
/// to atomics and the lock-free [`Transport`] so only cold control-plane
/// state (communicator registry, split rendezvous, end times) takes this
/// lock.
#[derive(Default)]
pub(crate) struct RtState {
    /// (parent ctx, per-rank dup/split sequence) → child ctx. All ranks
    /// call dup/split in the same order, so the key is rank-independent.
    pub ctx_registry: HashMap<(u32, u64), u32>,
    pub next_ctx: u32,
    /// In-progress `split` rendezvous, keyed by (parent ctx, split seq).
    pub splits: HashMap<(u32, u64), RtSplitGather>,
    /// Live one-sided windows, keyed by (creating ctx, per-comm window
    /// seq). All members call `win_create` in the same order, so the key
    /// is rank-independent; the last `free` removes the entry.
    pub windows: HashMap<(u32, u64), Arc<crate::window::RtWinCore>>,
    /// Final wall clock of each rank, recorded as rank closures return.
    pub rank_end_times: Vec<SimTime>,
}

impl RtState {
    /// Allocate (or look up) a child context for `(parent, seq)`.
    pub fn child_ctx(&mut self, parent: u32, seq: u64) -> u32 {
        if let Some(&c) = self.ctx_registry.get(&(parent, seq)) {
            return c;
        }
        let c = self.next_ctx;
        self.next_ctx += 1;
        self.ctx_registry.insert((parent, seq), c);
        c
    }
}

/// Everything shared between rank threads, progress workers, and the
/// watchdog.
pub(crate) struct RtShared {
    /// Wall-clock epoch; `now()` is nanoseconds since this instant.
    pub epoch: Instant,
    pub profile: MachineProfile,
    pub nodemap: NodeMap,
    pub state: Mutex<RtState>,
    /// The envelope-matching transport (locked or lock-free).
    pub transport: Transport,
    /// The sharded progress engine for nonblocking-collective jobs.
    pub progress: ProgressShards,
    /// Busy-poll budget of a wait before it falls back to parking, ns.
    pub spin_budget_ns: u64,
    /// Busy-poll flavour: `true` yields the CPU between completion checks
    /// (the lock-free default — on hosts with fewer cores than runnable
    /// threads the peer needs the CPU to make progress), `false` is the
    /// historical pure `spin_loop`.
    pub poll_yield: bool,
    /// Bytes whose src/dst ranks live on different logical nodes (kept so
    /// traffic accounting matches the simulator's).
    pub inter_bytes: AtomicU64,
    /// Bytes between ranks mapped to the same logical node.
    pub intra_bytes: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
    pub metrics: SimMetrics,
    pub prof: RtProf,
    pub compute: ComputeMode,
    pub tracing: bool,
    pub trace: Mutex<Trace>,
    pub verify: Option<Arc<Verifier>>,
    pub verify_mode: VerifyMode,
    pub coll_select: CollSelector,
    /// Unconditionally `parking_lot` (not [`crate::sync`]): the type is
    /// pinned by `ovcomm_simmpi::compile_plans`, and plan compilation is
    /// not on a loom-checked path.
    pub plan_cache: parking_lot::Mutex<PlanCache>,
    pub op_panics: Mutex<Vec<(u32, String)>>,
    /// Threads currently executing user or collective code: rank threads
    /// plus outstanding nonblocking-collective jobs.
    pub live: AtomicUsize,
    /// Of those, how many are parked inside a wait right now.
    pub blocked: AtomicUsize,
    /// Bumped on every request completion; the watchdog declares deadlock
    /// only when this stops moving while everyone is blocked.
    pub progress_epoch: AtomicU64,
    /// Set by the watchdog on deadlock; parked threads panic when they see
    /// it on their next park timeout.
    pub aborted: AtomicBool,
    /// `(agent id, world rank)` of threads currently parked in a wait, for
    /// the deadlock diagnosis.
    pub blocked_agents: Mutex<HashMap<u32, u32>>,
    /// Snapshot of `blocked_agents` taken by the watchdog at abort time.
    pub deadlock_blocked: Mutex<Vec<(u32, u32)>>,
}

impl RtShared {
    /// Nanoseconds since the run's epoch, as the backend's `SimTime`.
    pub fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Complete `req` with `value` at the current wall time and wake every
    /// parked waiter.
    pub fn complete<T>(&self, req: &Request<T>, value: T) {
        let at = self.now();
        for cell in req.complete(value, at) {
            cell.wake_direct(at);
        }
        self.progress_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a trace span (no-op unless tracing).
    pub fn span(
        &self,
        actor: u32,
        kind: SpanKind,
        chunk: Option<u32>,
        start: SimTime,
        end: SimTime,
        label: impl FnOnce() -> String,
    ) {
        if !self.tracing {
            return;
        }
        self.trace.lock().push(TraceSpan {
            actor,
            kind,
            label: label(),
            chunk,
            start,
            end,
        });
    }

    /// Record a happens-before edge (no-op unless tracing) — same edge
    /// vocabulary as the simulator, so obs rebuilds either backend's DAG
    /// with one code path.
    pub fn edge(
        &self,
        kind: EdgeKind,
        from_actor: u32,
        from_time: SimTime,
        to_actor: u32,
        to_time: SimTime,
    ) {
        if !self.tracing {
            return;
        }
        self.trace.lock().push_edge(TraceEdge {
            kind,
            from_actor,
            from_time,
            to_actor,
            to_time,
        });
    }

    /// Record a panic that unwound a progress job.
    pub fn record_op_panic(&self, rank: u32, msg: String) {
        self.op_panics.lock().push((rank, msg));
    }

    /// Charge modeled time per the run's [`ComputeMode`]: skipped entirely,
    /// or emulated by really sleeping for the modeled duration.
    pub fn charge(&self, d: ovcomm_simnet::SimDur) {
        match self.compute {
            ComputeMode::Skip => {}
            ComputeMode::Emulate => {
                if d.as_nanos() > 0 {
                    std::thread::sleep(Duration::from_nanos(d.as_nanos()));
                }
            }
        }
    }

    /// A fresh request, tracked when verification is on. `record` builds
    /// the post event for the minted request id.
    pub fn new_req<T>(&self, record: impl FnOnce(ReqId) -> Event) -> Request<T> {
        match self.verify.as_ref() {
            Some(v) => {
                let id = v.next_req_id();
                v.record(record(id));
                Request::new_tracked(ReqMeta {
                    verifier: v.clone(),
                    id,
                })
            }
            None => Request::new(),
        }
    }

    /// Block `agent` (parked on `cell`) until `req` completes; returns the
    /// value. This is the runtime's `MPI_Wait`: register as a waiter, park
    /// the OS thread in bounded slices, re-check, and panic out if the
    /// watchdog declared the run deadlocked.
    pub fn wait_req<T>(&self, agent: u32, rank: u32, cell: &Arc<ParkCell>, req: &Request<T>) -> T {
        if let (Some(v), Some(id)) = (self.verify.as_ref(), req.verify_id()) {
            v.wait_begin(agent, id);
        }
        // Spin-vs-park accounting: total wait time minus time spent parked
        // on the condvar is "spin" (busy checking and bookkeeping). The
        // blame layer uses the two per-rank sums to split rt wait time
        // into named causes.
        let t0 = self.now();
        let spin_until = t0 + ovcomm_simnet::SimDur(self.spin_budget_ns);
        let mut park_ns: u64 = 0;
        let out = loop {
            if let Some((v, _at)) = req.try_take() {
                // Drop any wake raced in after the value was taken; a stale
                // pending would only cause one spurious (harmless) loop in
                // the next wait, but keep the cell clean anyway.
                cell.take_pending_direct();
                break v;
            }
            // Burn a short busy-poll budget before the first park: fast
            // completions then skip the park/unpark round trip entirely.
            // Under `poll_yield` each failed check releases the CPU — on a
            // box with fewer cores than runnable threads, the completion
            // we are polling for can only happen if the peer gets to run.
            if self.now() < spin_until {
                if self.poll_yield {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            if req.add_waiter(cell) {
                self.blocked.fetch_add(1, Ordering::SeqCst);
                self.blocked_agents.lock().insert(agent, rank);
                let parked_at = self.now();
                let woke = cell.park_timeout_direct(PARK_SLICE);
                park_ns += self.now().saturating_since(parked_at).as_nanos();
                self.blocked_agents.lock().remove(&agent);
                self.blocked.fetch_sub(1, Ordering::SeqCst);
                if woke.is_none() && self.aborted.load(Ordering::SeqCst) {
                    panic!(
                        "rt deadlock: every thread is blocked and no request completed \
                         (mismatched send/recv or collective call order?)"
                    );
                }
            }
        };
        let total_ns = self.now().saturating_since(t0).as_nanos();
        let r = rank as usize;
        if r < self.prof.wait_spin_ns.len() {
            self.prof.wait_spin_ns[r].record(total_ns.saturating_sub(park_ns));
            self.prof.wait_park_ns[r].record(park_ns);
        }
        if let (Some(v), Some(id)) = (self.verify.as_ref(), req.verify_id()) {
            v.record(Event::WaitDone { agent, req: id });
            v.wait_end(agent);
        }
        out
    }

    /// The ring index of the calling thread, if it is a rank thread (rank
    /// agents' ids equal their world rank; op-actor ids carry bit 31).
    fn ring_producer(agent: u32, rank: u32) -> Option<usize> {
        (agent & 0x8000_0000 == 0).then_some(rank as usize)
    }

    /// Post a nonblocking send: match against queued receives or park the
    /// payload in the mailbox. Runs inline on the caller — there is no
    /// modeled post cost; the real cost *is* the code.
    pub fn isend_raw(
        &self,
        agent: u32,
        rank: u32,
        site: ovcomm_verify::Site,
        key: RtKey,
        payload: Payload,
    ) -> Request<()> {
        let n = payload.len();
        let eager = n < self.profile.eager_limit;
        let req = self.new_req::<()>(|id| Event::SendPost {
            agent,
            rank,
            ctx: key.ctx,
            dst: key.dst,
            tag: key.tag,
            bytes: n,
            internal: key.tag & INTERNAL_TAG_BIT != 0,
            req: id,
            site: Some(site),
        });
        if eager {
            // Buffered: the sender may proceed immediately.
            self.complete(&req, ());
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        if self.nodemap.node_of(key.src as usize) == self.nodemap.node_of(key.dst as usize) {
            self.intra_bytes.fetch_add(n as u64, Ordering::Relaxed);
        } else {
            self.inter_bytes.fetch_add(n as u64, Ordering::Relaxed);
        }
        let slot = Slot {
            payload,
            sender_req: req.clone(),
            eager,
            posted_at: self.now(),
        };
        match &self.transport {
            Transport::Locked(mb) => {
                let matched = match mb.lock().post_send(key, slot) {
                    SendPost::Matched { send, recv } => Some(MatchPair { key, send, recv }),
                    SendPost::Parked(_) => None,
                };
                if let Some(m) = matched {
                    self.deliver_match(m);
                }
            }
            Transport::LockFree(lf) => {
                let mut out = Vec::new();
                // Safety: `ring_producer` returns `Some(rank)` only for
                // rank agents, and rank `rank`'s agent only ever runs on
                // its own OS thread — the single-producer contract.
                unsafe {
                    lf.post(
                        Self::ring_producer(agent, rank),
                        PostedOp::Send { key, slot },
                        &mut out,
                    )
                };
                for m in out {
                    self.deliver_match(m);
                }
            }
        }
        req
    }

    /// Post a nonblocking receive: match against the mailbox or queue.
    pub fn irecv_raw(
        &self,
        agent: u32,
        rank: u32,
        site: ovcomm_verify::Site,
        key: RtKey,
    ) -> Request<Payload> {
        let req = self.new_req::<Payload>(|id| Event::RecvPost {
            agent,
            rank,
            ctx: key.ctx,
            src: key.src,
            tag: key.tag,
            internal: key.tag & INTERNAL_TAG_BIT != 0,
            req: id,
            site: Some(site),
        });
        let entry = (req.clone(), self.now());
        match &self.transport {
            Transport::Locked(mb) => {
                let matched = match mb.lock().post_recv(key, entry) {
                    RecvPost::Matched { send, recv } => Some(MatchPair { key, send, recv }),
                    RecvPost::Parked => None,
                };
                if let Some(m) = matched {
                    self.deliver_match(m);
                }
            }
            Transport::LockFree(lf) => {
                let mut out = Vec::new();
                // Safety: as in `isend_raw` — the producer index is the
                // calling rank thread's own ring.
                unsafe {
                    lf.post(
                        Self::ring_producer(agent, rank),
                        PostedOp::Recv { key, entry },
                        &mut out,
                    )
                };
                for m in out {
                    self.deliver_match(m);
                }
            }
        }
        req
    }

    /// Complete one matched send/receive pair: verify-log the match,
    /// attribute any rendezvous stall to the rank whose partner was late,
    /// record the happens-before edge, and complete both requests.
    ///
    /// Runs on whichever thread discovered the match — the poster itself
    /// on the locked path, possibly a different poster acting as matcher
    /// on the lock-free path. Pairs are independent (distinct requests),
    /// so delivery order across pairs is free.
    fn deliver_match(&self, m: MatchPair<Slot, RecvEntry>) {
        let MatchPair {
            key,
            send,
            recv: (recv_req, recv_posted_at),
        } = m;
        self.record_match(send.sender_req.verify_id(), recv_req.verify_id());
        let now = self.now();
        let send_first = send.posted_at <= recv_posted_at;
        if !send.eager {
            // The first-posted side of a rendezvous pair stalls from its
            // post until the partner shows up; blame that side's rank.
            let (stall, blamed) = if send_first {
                (now.saturating_since(send.posted_at).as_nanos(), key.src)
            } else {
                (now.saturating_since(recv_posted_at).as_nanos(), key.dst)
            };
            if let Some(h) = self.prof.rendezvous_stall_ns.get(blamed as usize) {
                h.record(stall);
            }
        }
        let edge_from = if send_first { send.posted_at } else { now };
        self.edge(EdgeKind::SendRecv, key.src, edge_from, key.dst, now);
        // Rendezvous senders complete at match time (the receiver has
        // arrived); eager senders completed at post.
        if !send.eager {
            self.complete(&send.sender_req, ());
        }
        self.complete(&recv_req, send.payload);
    }

    /// Record a send/recv pairing (before either completion, mirroring the
    /// simulator's log ordering guarantee).
    fn record_match(&self, send: Option<ReqId>, recv: Option<ReqId>) {
        if let (Some(v), Some(s), Some(r)) = (self.verify.as_ref(), send, recv) {
            v.record(Event::Match { send: s, recv: r });
        }
    }

    /// Build the configured transport.
    pub fn make_transport(backend: MailboxBackend, nranks: usize) -> Transport {
        match backend {
            MailboxBackend::Locked => Transport::Locked(Mutex::new(Mailbox::new())),
            MailboxBackend::LockFree => {
                Transport::LockFree(LockFreeMailbox::new(nranks, RING_CAPACITY))
            }
        }
    }
}
