//! The runtime's communicator handle and per-rank context.
//!
//! [`RtComm`] presents the same surface as the simulator's
//! `ovcomm_simmpi::Comm` — dup/split, point-to-point, requests, blocking
//! and nonblocking collectives — and implements the backend-neutral
//! [`Communicator`] trait, so kernels written against the trait run
//! unchanged here. Collectives are *not* reimplemented: every instance
//! compiles through `ovcomm_simmpi::compile_plans` (same `CollSelector`,
//! same static lint wall) and executes through the shared
//! `execute_plan` interpreter; only the I/O surface ([`RtCollCtx`],
//! implementing `PlanIo`) differs — internal messages go through the
//! shared-memory mailbox and reductions cost real CPU instead of a
//! γ-model charge.

use crate::sync::{AtomicU64, Ordering};
use std::cell::Cell;
use std::sync::Arc;

use ovcomm_simmpi::payload::Payload;
use ovcomm_simmpi::planexec::{execute_plan, PlanIo};
use ovcomm_simmpi::{compile_plans, OpKind, Request};
use ovcomm_simnet::{MachineProfile, NodeMap, ParkCell, SimDur, SimTime, SpanKind};
use ovcomm_verify::plan::CollPlan;
use ovcomm_verify::{CollKind, Event as VEvent, ReqId, Site};

use crate::mailbox::RtKey;
use crate::shared::{RtShared, RtSplitGather, PARK_SLICE};
use crate::ComputeMode;

/// Deterministic actor id for the `op_idx`-th nonblocking operation posted
/// by `rank` — the same encoding the simulator uses, so verify logs and
/// Perfetto track names read identically on both backends.
fn op_actor_id(rank: u32, op_idx: u64) -> u32 {
    assert!(
        rank < (1 << 17),
        "rank {rank} too large for op-actor encoding"
    );
    assert!(
        op_idx < (1 << 14),
        "rank {rank} posted more than 16384 nonblocking operations in one run"
    );
    0x8000_0000 | (rank << 14) | (op_idx as u32)
}

/// Unwrap a collective result that the plan contract guarantees exists.
fn expect_out(out: Option<Payload>, what: &str) -> Payload {
    match out {
        Some(v) => v,
        None => panic!("{what} plan produced no output"),
    }
}

/// An execution identity on the runtime: actor id, the world rank it acts
/// for, its park cell, and the shared runtime. The analogue of the
/// simulator's `Agent`, minus the virtual clock (time is the wall).
#[derive(Clone)]
pub(crate) struct RtAgent {
    pub id: u32,
    pub rank: u32,
    pub cell: Arc<ParkCell>,
    /// Counter of nonblocking operations posted by this rank (mints op
    /// actor ids). Only rank agents use it.
    pub op_counter: Arc<AtomicU64>,
    pub shared: Arc<RtShared>,
}

impl RtAgent {
    pub(crate) fn wait<T>(&self, req: &Request<T>) -> T {
        self.shared.wait_req(self.id, self.rank, &self.cell, req)
    }
}

/// Group/topology info shared by all clones of a communicator handle.
#[derive(Clone)]
pub(crate) struct RtCommInfo {
    pub(crate) ctx: u32,
    pub(crate) ranks: Arc<Vec<u32>>,
    pub(crate) me: usize,
}

/// A communicator handle for one rank of the wall-clock runtime.
#[derive(Clone)]
pub struct RtComm {
    pub(crate) info: RtCommInfo,
    pub(crate) agent: RtAgent,
    dup_seq: Arc<AtomicU64>,
    split_seq: Arc<AtomicU64>,
    coll_seq: Arc<AtomicU64>,
    /// Per-rank window-creation counter (all members call `win_create` in
    /// the same order, so the values agree across ranks).
    win_seq: Arc<AtomicU64>,
}

impl RtComm {
    pub(crate) fn new_world(agent: RtAgent, ranks: Arc<Vec<u32>>, me: usize) -> RtComm {
        RtComm::with_info(
            RtCommInfo {
                ctx: crate::WORLD_CTX,
                ranks,
                me,
            },
            agent,
        )
    }

    fn with_info(info: RtCommInfo, agent: RtAgent) -> RtComm {
        if let Some(v) = agent.shared.verify.as_ref() {
            v.record(VEvent::CommDecl {
                ctx: info.ctx,
                members: info.ranks.clone(),
            });
        }
        RtComm {
            info,
            agent,
            dup_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            win_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    fn record_coll(
        &self,
        kind: CollKind,
        root: Option<u32>,
        len: usize,
        blocking: bool,
        site: Site,
    ) {
        if let Some(v) = self.agent.shared.verify.as_ref() {
            v.record(VEvent::Coll {
                agent: self.agent.id,
                rank: self.agent.rank,
                ctx: self.info.ctx,
                kind,
                root,
                len,
                blocking,
                req: None,
                op_agent: None,
                site: Some(site),
            });
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.info.ranks.len()
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.info.me
    }

    /// World rank of communicator index `idx`.
    pub fn world_rank(&self, idx: usize) -> usize {
        self.info.ranks[idx] as usize
    }

    fn coll_seq_next(&self) -> u64 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn plans(&self, kind: CollKind, n: usize, root: usize) -> Arc<Vec<CollPlan>> {
        let sh = &self.agent.shared;
        compile_plans(
            &sh.plan_cache,
            &sh.coll_select,
            sh.verify_mode,
            self.size(),
            kind,
            n,
            root,
        )
    }

    fn key_to(&self, dst: usize, tag: u64) -> RtKey {
        RtKey {
            ctx: self.info.ctx,
            src: self.info.ranks[self.info.me],
            dst: self.info.ranks[dst],
            tag,
        }
    }

    fn key_from(&self, src: usize, tag: u64) -> RtKey {
        RtKey {
            ctx: self.info.ctx,
            src: self.info.ranks[src],
            dst: self.info.ranks[self.info.me],
            tag,
        }
    }

    /// Record the wall duration of a blocking call that started at `t0`.
    fn blocking_done(&self, t0: SimTime) {
        let d = self.agent.shared.now().saturating_since(t0);
        self.agent
            .shared
            .metrics
            .blocking_duration(self.agent.rank, d.as_nanos());
    }

    // ---------------------------------------------------------------
    // Communicator management
    // ---------------------------------------------------------------

    /// Duplicate: a new context over the same group (all members call in
    /// the same order, as in MPI).
    #[track_caller]
    pub fn dup(&self) -> RtComm {
        self.record_coll(
            CollKind::Dup,
            None,
            0,
            false,
            std::panic::Location::caller(),
        );
        let seq = self.dup_seq.fetch_add(1, Ordering::Relaxed);
        let sh = &self.agent.shared;
        sh.metrics.comm_dup(self.agent.rank, self.info.ctx);
        let ctx = sh.state.lock().child_ctx(self.info.ctx, seq);
        RtComm::with_info(
            RtCommInfo {
                ctx,
                ranks: self.info.ranks.clone(),
                me: self.info.me,
            },
            self.agent.clone(),
        )
    }

    /// `n` duplicates (the N_DUP bundles of the overlap technique).
    #[track_caller]
    pub fn dup_n(&self, n: usize) -> Vec<RtComm> {
        (0..n).map(|_| self.dup()).collect()
    }

    /// Collective window creation (`MPI_Win_create`): every member exposes
    /// `local` as its segment and gets back a handle over all segments.
    /// The window starts **outside** any epoch — the first
    /// [`crate::window::RtWin::fence`] opens the first access epoch, or
    /// take a passive-target [`crate::window::RtWin::lock`].
    #[track_caller]
    pub fn win_create(&self, local: Payload) -> crate::window::RtWin {
        let site: Site = std::panic::Location::caller();
        let sh = self.agent.shared.clone();
        let seq = self.win_seq.fetch_add(1, Ordering::Relaxed);
        let key = (self.info.ctx, seq);
        let id = ((self.info.ctx as u64) << 32) | seq;
        let p = self.size();
        if let Some(v) = sh.verify.as_ref() {
            v.record(VEvent::WinDecl {
                agent: self.agent.id,
                rank: self.agent.rank,
                ctx: self.info.ctx,
                win: id,
                len: local.len(),
                site: Some(site),
            });
        }
        crate::window::rma_metric(&sh, self.agent.rank, "win_create", local.len());
        let core = {
            let mut st = sh.state.lock();
            st.windows
                .entry(key)
                .or_insert_with(|| Arc::new(crate::window::WinCore::new(p)))
                .clone()
        };
        core.deposit(self.rank(), &local);
        // Private duplicate for the window's own barriers, so fence
        // traffic can never match user traffic on the parent comm.
        let wcomm = self.dup();
        // Creation is collective: no rank may issue one-sided ops until
        // every segment is deposited.
        wcomm.barrier();
        crate::window::RtWin::new(wcomm, core, key, id)
    }

    /// Split by color/key (like `MPI_Comm_split`). Negative colors get
    /// `None`. Synchronizes all members: every rank deposits its
    /// (rank, color, key), the last one computes the grouping (through the
    /// simulator's shared `SplitResult` logic) and wakes everyone.
    // The `expect`s assert split-rendezvous bookkeeping shared by all
    // members; `position` must succeed because this rank is in its group.
    #[allow(clippy::expect_used, clippy::unwrap_used)]
    #[track_caller]
    pub fn split(&self, color: i64, key: u64) -> Option<RtComm> {
        self.record_coll(
            CollKind::Split,
            None,
            0,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        let sh = self.agent.shared.clone();
        let gather_key = (self.info.ctx, seq);
        let expected = self.size();
        let me = self.rank();

        let to_wake = {
            let mut st = sh.state.lock();
            let entry = st
                .splits
                .entry(gather_key)
                .or_insert_with(|| RtSplitGather {
                    entries: Vec::new(),
                    expected,
                    waiters: Vec::new(),
                    result: None,
                });
            entry.entries.push((me, color, key));
            entry.waiters.push(self.agent.cell.clone());
            if entry.entries.len() == expected {
                // Last depositor: compute groups, allocate child contexts
                // through the registry (so every rank agrees), publish.
                let mut sg = st.splits.remove(&gather_key).expect("split entry");
                let parent = self.info.ctx;
                let at = sh.now();
                let mut res = ovcomm_simmpi::SplitResult::compute(&sg.entries, at, || 0);
                for (gi, g) in res.groups.iter_mut().enumerate() {
                    g.1 = st.child_ctx(parent, (1 << 32) | (seq << 8) | gi as u64);
                }
                sg.result = Some(Arc::new(res));
                let waiters = std::mem::take(&mut sg.waiters);
                st.splits.insert(gather_key, sg);
                Some(waiters)
            } else {
                None
            }
        };
        if let Some(waiters) = to_wake {
            let at = sh.now();
            for cell in &waiters {
                cell.wake_direct(at);
            }
            sh.progress_epoch.fetch_add(1, Ordering::Relaxed);
        }

        // Wait until the result is available; a rank missing from the split
        // shows up in a deadlock diagnosis as "blocked in MPI_Comm_split".
        if let Some(v) = sh.verify.as_ref() {
            v.wait_begin_split(self.agent.id, self.info.ctx);
        }
        let result = loop {
            {
                let mut st = sh.state.lock();
                let entry = st
                    .splits
                    .get_mut(&gather_key)
                    .expect("split entry vanished");
                if let Some(res) = entry.result.clone() {
                    // Last reader cleans up.
                    entry.expected -= 1;
                    if entry.expected == 0 {
                        st.splits.remove(&gather_key);
                    }
                    break res;
                }
            }
            self.agent.shared.blocked.fetch_add(1, Ordering::SeqCst);
            sh.blocked_agents
                .lock()
                .insert(self.agent.id, self.agent.rank);
            let woke = self.agent.cell.park_timeout_direct(PARK_SLICE);
            sh.blocked_agents.lock().remove(&self.agent.id);
            self.agent.shared.blocked.fetch_sub(1, Ordering::SeqCst);
            if woke.is_none() && sh.aborted.load(Ordering::SeqCst) {
                panic!("rt deadlock: blocked in MPI_Comm_split (member missing from the split?)");
            }
        };
        if let Some(v) = sh.verify.as_ref() {
            v.wait_end(self.agent.id);
        }
        self.agent.cell.take_pending_direct();

        if color < 0 {
            return None;
        }
        let (ctx, members) = result
            .group_of(me)
            .expect("non-negative color must produce a group");
        let my_index = members.iter().position(|&r| r == me).unwrap();
        let world_ranks: Vec<u32> = members.iter().map(|&r| self.info.ranks[r]).collect();
        Some(RtComm::with_info(
            RtCommInfo {
                ctx,
                ranks: Arc::new(world_ranks),
                me: my_index,
            },
            self.agent.clone(),
        ))
    }

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Nonblocking send to communicator rank `dst` with a user tag.
    #[track_caller]
    pub fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        let sh = &self.agent.shared;
        sh.metrics.op(self.agent.rank, OpKind::Isend, payload.len());
        sh.isend_raw(
            self.agent.id,
            self.agent.rank,
            std::panic::Location::caller(),
            self.key_to(dst, tag as u64),
            payload,
        )
    }

    /// Nonblocking receive from communicator rank `src`.
    #[track_caller]
    pub fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        let sh = &self.agent.shared;
        sh.metrics.op(self.agent.rank, OpKind::Irecv, 0);
        sh.irecv_raw(
            self.agent.id,
            self.agent.rank,
            std::panic::Location::caller(),
            self.key_from(src, tag as u64),
        )
    }

    /// Blocking send.
    #[track_caller]
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        let sh = &self.agent.shared;
        let t0 = sh.now();
        let n = payload.len();
        sh.metrics.op(self.agent.rank, OpKind::Send, n);
        let r = self.isend(dst, tag, payload);
        self.wait(&r);
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || format!("MPI_Send {n}B -> {dst}"),
        );
    }

    /// Blocking receive; returns the payload.
    #[track_caller]
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        let sh = &self.agent.shared;
        let t0 = sh.now();
        let r = self.irecv(src, tag);
        let p = self.wait(&r);
        sh.metrics.op(self.agent.rank, OpKind::Recv, p.len());
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || format!("MPI_Recv {}B <- {src}", p.len()),
        );
        p
    }

    /// Blocking concurrent send+receive (`MPI_Sendrecv`).
    #[track_caller]
    pub fn sendrecv(&self, dst: usize, src: usize, tag: u32, payload: Payload) -> Payload {
        let rr = self.irecv(src, tag);
        let sr = self.isend(dst, tag, payload);
        self.wait(&sr);
        self.wait(&rr)
    }

    /// Wait for a request (`MPI_Wait`): blocks the OS thread until the
    /// request completes.
    pub fn wait<T>(&self, req: &Request<T>) -> T {
        let sh = &self.agent.shared;
        let t0 = sh.now();
        let v = self.agent.wait(req);
        let d = sh.now().saturating_since(t0);
        sh.metrics.wait_duration(self.agent.rank, d.as_nanos());
        v
    }

    /// Wait for a request, recording a `Wait` trace span with `label`.
    pub fn wait_traced<T>(&self, req: &Request<T>, label: &str) -> T {
        self.wait_traced_impl(req, label, None)
    }

    /// Wait for a request, recording a `Wait` trace span tagged with the
    /// pipeline chunk index the request belongs to.
    pub fn wait_traced_chunk<T>(&self, req: &Request<T>, label: &str, chunk: u32) -> T {
        self.wait_traced_impl(req, label, Some(chunk))
    }

    fn wait_traced_impl<T>(&self, req: &Request<T>, label: &str, chunk: Option<u32>) -> T {
        let sh = &self.agent.shared;
        let t0 = sh.now();
        let v = self.wait(req);
        let owned = label.to_string();
        sh.span(
            self.agent.id,
            SpanKind::Wait,
            chunk,
            t0,
            sh.now(),
            move || owned,
        );
        v
    }

    /// Nonblocking completion probe (`MPI_Test`). The wall clock cannot
    /// observe the future, so a plain completion-flag check is exact.
    pub fn test<T>(&self, req: &Request<T>) -> bool {
        let sh = &self.agent.shared;
        sh.metrics.test_probe(self.agent.rank);
        let done = req.is_complete();
        if done {
            if let (Some(v), Some(id)) = (sh.verify.as_ref(), req.verify_id()) {
                v.record(VEvent::TestObserved {
                    agent: self.agent.id,
                    req: id,
                });
            }
        }
        done
    }

    /// Wait for all requests in order (`MPI_Waitall` for sends).
    pub fn wait_all(&self, reqs: &[Request<()>]) {
        self.wait_all_payloads(reqs);
    }

    /// Wait for all requests in order and return their values.
    pub fn wait_all_payloads<T>(&self, reqs: &[Request<T>]) -> Vec<T> {
        reqs.iter().map(|r| self.wait(r)).collect()
    }

    // ---------------------------------------------------------------
    // Blocking collectives (run inline on the rank thread)
    // ---------------------------------------------------------------

    /// Blocking broadcast from `root` (`data` must be `Some` at the root).
    #[track_caller]
    pub fn bcast(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        self.record_coll(
            CollKind::Bcast,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "bcast root data length mismatch"),
                None => panic!("bcast root must supply data"),
            }
        }
        let seq = self.coll_seq_next();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Bcast, len);
        let plans = self.plans(CollKind::Bcast, len, root);
        let input = if self.info.me == root { data } else { None };
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], input),
            "bcast",
        );
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || format!("MPI_Bcast {len}B root={root}"),
        );
        out
    }

    /// Blocking sum-reduction to `root`; returns `Some` at the root.
    #[track_caller]
    pub fn reduce(&self, root: usize, contrib: Payload) -> Option<Payload> {
        self.record_coll(
            CollKind::Reduce,
            Some(root as u32),
            contrib.len(),
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range (p={p})");
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Reduce, n);
        let plans = self.plans(CollKind::Reduce, n, root);
        let out = execute_plan(&self.cctx(seq), &plans[self.info.me], Some(contrib));
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || format!("MPI_Reduce {n}B root={root}"),
        );
        out
    }

    /// Blocking sum-allreduce.
    #[track_caller]
    pub fn allreduce(&self, contrib: Payload) -> Payload {
        self.record_coll(
            CollKind::Allreduce,
            None,
            contrib.len(),
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Allreduce, n);
        let plans = self.plans(CollKind::Allreduce, n, 0);
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], Some(contrib)),
            "allreduce",
        );
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || format!("MPI_Allreduce {n}B"),
        );
        out
    }

    /// Blocking barrier.
    #[track_caller]
    pub fn barrier(&self) {
        self.record_coll(
            CollKind::Barrier,
            None,
            0,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Barrier, 0);
        let plans = self.plans(CollKind::Barrier, 0, 0);
        execute_plan(&self.cctx(seq), &plans[self.info.me], None);
        self.blocking_done(t0);
        sh.span(
            self.agent.id,
            SpanKind::BlockingCall,
            None,
            t0,
            sh.now(),
            || "MPI_Barrier".to_string(),
        );
    }

    /// Blocking scatter of `len` bytes from `root`; returns this rank's
    /// chunk.
    #[track_caller]
    pub fn scatter(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        self.record_coll(
            CollKind::Scatter,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "scatter root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "scatter root data length mismatch"),
                None => panic!("scatter root must supply data"),
            }
        }
        let seq = self.coll_seq_next();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Scatter, len);
        let plans = self.plans(CollKind::Scatter, len, root);
        let input = if self.info.me == root { data } else { None };
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], input),
            "scatter",
        );
        self.blocking_done(t0);
        out
    }

    /// Blocking gather (inverse of scatter); returns `Some` at the root.
    #[track_caller]
    pub fn gather(&self, root: usize, chunk: Payload, len: usize) -> Option<Payload> {
        self.record_coll(
            CollKind::Gather,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "gather root {root} out of range (p={p})");
        let seq = self.coll_seq_next();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Gather, len);
        let plans = self.plans(CollKind::Gather, len, root);
        let out = execute_plan(&self.cctx(seq), &plans[self.info.me], Some(chunk));
        self.blocking_done(t0);
        out
    }

    /// Blocking allgather; `len` is the assembled size.
    #[track_caller]
    pub fn allgather(&self, chunk: Payload, len: usize) -> Payload {
        self.record_coll(
            CollKind::Allgather,
            None,
            len,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.metrics.op(self.agent.rank, OpKind::Allgather, len);
        let plans = self.plans(CollKind::Allgather, len, 0);
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], Some(chunk)),
            "allgather",
        );
        self.blocking_done(t0);
        out
    }

    // ---------------------------------------------------------------
    // Nonblocking collectives (run on a progress worker)
    // ---------------------------------------------------------------

    /// Nonblocking broadcast (`MPI_Ibcast`): posts to a progress worker and
    /// returns immediately — the post cost is whatever the post really
    /// costs.
    #[track_caller]
    pub fn ibcast(&self, root: usize, data: Option<Payload>, len: usize) -> Request<Payload> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let t0 = self.agent.shared.now();
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "bcast root data length mismatch"),
                None => panic!("bcast root must supply data"),
            }
        }
        let plans = self.plans(CollKind::Bcast, len, root);
        let input = if self.info.me == root { data } else { None };
        let info = self.info.clone();
        let req = self.dispatch(
            CollKind::Bcast,
            Some(root as u32),
            len,
            seq,
            site,
            move |cctx| expect_out(execute_plan(cctx, &plans[info.me], input), "bcast"),
        );
        self.post_done(t0, OpKind::Ibcast, len, "MPI_Ibcast", root as i64);
        req
    }

    /// Nonblocking reduction (`MPI_Ireduce`); root's request yields `Some`.
    #[track_caller]
    pub fn ireduce(&self, root: usize, contrib: Payload) -> Request<Option<Payload>> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.shared.now();
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range (p={p})");
        let plans = self.plans(CollKind::Reduce, n, root);
        let info = self.info.clone();
        let req = self.dispatch(
            CollKind::Reduce,
            Some(root as u32),
            n,
            seq,
            site,
            move |cctx| execute_plan(cctx, &plans[info.me], Some(contrib)),
        );
        self.post_done(t0, OpKind::Ireduce, n, "MPI_Ireduce", root as i64);
        req
    }

    /// Nonblocking allreduce (`MPI_Iallreduce`).
    #[track_caller]
    pub fn iallreduce(&self, contrib: Payload) -> Request<Payload> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.shared.now();
        let plans = self.plans(CollKind::Allreduce, n, 0);
        let info = self.info.clone();
        let req = self.dispatch(CollKind::Allreduce, None, n, seq, site, move |cctx| {
            expect_out(
                execute_plan(cctx, &plans[info.me], Some(contrib)),
                "allreduce",
            )
        });
        self.post_done(t0, OpKind::Iallreduce, n, "MPI_Iallreduce", -1);
        req
    }

    /// Nonblocking barrier (`MPI_Ibarrier`) — the wake-up signal of the
    /// multiple-PPN sleep mechanism.
    #[track_caller]
    pub fn ibarrier(&self) -> Request<()> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let t0 = self.agent.shared.now();
        let plans = self.plans(CollKind::Barrier, 0, 0);
        let info = self.info.clone();
        let req = self.dispatch(CollKind::Barrier, None, 0, seq, site, move |cctx| {
            execute_plan(cctx, &plans[info.me], None);
        });
        self.post_done(t0, OpKind::Ibarrier, 0, "MPI_Ibarrier", -1);
        req
    }

    /// Record a nonblocking post: op counters, post-duration histogram,
    /// and a `Post` trace span.
    fn post_done(&self, t0: SimTime, kind: OpKind, bytes: usize, name: &'static str, root: i64) {
        let sh = &self.agent.shared;
        sh.metrics.op(self.agent.rank, kind, bytes);
        sh.metrics
            .post_duration(self.agent.rank, sh.now().saturating_since(t0).as_nanos());
        sh.span(self.agent.id, SpanKind::Post, None, t0, sh.now(), || {
            if root >= 0 {
                format!("{name} post {bytes}B root={root}")
            } else {
                format!("{name} post {bytes}B")
            }
        });
    }

    fn cctx(&self, seq: u64) -> RtCollCtx {
        RtCollCtx {
            agent: self.agent.clone(),
            ctx: self.info.ctx,
            ranks: self.info.ranks.clone(),
            me: self.info.me,
            seq,
        }
    }

    /// Run `f` on a progress worker under its own operation agent; the
    /// returned request completes with `f`'s value. `seq` scopes the
    /// instance's internal tags.
    fn dispatch<T, F>(
        &self,
        kind: CollKind,
        root: Option<u32>,
        len: usize,
        seq: u64,
        site: Site,
        f: F,
    ) -> Request<T>
    where
        T: Send + 'static,
        F: FnOnce(&RtCollCtx) -> T + Send + 'static,
    {
        let sh = self.agent.shared.clone();
        let rank = self.agent.rank;
        let op_idx = self.agent.op_counter.fetch_add(1, Ordering::Relaxed);
        let id = op_actor_id(rank, op_idx);
        let (req, vid): (Request<T>, Option<ReqId>) = match sh.verify.as_ref() {
            Some(v) => {
                let rid = v.next_req_id();
                v.record(VEvent::Coll {
                    agent: self.agent.id,
                    rank,
                    ctx: self.info.ctx,
                    kind,
                    root,
                    len,
                    blocking: false,
                    req: Some(rid),
                    op_agent: Some(id),
                    site: Some(site),
                });
                (
                    Request::new_tracked(ovcomm_simmpi::request::ReqMeta {
                        verifier: v.clone(),
                        id: rid,
                    }),
                    Some(rid),
                )
            }
            None => (Request::new(), None),
        };
        let req2 = req.clone();
        let ctx = self.info.ctx;
        let ranks = self.info.ranks.clone();
        let me = self.info.me;
        // The job counts as a live thread from post time, so the watchdog
        // never mistakes "everyone blocked waiting on a queued job" for a
        // deadlock.
        sh.live.fetch_add(1, Ordering::SeqCst);
        sh.metrics.pool_occupancy.inc();
        // Route by communicator: each dup'd communicator's collectives
        // progress on their own shard of the engine.
        let shard = sh.progress.shard_of(ctx);
        let sh2 = sh.clone();
        sh.progress.submit(
            shard,
            Box::new(move || {
                struct Finish(Arc<RtShared>, usize);
                impl Drop for Finish {
                    fn drop(&mut self) {
                        self.0.progress.job_finished(self.1);
                        self.0.metrics.pool_occupancy.dec();
                        self.0.live.fetch_sub(1, Ordering::SeqCst);
                        self.0.progress_epoch.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let _guard = Finish(sh2.clone(), shard);
                let cctx = RtCollCtx {
                    agent: RtAgent {
                        id,
                        rank,
                        cell: Arc::new(ParkCell::new()),
                        op_counter: Arc::new(AtomicU64::new(0)),
                        shared: sh2.clone(),
                    },
                    ctx,
                    ranks,
                    me,
                    seq,
                };
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&cctx)));
                match out {
                    Ok(v) => {
                        // Log completion before completing the request, so an
                        // analysis scanning forward from a matched wait always
                        // finds the collective's completion snapshot.
                        if let (Some(vf), Some(rid)) = (sh2.verify.as_ref(), vid) {
                            vf.record(VEvent::CollDone {
                                req: rid,
                                op_agent: id,
                            });
                        }
                        let done = sh2.now();
                        sh2.edge(ovcomm_simnet::EdgeKind::PostWait, id, done, rank, done);
                        sh2.complete(&req2, v);
                    }
                    Err(e) => {
                        // Deadlock-abort unwinds land here; record others for
                        // the runtime to surface.
                        let msg = e
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| e.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<op worker panic>".to_string());
                        sh2.record_op_panic(rank, msg);
                    }
                }
            }),
        );
        req
    }
}

/// The runtime's side of the plan executor's I/O surface: internal p2p
/// through the shared-memory mailbox, real-time slack per compute mode,
/// and no γ-charge for reductions — the executor's `reduce_sum_f64` *is*
/// the real work on this thread.
pub(crate) struct RtCollCtx {
    agent: RtAgent,
    ctx: u32,
    ranks: Arc<Vec<u32>>,
    me: usize,
    seq: u64,
}

impl RtCollCtx {
    /// Internal tag for communication step `step` of this instance — the
    /// same encoding as the simulator's `CollCtx`.
    fn tag(&self, step: u32) -> u64 {
        assert!(
            self.seq < (1 << 24),
            "too many collectives on one communicator"
        );
        (1 << 63) | (self.seq << 24) | step as u64
    }
}

impl PlanIo for RtCollCtx {
    fn p(&self) -> usize {
        self.ranks.len()
    }

    fn me(&self) -> usize {
        self.me
    }

    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        self.agent.shared.isend_raw(
            self.agent.id,
            self.agent.rank,
            std::panic::Location::caller(),
            RtKey {
                ctx: self.ctx,
                src: self.ranks[self.me],
                dst: self.ranks[dst],
                tag: self.tag(tag),
            },
            payload,
        )
    }

    fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        self.agent.shared.irecv_raw(
            self.agent.id,
            self.agent.rank,
            std::panic::Location::caller(),
            RtKey {
                ctx: self.ctx,
                src: self.ranks[src],
                dst: self.ranks[self.me],
                tag: self.tag(tag),
            },
        )
    }

    fn wait_unit(&self, r: &Request<()>) {
        self.agent.wait(r);
    }

    fn wait_payload(&self, r: &Request<Payload>) -> Payload {
        self.agent.wait(r)
    }

    fn slack(&self) {
        let d = self.agent.shared.profile.coll_round_slack;
        self.agent.shared.charge(d);
    }

    fn reduce_charge(&self, _n: usize) {
        // Real arithmetic costs real time; nothing to model.
    }

    fn now(&self) -> SimTime {
        self.agent.shared.now()
    }

    fn step_span(&self, t0: SimTime, label: impl FnOnce() -> String) {
        let sh = &self.agent.shared;
        sh.span(self.agent.id, SpanKind::CollStep, None, t0, sh.now(), label);
    }
}

// ---------------------------------------------------------------------
// The per-rank context
// ---------------------------------------------------------------------

/// Handle passed to each rank's closure on the runtime backend: identity,
/// the wall clock, and the world communicator. The analogue of the
/// simulator's `RankCtx`.
pub struct RtRankCtx {
    pub(crate) agent: RtAgent,
    pub(crate) world: RtComm,
    active_ppn: Cell<usize>,
}

impl RtRankCtx {
    pub(crate) fn new(agent: RtAgent, world: RtComm) -> RtRankCtx {
        RtRankCtx {
            agent,
            world,
            active_ppn: Cell::new(0),
        }
    }

    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.agent.rank as usize
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.agent.shared.nodemap.nranks()
    }

    /// Logical node hosting this rank (everything is physically shared
    /// memory; the node map scopes traffic accounting and PPN logic).
    pub fn node(&self) -> usize {
        self.agent.shared.nodemap.node_of(self.rank())
    }

    /// Number of ranks sharing this rank's logical node.
    pub fn ppn(&self) -> usize {
        let me = self.node();
        (0..self.nranks())
            .filter(|&r| self.agent.shared.nodemap.node_of(r) == me)
            .count()
    }

    /// The world communicator (all ranks).
    pub fn world(&self) -> RtComm {
        self.world.clone()
    }

    /// Wall-clock nanoseconds since the run's epoch.
    pub fn now(&self) -> SimTime {
        self.agent.shared.now()
    }
}

use ovcomm_core::{Communicator, RankHandle};

impl Communicator for RtComm {
    fn size(&self) -> usize {
        RtComm::size(self)
    }
    fn rank(&self) -> usize {
        RtComm::rank(self)
    }
    fn world_rank(&self, idx: usize) -> usize {
        RtComm::world_rank(self, idx)
    }
    fn dup(&self) -> Self {
        RtComm::dup(self)
    }
    fn dup_n(&self, n: usize) -> Vec<Self> {
        RtComm::dup_n(self, n)
    }
    fn split(&self, color: i64, key: u64) -> Option<Self> {
        RtComm::split(self, color, key)
    }
    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        RtComm::isend(self, dst, tag, payload)
    }
    fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        RtComm::irecv(self, src, tag)
    }
    fn send(&self, dst: usize, tag: u32, payload: Payload) {
        RtComm::send(self, dst, tag, payload)
    }
    fn recv(&self, src: usize, tag: u32) -> Payload {
        RtComm::recv(self, src, tag)
    }
    fn sendrecv(&self, dst: usize, src: usize, tag: u32, payload: Payload) -> Payload {
        RtComm::sendrecv(self, dst, src, tag, payload)
    }
    fn wait<T>(&self, req: &Request<T>) -> T {
        RtComm::wait(self, req)
    }
    fn wait_traced<T>(&self, req: &Request<T>, label: &str) -> T {
        RtComm::wait_traced(self, req, label)
    }
    fn wait_traced_chunk<T>(&self, req: &Request<T>, label: &str, chunk: u32) -> T {
        RtComm::wait_traced_chunk(self, req, label, chunk)
    }
    fn test<T>(&self, req: &Request<T>) -> bool {
        RtComm::test(self, req)
    }
    fn wait_all(&self, reqs: &[Request<()>]) {
        RtComm::wait_all(self, reqs)
    }
    fn wait_all_payloads<T>(&self, reqs: &[Request<T>]) -> Vec<T> {
        RtComm::wait_all_payloads(self, reqs)
    }
    fn bcast(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        RtComm::bcast(self, root, data, len)
    }
    fn reduce(&self, root: usize, contrib: Payload) -> Option<Payload> {
        RtComm::reduce(self, root, contrib)
    }
    fn allreduce(&self, contrib: Payload) -> Payload {
        RtComm::allreduce(self, contrib)
    }
    fn barrier(&self) {
        RtComm::barrier(self)
    }
    fn scatter(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        RtComm::scatter(self, root, data, len)
    }
    fn gather(&self, root: usize, chunk: Payload, len: usize) -> Option<Payload> {
        RtComm::gather(self, root, chunk, len)
    }
    fn allgather(&self, chunk: Payload, len: usize) -> Payload {
        RtComm::allgather(self, chunk, len)
    }
    fn ibcast(&self, root: usize, data: Option<Payload>, len: usize) -> Request<Payload> {
        RtComm::ibcast(self, root, data, len)
    }
    fn ireduce(&self, root: usize, contrib: Payload) -> Request<Option<Payload>> {
        RtComm::ireduce(self, root, contrib)
    }
    fn iallreduce(&self, contrib: Payload) -> Request<Payload> {
        RtComm::iallreduce(self, contrib)
    }
    fn ibarrier(&self) -> Request<()> {
        RtComm::ibarrier(self)
    }
    type Win = crate::window::RtWin;
    fn win_create(&self, local: Payload) -> crate::window::RtWin {
        RtComm::win_create(self, local)
    }
}

impl RankHandle for RtRankCtx {
    type Comm = RtComm;

    fn rank(&self) -> usize {
        RtRankCtx::rank(self)
    }
    fn nranks(&self) -> usize {
        RtRankCtx::nranks(self)
    }
    fn node(&self) -> usize {
        RtRankCtx::node(self)
    }
    fn ppn(&self) -> usize {
        RtRankCtx::ppn(self)
    }
    fn compute_ppn(&self) -> usize {
        let o = self.active_ppn.get();
        if o == 0 {
            self.ppn()
        } else {
            o
        }
    }
    fn set_active_ppn(&self, active: usize) {
        self.active_ppn.set(active);
    }
    fn world(&self) -> RtComm {
        RtRankCtx::world(self)
    }
    fn now(&self) -> SimTime {
        RtRankCtx::now(self)
    }
    fn advance(&self, d: SimDur) {
        self.agent.shared.charge(d);
    }
    fn compute_flops(&self, flops: f64, rate: f64) {
        assert!(rate > 0.0 && flops >= 0.0);
        let sh = &self.agent.shared;
        let t0 = sh.now();
        sh.charge(SimDur::from_secs_f64(flops / rate));
        sh.span(self.agent.id, SpanKind::Compute, None, t0, sh.now(), || {
            format!("compute {flops:.3e} flops")
        });
    }
    fn sleep(&self, d: SimDur) {
        // The sleep/poll mechanism of §III-B must really yield the core,
        // but under `Skip` long modeled naps are capped so poll loops stay
        // responsive in wall time.
        let real = std::time::Duration::from_nanos(d.as_nanos());
        let capped = match self.agent.shared.compute {
            ComputeMode::Skip => real.min(std::time::Duration::from_millis(1)),
            ComputeMode::Emulate => real,
        };
        if !capped.is_zero() {
            std::thread::sleep(capped);
        }
    }
    fn profile(&self) -> &MachineProfile {
        &self.agent.shared.profile
    }
    fn nodemap(&self) -> &NodeMap {
        &self.agent.shared.nodemap
    }
    fn trace_span(&self, kind: SpanKind, start: SimTime, end: SimTime, label: String) {
        self.agent
            .shared
            .span(self.agent.id, kind, None, start, end, move || label);
    }
    fn trace_span_chunk(
        &self,
        kind: SpanKind,
        chunk: u32,
        start: SimTime,
        end: SimTime,
        label: String,
    ) {
        self.agent
            .shared
            .span(self.agent.id, kind, Some(chunk), start, end, move || label);
    }
    fn phase_span(&self, start: SimTime, label: String) {
        let sh = &self.agent.shared;
        let end = sh.now();
        sh.span(
            self.agent.id,
            SpanKind::Phase,
            None,
            start,
            end,
            move || label,
        );
    }
    fn backend_name(&self) -> &'static str {
        "rt"
    }
}
