//! Lock-free queues for the runtime's fast path.
//!
//! Two shapes, matched to the two kinds of posting thread the runtime has:
//!
//! * [`SpscRing`] — a bounded single-producer/single-consumer ring. Each
//!   rank thread owns one ring per mailbox router; the envelope FIFO of
//!   everything that rank posts is exactly the ring order.
//! * [`MpscQueue`] — an unbounded multi-producer injector (Vyukov's
//!   intrusive MPSC design). Progress-pool workers — whose identities are
//!   dynamic and short-lived — post through it instead of owning rings.
//!
//! Both import their atomics from [`crate::sync`], so a build with
//! `RUSTFLAGS="--cfg loom"` swaps in the loom shim's model-checked
//! atomics: every load/store/swap/CAS becomes a schedule point and the
//! queue protocols are exercised under randomized interleavings
//! (`tests/loom.rs`).
//!
//! Consumer-side exclusivity is a *caller* contract (the mailbox router
//! enforces it with its drain baton), so the consumer-side and
//! producer-side methods are `unsafe fn`s with documented contracts
//! rather than silently unsound safe APIs.

use std::cell::UnsafeCell;
use std::ptr;

use crate::sync::{AtomicPtr, AtomicUsize, Ordering};

/// A bounded single-producer/single-consumer ring buffer.
///
/// Indices only ever increase (they are taken modulo the capacity when
/// addressing slots), so `tail - head` is the current occupancy and the
/// full/empty tests never suffer wrap ambiguity.
pub struct SpscRing<T> {
    mask: usize,
    /// Consumer cursor: next slot to pop.
    head: AtomicUsize,
    /// Producer cursor: next slot to fill.
    tail: AtomicUsize,
    slots: Box<[UnsafeCell<Option<T>>]>,
}

// Safety: the cells are only touched under the SPSC contract documented on
// `try_push`/`pop`; the head/tail atomics order the handoff of each slot.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding up to `capacity` items (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> SpscRing<T> {
        let cap = capacity.max(2).next_power_of_two();
        SpscRing {
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..cap).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Push `v`, or hand it back if the ring is full.
    ///
    /// # Safety
    ///
    /// At most one thread may be in `try_push` at a time (the single
    /// producer); concurrent pushes race on the same slot.
    pub unsafe fn try_push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        if tail.wrapping_sub(head) > self.mask {
            return Err(v);
        }
        // Safety: slot `tail` is outside [head, tail) so the consumer will
        // not touch it until the tail store below publishes it.
        unsafe { *self.slots[tail & self.mask].get() = Some(v) };
        self.tail.store(tail.wrapping_add(1), Ordering::SeqCst);
        Ok(())
    }

    /// Pop the oldest item, if any.
    ///
    /// # Safety
    ///
    /// At most one thread may be in `pop` at a time (the single consumer).
    /// Distinct threads may consume at different times if an external
    /// happens-before edge (e.g. a baton CAS) orders their accesses.
    pub unsafe fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        if head == tail {
            return None;
        }
        // Safety: slot `head` was published by the producer's tail store,
        // which the SeqCst load above synchronizes with.
        let v = unsafe { (*self.slots[head & self.mask].get()).take() };
        self.head.store(head.wrapping_add(1), Ordering::SeqCst);
        v
    }

    /// True when the ring currently holds nothing. Safe from any thread —
    /// it only reads the cursors (the answer may be stale by the time the
    /// caller acts on it, like any concurrent emptiness test).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst) == self.tail.load(Ordering::SeqCst)
    }

    /// Number of items currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::SeqCst)
            .wrapping_sub(self.head.load(Ordering::SeqCst))
    }
}

/// Result of an [`MpscQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The oldest item.
    Item(T),
    /// The queue is empty.
    Empty,
    /// A producer is mid-push (it has swapped the tail but not yet linked
    /// its node). The item will be visible shortly; callers should treat
    /// this as "pending work exists" and retry after backing off.
    Inconsistent,
}

struct MpscNode<T> {
    next: AtomicPtr<MpscNode<T>>,
    value: Option<T>,
}

/// Vyukov's intrusive multi-producer/single-consumer queue.
///
/// Producers are wait-free: one `swap` on the tail plus one `store` to
/// link. The consumer walks `head.next`; the one subtle state is the
/// window between a producer's swap and its link, surfaced to callers as
/// [`Popped::Inconsistent`].
pub struct MpscQueue<T> {
    /// Consumer end: a stub node whose `next` is the oldest real node.
    head: AtomicPtr<MpscNode<T>>,
    /// Producer end: the most recently pushed node.
    tail: AtomicPtr<MpscNode<T>>,
}

// Safety: producers only touch `tail` (atomics) and their own fresh node;
// the consumer contract on `pop` serializes everything else.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// An empty queue (allocates the stub node).
    pub fn new() -> MpscQueue<T> {
        let stub = Box::into_raw(Box::new(MpscNode {
            next: AtomicPtr::new(ptr::null_mut()),
            value: None,
        }));
        MpscQueue {
            head: AtomicPtr::new(stub),
            tail: AtomicPtr::new(stub),
        }
    }

    /// Push `v`. Safe from any number of threads concurrently.
    pub fn push(&self, v: T) {
        let n = Box::into_raw(Box::new(MpscNode {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(v),
        }));
        let prev = self.tail.swap(n, Ordering::SeqCst);
        // Safety: `prev` is either the stub or a node a producer published
        // earlier; nodes are only freed by the consumer *after* their
        // successor is linked, so `prev` is alive until this store lands.
        unsafe { (*prev).next.store(n, Ordering::SeqCst) };
    }

    /// Pop the oldest item.
    ///
    /// # Safety
    ///
    /// At most one thread may be in `pop` at a time (the single consumer).
    /// Distinct threads may consume at different times if an external
    /// happens-before edge (e.g. a baton CAS) orders their accesses.
    pub unsafe fn pop(&self) -> Popped<T> {
        let head = self.head.load(Ordering::SeqCst);
        // Safety: `head` is the stub or a consumed node; only the consumer
        // (us) frees nodes, and not before replacing `head`.
        let next = unsafe { (*head).next.load(Ordering::SeqCst) };
        if next.is_null() {
            return if self.tail.load(Ordering::SeqCst) == head {
                Popped::Empty
            } else {
                Popped::Inconsistent
            };
        }
        // Safety: `next` is a fully linked node; after we advance `head`
        // past it, it becomes the new stub (its value taken below).
        let value = unsafe { (*next).value.take() };
        self.head.store(next, Ordering::SeqCst);
        // Safety: the old stub is no longer reachable from head or any
        // producer (producers only hold the tail).
        drop(unsafe { Box::from_raw(head) });
        match value {
            Some(v) => Popped::Item(v),
            // Unreachable by construction (non-stub nodes carry a value),
            // but kept total rather than panicking in a queue primitive.
            None => Popped::Empty,
        }
    }

    /// True when items have been pushed (or are mid-push) and not yet
    /// consumed. Safe from any thread; racy like any emptiness test.
    pub fn has_pending(&self) -> bool {
        self.head.load(Ordering::SeqCst) != self.tail.load(Ordering::SeqCst)
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        MpscQueue::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        let mut p = self.head.load(Ordering::SeqCst);
        while !p.is_null() {
            // Safety: at drop time no other thread holds the queue; every
            // node from head onward (stub included) is owned by us.
            let next = unsafe { (*p).next.load(Ordering::SeqCst) };
            drop(unsafe { Box::from_raw(p) });
            p = next;
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn spsc_ring_is_fifo_and_bounded() {
        let ring: SpscRing<u32> = SpscRing::new(4);
        assert_eq!(ring.capacity(), 4);
        // Safety: single-threaded test — trivially SPSC.
        unsafe {
            for i in 0..4 {
                assert!(ring.try_push(i).is_ok());
            }
            assert_eq!(ring.try_push(99), Err(99));
            assert_eq!(ring.len(), 4);
            for i in 0..4 {
                assert_eq!(ring.pop(), Some(i));
            }
            assert_eq!(ring.pop(), None);
            assert!(ring.is_empty());
        }
    }

    #[test]
    fn spsc_ring_wraps_across_many_generations() {
        let ring: SpscRing<usize> = SpscRing::new(2);
        // Safety: single-threaded test.
        unsafe {
            for i in 0..1000 {
                assert!(ring.try_push(i).is_ok());
                assert_eq!(ring.pop(), Some(i));
            }
        }
    }

    #[test]
    fn mpsc_queue_keeps_order_and_frees_unconsumed() {
        let q: MpscQueue<String> = MpscQueue::new();
        for i in 0..10 {
            q.push(format!("m{i}"));
        }
        // Safety: single-threaded test — trivially single-consumer.
        unsafe {
            for i in 0..5 {
                assert_eq!(q.pop(), Popped::Item(format!("m{i}")));
            }
        }
        assert!(q.has_pending());
        // Remaining 5 nodes are freed by Drop (run under Miri/ASan in the
        // pure-crate jobs if this module ever moves there).
    }

    #[test]
    fn mpsc_empty_reports_empty() {
        let q: MpscQueue<u8> = MpscQueue::new();
        assert!(!q.has_pending());
        // Safety: single-threaded test.
        unsafe {
            assert_eq!(q.pop(), Popped::Empty);
        }
    }
}
