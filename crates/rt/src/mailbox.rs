//! The envelope-matching mailbox: MPI point-to-point matching as a pure
//! state machine.
//!
//! Extracted from the runtime's shared state so the *matching discipline*
//! — FIFO per `(context, source, destination, tag)` envelope, no
//! wildcards, non-overtaking — is a lock-free data structure that can be
//! model-checked in isolation: the loom harness (`tests/loom.rs`, built
//! with `RUSTFLAGS="--cfg loom"`) drives this exact type from concurrent
//! model threads under randomized schedules, while the production runtime
//! wraps it in [`crate::sync::Mutex`].
//!
//! The mailbox is generic over what a parked send (`S`) and a parked
//! receive (`R`) carry, so the model harness can instantiate it with
//! plain integers while the runtime stores payload handles and requests.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};

use crate::queue::{MpscQueue, Popped, SpscRing};
use crate::sync::{AtomicBool, AtomicUsize, Ordering};

/// Envelope key used for matching sends with receives (same shape as the
/// simulator's matcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtKey {
    /// Communicator context id.
    pub ctx: u32,
    /// Source world rank.
    pub src: u32,
    /// Destination world rank.
    pub dst: u32,
    /// Wire tag (internal bit + sequence + step tag).
    pub tag: u64,
}

/// Unique id of a mailbox slot (send side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

/// Outcome of posting a send.
#[must_use]
pub enum SendPost<S, R> {
    /// Matched the oldest posted receive on this envelope; the slot is
    /// handed back along with the matched receive entry.
    Matched {
        /// The send slot passed in (never entered the mailbox).
        send: S,
        /// The receive entry that had been waiting.
        recv: R,
    },
    /// No receive was waiting: the slot is parked under this id.
    Parked(SlotId),
}

/// Outcome of posting a receive.
#[must_use]
pub enum RecvPost<S, R> {
    /// Matched the oldest parked send on this envelope; the receive entry
    /// is handed back along with the matched send slot.
    Matched {
        /// The send slot that had been parked.
        send: S,
        /// The receive entry passed in (never entered the mailbox).
        recv: R,
    },
    /// No send was parked: the receive entry is queued.
    Parked,
}

/// FIFO matching tables for unmatched sends and receives.
///
/// Invariant: for any envelope key, at most one of the two queues is
/// non-empty — a post always drains the opposite queue's head before
/// parking. This is exactly MPI's non-overtaking guarantee, and the loom
/// harness asserts it holds under every explored schedule.
pub struct Mailbox<S, R> {
    /// FIFO of unmatched send slot ids per envelope.
    send_q: HashMap<RtKey, VecDeque<SlotId>>,
    /// FIFO of unmatched receives per envelope.
    recv_q: HashMap<RtKey, VecDeque<R>>,
    /// All live send slots.
    slots: HashMap<SlotId, S>,
    next_slot_id: u64,
}

impl<S, R> Default for Mailbox<S, R> {
    fn default() -> Self {
        Mailbox {
            send_q: HashMap::new(),
            recv_q: HashMap::new(),
            slots: HashMap::new(),
            next_slot_id: 0,
        }
    }
}

impl<S, R> Mailbox<S, R> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<S, R> {
        Mailbox::default()
    }

    /// Post a send: match the oldest waiting receive on `key`, or park
    /// `slot` in FIFO order.
    pub fn post_send(&mut self, key: RtKey, slot: S) -> SendPost<S, R> {
        if let Some(recv) = self.recv_q.get_mut(&key).and_then(|q| q.pop_front()) {
            return SendPost::Matched { send: slot, recv };
        }
        let id = SlotId(self.next_slot_id);
        self.next_slot_id += 1;
        self.slots.insert(id, slot);
        self.send_q.entry(key).or_default().push_back(id);
        SendPost::Parked(id)
    }

    /// Post a receive: match the oldest parked send on `key`, or queue
    /// `entry` in FIFO order.
    pub fn post_recv(&mut self, key: RtKey, entry: R) -> RecvPost<S, R> {
        if let Some(send) = self
            .send_q
            .get_mut(&key)
            .and_then(|q| q.pop_front())
            .and_then(|id| self.slots.remove(&id))
        {
            return RecvPost::Matched { send, recv: entry };
        }
        self.recv_q.entry(key).or_default().push_back(entry);
        RecvPost::Parked
    }

    /// Unmatched sends currently parked (the sampler's
    /// `rt.sampler.mailbox_slots` gauge).
    pub fn unmatched_sends(&self) -> usize {
        self.slots.len()
    }

    /// Unmatched receives currently queued (the sampler's
    /// `rt.sampler.posted_recvs` gauge).
    pub fn posted_recvs(&self) -> usize {
        self.recv_q.values().map(|q| q.len()).sum()
    }

    /// True when nothing is parked on either side — every posted operation
    /// has matched.
    pub fn is_drained(&self) -> bool {
        self.slots.is_empty() && self.posted_recvs() == 0
    }
}

/// One posted operation in flight between a posting thread and the
/// matcher.
pub enum PostedOp<S, R> {
    /// A send and its parked payload slot.
    Send {
        /// Envelope.
        key: RtKey,
        /// The send-side slot (payload handle + request on the runtime).
        slot: S,
    },
    /// A posted receive.
    Recv {
        /// Envelope.
        key: RtKey,
        /// The receive-side entry (request + post time on the runtime).
        entry: R,
    },
}

/// A matched send/receive pair handed back by the lock-free router, for
/// the caller to complete outside the matcher's critical section.
pub struct MatchPair<S, R> {
    /// The envelope both sides agreed on.
    pub key: RtKey,
    /// The send slot.
    pub send: S,
    /// The receive entry.
    pub recv: R,
}

/// Yield inside retry loops. Under loom this must be the model's yield so
/// the scheduler treats it as a preemption point; on real threads it is a
/// plain `sched_yield`, which matters on machines with fewer cores than
/// runnable threads (the peer we are waiting on needs the CPU).
fn backoff() {
    #[cfg(loom)]
    loom::thread::yield_now();
    #[cfg(not(loom))]
    std::thread::yield_now();
}

/// Lock-free front end over the sequential [`Mailbox`] state machine.
///
/// Posting threads never block on a lock. Each *rank thread* owns one
/// bounded [`SpscRing`] (indexed by its world rank); progress-pool
/// workers — dynamic, short-lived identities — share one [`MpscQueue`]
/// injector. Whichever poster finds the **drain baton** (`draining`)
/// free becomes the matcher: it drains every queue through the sequential
/// tables and hands matched pairs back to the caller. A poster that finds
/// the baton taken simply leaves — the holder is obligated to re-check
/// the queues *after* releasing the baton, so no enqueued operation is
/// ever stranded:
///
/// * the poster enqueues (queue non-emptiness becomes visible), *then*
///   tries the baton CAS;
/// * if the CAS fails, the current holder's release store precedes the
///   `true` this CAS read — so the holder's post-release re-check either
///   sees the enqueued op (and re-drains) or another poster took the
///   baton in between, to which the same obligation passes inductively.
///
/// FIFO per envelope is preserved because each envelope's posts originate
/// from exactly one posting thread (ring order) or one logical op stream,
/// and the matcher applies each queue in order.
pub struct LockFreeMailbox<S, R> {
    /// `rings[r]` is produced only by rank thread `r`.
    rings: Vec<SpscRing<PostedOp<S, R>>>,
    /// Injector for non-rank posting threads (progress workers).
    inbox: MpscQueue<PostedOp<S, R>>,
    /// The drain baton: true while some thread is matching.
    draining: AtomicBool,
    /// Sequential matching tables; touched only while holding the baton.
    tables: UnsafeCell<Mailbox<S, R>>,
    /// Gauge mirrors maintained by the matcher, so the sampler reads the
    /// queue depths without touching the baton.
    unmatched_sends: AtomicUsize,
    posted_recvs: AtomicUsize,
}

// Safety: `tables` is only accessed while holding the `draining` baton
// (acquired/released with SeqCst RMWs, which order those accesses); the
// rings and inbox carry their own contracts.
unsafe impl<S: Send, R: Send> Send for LockFreeMailbox<S, R> {}
unsafe impl<S: Send, R: Send> Sync for LockFreeMailbox<S, R> {}

impl<S, R> LockFreeMailbox<S, R> {
    /// A router with one ring per rank thread, each `ring_capacity` deep.
    pub fn new(nranks: usize, ring_capacity: usize) -> LockFreeMailbox<S, R> {
        LockFreeMailbox {
            rings: (0..nranks).map(|_| SpscRing::new(ring_capacity)).collect(),
            inbox: MpscQueue::new(),
            draining: AtomicBool::new(false),
            tables: UnsafeCell::new(Mailbox::new()),
            unmatched_sends: AtomicUsize::new(0),
            posted_recvs: AtomicUsize::new(0),
        }
    }

    /// Post an operation and opportunistically match. Matched pairs are
    /// appended to `out` — possibly pairs posted by *other* threads whose
    /// drain we picked up; the caller completes them all identically.
    ///
    /// `producer`: `Some(r)` when the calling thread is rank thread `r`
    /// (uses its ring); `None` for any other thread (uses the injector).
    ///
    /// # Safety
    ///
    /// For `producer = Some(r)`: only rank thread `r` may ever pass `r`,
    /// upholding the ring's single-producer contract.
    pub unsafe fn post(
        &self,
        producer: Option<usize>,
        op: PostedOp<S, R>,
        out: &mut Vec<MatchPair<S, R>>,
    ) {
        match producer {
            Some(r) => {
                let mut op = op;
                // Safety: caller guarantees we are the only producer of
                // ring `r`.
                while let Err(back) = unsafe { self.rings[r].try_push(op) } {
                    op = back;
                    // Ring full: drain (or let the current matcher run)
                    // until a slot frees up.
                    self.poke(out);
                    backoff();
                }
            }
            None => self.inbox.push(op),
        }
        self.poke(out);
    }

    /// Try to become the matcher and drain every queue; no-op if another
    /// thread holds the baton (it will pick our work up — see the type
    /// docs for the no-strand argument).
    pub fn poke(&self, out: &mut Vec<MatchPair<S, R>>) {
        loop {
            if self
                .draining
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                return;
            }
            self.drain_holding_baton(out);
            self.draining.store(false, Ordering::SeqCst);
            // The release obligation: anything enqueued while we held the
            // baton (whose poster's CAS failed against us) must not be
            // stranded. If the queues are quiet we are done; otherwise
            // loop and try to re-take the baton.
            if !self.has_pending() {
                return;
            }
            // Pending work can also mean a producer parked mid-push
            // (MPSC inconsistency window); yield so it can finish on
            // machines with fewer cores than threads.
            backoff();
        }
    }

    /// Drain rings then inbox through the sequential tables. Must hold
    /// the baton.
    fn drain_holding_baton(&self, out: &mut Vec<MatchPair<S, R>>) {
        // Safety: the `draining` baton makes us the unique consumer of
        // every queue and the unique accessor of `tables` right now.
        let tables = unsafe { &mut *self.tables.get() };
        for ring in &self.rings {
            // Safety: baton held — unique consumer.
            while let Some(op) = unsafe { ring.pop() } {
                Self::apply(tables, op, out);
            }
        }
        // On `Empty` — or a producer's mid-push window (`Inconsistent`) —
        // stop rather than spin while holding the baton; the post-release
        // re-check picks up anything that lands.
        // Safety: baton held — unique consumer.
        while let Popped::Item(op) = unsafe { self.inbox.pop() } {
            Self::apply(tables, op, out);
        }
        self.unmatched_sends
            .store(tables.unmatched_sends(), Ordering::SeqCst);
        self.posted_recvs
            .store(tables.posted_recvs(), Ordering::SeqCst);
    }

    fn apply(tables: &mut Mailbox<S, R>, op: PostedOp<S, R>, out: &mut Vec<MatchPair<S, R>>) {
        match op {
            PostedOp::Send { key, slot } => match tables.post_send(key, slot) {
                SendPost::Matched { send, recv } => out.push(MatchPair { key, send, recv }),
                SendPost::Parked(_) => {}
            },
            PostedOp::Recv { key, entry } => match tables.post_recv(key, entry) {
                RecvPost::Matched { send, recv } => out.push(MatchPair { key, send, recv }),
                RecvPost::Parked => {}
            },
        }
    }

    /// Any operation enqueued (or mid-push) and not yet drained?
    fn has_pending(&self) -> bool {
        self.inbox.has_pending() || self.rings.iter().any(|r| !r.is_empty())
    }

    /// Unmatched parked sends (sampler gauge; matcher-maintained mirror).
    pub fn unmatched_sends(&self) -> usize {
        self.unmatched_sends.load(Ordering::SeqCst)
    }

    /// Unmatched posted receives (sampler gauge; matcher-maintained
    /// mirror).
    pub fn posted_recvs(&self) -> usize {
        self.posted_recvs.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> RtKey {
        RtKey {
            ctx: 0,
            src: 0,
            dst: 1,
            tag,
        }
    }

    #[test]
    fn send_then_recv_matches_in_fifo_order() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_send(key(7), 10), SendPost::Parked(_)));
        assert!(matches!(mb.post_send(key(7), 11), SendPost::Parked(_)));
        assert_eq!(mb.unmatched_sends(), 2);
        match mb.post_recv(key(7), 0) {
            RecvPost::Matched { send, .. } => assert_eq!(send, 10),
            RecvPost::Parked => panic!("first recv must match the oldest send"),
        }
        match mb.post_recv(key(7), 1) {
            RecvPost::Matched { send, .. } => assert_eq!(send, 11),
            RecvPost::Parked => panic!("second recv must match the newer send"),
        }
        assert!(mb.is_drained());
    }

    #[test]
    fn recv_then_send_matches_in_fifo_order() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_recv(key(3), 20), RecvPost::Parked));
        assert!(matches!(mb.post_recv(key(3), 21), RecvPost::Parked));
        assert_eq!(mb.posted_recvs(), 2);
        match mb.post_send(key(3), 0) {
            SendPost::Matched { recv, .. } => assert_eq!(recv, 20),
            SendPost::Parked(_) => panic!("send must match the oldest recv"),
        }
        match mb.post_send(key(3), 1) {
            SendPost::Matched { recv, .. } => assert_eq!(recv, 21),
            SendPost::Parked(_) => panic!("send must match the newer recv"),
        }
        assert!(mb.is_drained());
    }

    #[test]
    fn distinct_envelopes_never_cross_match() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_send(key(1), 1), SendPost::Parked(_)));
        // Different tag: must park, not steal the tag-1 slot.
        assert!(matches!(mb.post_recv(key(2), 2), RecvPost::Parked));
        // Different src: also disjoint.
        let other_src = RtKey {
            ctx: 0,
            src: 5,
            dst: 1,
            tag: 1,
        };
        assert!(matches!(mb.post_recv(other_src, 3), RecvPost::Parked));
        assert_eq!(mb.unmatched_sends(), 1);
        assert_eq!(mb.posted_recvs(), 2);
    }

    #[test]
    fn lockfree_router_matches_across_ring_and_inbox() {
        let lf: LockFreeMailbox<u32, u32> = LockFreeMailbox::new(2, 4);
        let mut out = Vec::new();
        // Rank thread 0 posts two sends through its ring...
        // Safety: this test thread is the only producer of every ring.
        unsafe {
            lf.post(
                Some(0),
                PostedOp::Send {
                    key: key(7),
                    slot: 10,
                },
                &mut out,
            );
            lf.post(
                Some(0),
                PostedOp::Send {
                    key: key(7),
                    slot: 11,
                },
                &mut out,
            );
        }
        assert!(out.is_empty());
        assert_eq!(lf.unmatched_sends(), 2);
        // ...and a progress worker posts the receives via the injector.
        unsafe {
            lf.post(
                None,
                PostedOp::Recv {
                    key: key(7),
                    entry: 0,
                },
                &mut out,
            );
            lf.post(
                None,
                PostedOp::Recv {
                    key: key(7),
                    entry: 1,
                },
                &mut out,
            );
        }
        let sends: Vec<u32> = out.iter().map(|m| m.send).collect();
        assert_eq!(sends, vec![10, 11], "FIFO must hold across queue kinds");
        assert_eq!(lf.unmatched_sends(), 0);
        assert_eq!(lf.posted_recvs(), 0);
    }

    #[test]
    fn lockfree_router_drains_a_full_ring_instead_of_dropping() {
        let lf: LockFreeMailbox<u32, u32> = LockFreeMailbox::new(1, 2);
        let mut out = Vec::new();
        // Capacity rounds to 2; push four sends — the ring must recycle
        // via self-drain, never lose an op.
        // Safety: single-threaded test.
        unsafe {
            for i in 0..4 {
                lf.post(
                    Some(0),
                    PostedOp::Send {
                        key: key(1),
                        slot: i,
                    },
                    &mut out,
                );
            }
            for i in 0..4 {
                lf.post(
                    None,
                    PostedOp::Recv {
                        key: key(1),
                        entry: i,
                    },
                    &mut out,
                );
            }
        }
        let sends: Vec<u32> = out.iter().map(|m| m.send).collect();
        assert_eq!(sends, vec![0, 1, 2, 3]);
    }
}
