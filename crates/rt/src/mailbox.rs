//! The envelope-matching mailbox: MPI point-to-point matching as a pure
//! state machine.
//!
//! Extracted from the runtime's shared state so the *matching discipline*
//! — FIFO per `(context, source, destination, tag)` envelope, no
//! wildcards, non-overtaking — is a lock-free data structure that can be
//! model-checked in isolation: the loom harness (`tests/loom.rs`, built
//! with `RUSTFLAGS="--cfg loom"`) drives this exact type from concurrent
//! model threads under randomized schedules, while the production runtime
//! wraps it in [`crate::sync::Mutex`].
//!
//! The mailbox is generic over what a parked send (`S`) and a parked
//! receive (`R`) carry, so the model harness can instantiate it with
//! plain integers while the runtime stores payload handles and requests.

use std::collections::{HashMap, VecDeque};

/// Envelope key used for matching sends with receives (same shape as the
/// simulator's matcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtKey {
    /// Communicator context id.
    pub ctx: u32,
    /// Source world rank.
    pub src: u32,
    /// Destination world rank.
    pub dst: u32,
    /// Wire tag (internal bit + sequence + step tag).
    pub tag: u64,
}

/// Unique id of a mailbox slot (send side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u64);

/// Outcome of posting a send.
#[must_use]
pub enum SendPost<S, R> {
    /// Matched the oldest posted receive on this envelope; the slot is
    /// handed back along with the matched receive entry.
    Matched {
        /// The send slot passed in (never entered the mailbox).
        send: S,
        /// The receive entry that had been waiting.
        recv: R,
    },
    /// No receive was waiting: the slot is parked under this id.
    Parked(SlotId),
}

/// Outcome of posting a receive.
#[must_use]
pub enum RecvPost<S, R> {
    /// Matched the oldest parked send on this envelope; the receive entry
    /// is handed back along with the matched send slot.
    Matched {
        /// The send slot that had been parked.
        send: S,
        /// The receive entry passed in (never entered the mailbox).
        recv: R,
    },
    /// No send was parked: the receive entry is queued.
    Parked,
}

/// FIFO matching tables for unmatched sends and receives.
///
/// Invariant: for any envelope key, at most one of the two queues is
/// non-empty — a post always drains the opposite queue's head before
/// parking. This is exactly MPI's non-overtaking guarantee, and the loom
/// harness asserts it holds under every explored schedule.
pub struct Mailbox<S, R> {
    /// FIFO of unmatched send slot ids per envelope.
    send_q: HashMap<RtKey, VecDeque<SlotId>>,
    /// FIFO of unmatched receives per envelope.
    recv_q: HashMap<RtKey, VecDeque<R>>,
    /// All live send slots.
    slots: HashMap<SlotId, S>,
    next_slot_id: u64,
}

impl<S, R> Default for Mailbox<S, R> {
    fn default() -> Self {
        Mailbox {
            send_q: HashMap::new(),
            recv_q: HashMap::new(),
            slots: HashMap::new(),
            next_slot_id: 0,
        }
    }
}

impl<S, R> Mailbox<S, R> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<S, R> {
        Mailbox::default()
    }

    /// Post a send: match the oldest waiting receive on `key`, or park
    /// `slot` in FIFO order.
    pub fn post_send(&mut self, key: RtKey, slot: S) -> SendPost<S, R> {
        if let Some(recv) = self.recv_q.get_mut(&key).and_then(|q| q.pop_front()) {
            return SendPost::Matched { send: slot, recv };
        }
        let id = SlotId(self.next_slot_id);
        self.next_slot_id += 1;
        self.slots.insert(id, slot);
        self.send_q.entry(key).or_default().push_back(id);
        SendPost::Parked(id)
    }

    /// Post a receive: match the oldest parked send on `key`, or queue
    /// `entry` in FIFO order.
    pub fn post_recv(&mut self, key: RtKey, entry: R) -> RecvPost<S, R> {
        if let Some(send) = self
            .send_q
            .get_mut(&key)
            .and_then(|q| q.pop_front())
            .and_then(|id| self.slots.remove(&id))
        {
            return RecvPost::Matched { send, recv: entry };
        }
        self.recv_q.entry(key).or_default().push_back(entry);
        RecvPost::Parked
    }

    /// Unmatched sends currently parked (the sampler's
    /// `rt.sampler.mailbox_slots` gauge).
    pub fn unmatched_sends(&self) -> usize {
        self.slots.len()
    }

    /// Unmatched receives currently queued (the sampler's
    /// `rt.sampler.posted_recvs` gauge).
    pub fn posted_recvs(&self) -> usize {
        self.recv_q.values().map(|q| q.len()).sum()
    }

    /// True when nothing is parked on either side — every posted operation
    /// has matched.
    pub fn is_drained(&self) -> bool {
        self.slots.is_empty() && self.posted_recvs() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> RtKey {
        RtKey {
            ctx: 0,
            src: 0,
            dst: 1,
            tag,
        }
    }

    #[test]
    fn send_then_recv_matches_in_fifo_order() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_send(key(7), 10), SendPost::Parked(_)));
        assert!(matches!(mb.post_send(key(7), 11), SendPost::Parked(_)));
        assert_eq!(mb.unmatched_sends(), 2);
        match mb.post_recv(key(7), 0) {
            RecvPost::Matched { send, .. } => assert_eq!(send, 10),
            RecvPost::Parked => panic!("first recv must match the oldest send"),
        }
        match mb.post_recv(key(7), 1) {
            RecvPost::Matched { send, .. } => assert_eq!(send, 11),
            RecvPost::Parked => panic!("second recv must match the newer send"),
        }
        assert!(mb.is_drained());
    }

    #[test]
    fn recv_then_send_matches_in_fifo_order() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_recv(key(3), 20), RecvPost::Parked));
        assert!(matches!(mb.post_recv(key(3), 21), RecvPost::Parked));
        assert_eq!(mb.posted_recvs(), 2);
        match mb.post_send(key(3), 0) {
            SendPost::Matched { recv, .. } => assert_eq!(recv, 20),
            SendPost::Parked(_) => panic!("send must match the oldest recv"),
        }
        match mb.post_send(key(3), 1) {
            SendPost::Matched { recv, .. } => assert_eq!(recv, 21),
            SendPost::Parked(_) => panic!("send must match the newer recv"),
        }
        assert!(mb.is_drained());
    }

    #[test]
    fn distinct_envelopes_never_cross_match() {
        let mut mb: Mailbox<u32, u32> = Mailbox::new();
        assert!(matches!(mb.post_send(key(1), 1), SendPost::Parked(_)));
        // Different tag: must park, not steal the tag-1 slot.
        assert!(matches!(mb.post_recv(key(2), 2), RecvPost::Parked));
        // Different src: also disjoint.
        let other_src = RtKey {
            ctx: 0,
            src: 5,
            dst: 1,
            tag: 1,
        };
        assert!(matches!(mb.post_recv(other_src, 3), RecvPost::Parked));
        assert_eq!(mb.unmatched_sends(), 1);
        assert_eq!(mb.posted_recvs(), 2);
    }
}
