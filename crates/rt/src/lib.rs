//! # ovcomm-rt
//!
//! A real shared-memory runtime backend for the ovcomm stack: every rank
//! is an OS thread, payloads move through in-process shared memory, and
//! time is the wall clock. It executes the **same** `Comm` API surface and
//! the **same** compiled `CollPlan` collective schedules as the
//! virtual-time simulator (`ovcomm-simmpi`), through the backend traits of
//! `ovcomm-core` — so any kernel written against
//! [`Communicator`](ovcomm_core::Communicator)/[`RankHandle`](ovcomm_core::RankHandle)
//! runs bit-identically on either backend, and wall-clock measurements
//! from this crate validate the simulator's modeled timings.
//!
//! What is shared with the simulator (by construction, not by parallel
//! implementation):
//!
//! * the [`Request`](ovcomm_simmpi::Request) type and wait/test semantics;
//! * collective compilation — `compile_plans` (selector + static lint
//!   wall) and the `execute_plan` interpreter; only the I/O surface
//!   differs;
//! * eager/rendezvous point-to-point protocols and FIFO envelope matching;
//! * the verification event model (`ovcomm-verify`) — the runtime records
//!   the same per-rank event log, so the same analyzer checks both
//!   backends;
//! * metric names and the trace span model, so sim-vs-rt comparisons join
//!   records directly.
//!
//! What necessarily differs: completion times are wall-clock nanoseconds
//! since the run's epoch; deadlock detection is a watchdog (all live
//! threads blocked with no completions for
//! [`RtConfig::deadlock_timeout`]) instead of the simulator's exact
//! quiescence test; and message matching order is genuinely
//! nondeterministic under races, so the analyzer's *order-dependent-match*
//! warning — which flags exactly this — is filtered from runtime reports.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod comm;
pub mod mailbox;
mod progress;
pub mod queue;
mod sampler;
mod shared;
pub mod sync;
pub mod window;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};

use ovcomm_obs::MetricsSnapshot;
use ovcomm_simmpi::{actor_name, CollSelector, SimMetrics};
use ovcomm_simnet::{MachineProfile, NodeMap, ParkCell, SimTime, Trace};
use ovcomm_verify::{DeadlockReport, Finding, Severity, Verifier, VerifyMode, VerifyReport};

pub use comm::{RtComm, RtRankCtx};
pub use window::RtWin;

use crate::comm::RtAgent;
use crate::shared::{RtShared, RtState};

/// Context id of the world communicator (same as the simulator's).
pub(crate) const WORLD_CTX: u32 = 0;

/// How the runtime treats *modeled* compute charges
/// (`RankHandle::advance`/`compute_flops`) and sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeMode {
    /// Modeled compute costs nothing in wall time (sleeps are capped at
    /// 1 ms so poll loops stay live). The default: communication paths run
    /// at full speed and tests finish fast.
    #[default]
    Skip,
    /// Really sleep for every modeled duration — wall timelines then
    /// resemble the simulator's virtual ones, at the cost of real seconds.
    Emulate,
}

/// Which envelope-matching transport the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MailboxBackend {
    /// The lock-free fast path (default): per-rank SPSC rings and an MPSC
    /// injector in front of the sequential matching tables, drained by
    /// whichever poster holds the drain baton. Waits busy-poll with
    /// `yield` before parking.
    #[default]
    LockFree,
    /// The historical transport: one global mutex around the matching
    /// tables, pure-spin-then-park waits. Kept selectable so
    /// microbenchmarks can measure against the pre-fast-path baseline and
    /// semantics suites can run against both backends.
    Locked,
}

/// Configuration of a runtime run — the analogue of the simulator's
/// `SimConfig`.
#[derive(Clone)]
pub struct RtConfig {
    /// Rank→(logical) node placement. Everything is physically one
    /// process; the map scopes PPN logic and inter/intra traffic
    /// accounting so outputs compare against simulator runs.
    pub nodemap: NodeMap,
    /// Machine profile: the runtime reads `eager_limit` (protocol switch),
    /// `coll_round_slack` (under [`ComputeMode::Emulate`]), and compute
    /// rates consulted by kernels.
    pub profile: MachineProfile,
    /// Verification level (default [`VerifyMode::Strict`], like the
    /// simulator — every test doubles as a correctness check).
    pub verify: VerifyMode,
    /// Collective-algorithm selection policy.
    pub coll_select: CollSelector,
    /// Modeled-compute treatment.
    pub compute: ComputeMode,
    /// Record trace spans.
    pub trace: bool,
    /// Write a Perfetto trace to this path after the run.
    pub trace_out: Option<PathBuf>,
    /// How long every live thread must stay blocked, with no request
    /// completing, before the watchdog declares deadlock.
    pub deadlock_timeout: Duration,
    /// Telemetry-sampler period ([`None`] disables the sampler thread).
    /// Defaults to 1 ms — coarse enough to stay out of the ranks' way,
    /// fine enough to populate occupancy histograms on millisecond runs.
    pub sample_interval: Option<Duration>,
    /// Envelope-matching transport (default [`MailboxBackend::LockFree`]).
    pub mailbox: MailboxBackend,
    /// Busy-poll budget of a wait before it falls back to condvar parking.
    /// [`None`] (default) resolves per backend: 20 µs of pure spinning on
    /// [`MailboxBackend::Locked`] (the historical constant), 50 µs of
    /// yield-polling on [`MailboxBackend::LockFree`].
    pub spin_budget: Option<Duration>,
    /// Progress-engine shards (nonblocking-collective jobs route by
    /// `ctx % shards`). `0` (default) resolves per backend: 1 on
    /// [`MailboxBackend::Locked`] (the historical single pool), 8 on
    /// [`MailboxBackend::LockFree`].
    pub progress_shards: usize,
}

impl RtConfig {
    /// `nranks` ranks packed `ppn`-per-logical-node.
    pub fn natural(nranks: usize, ppn: usize, profile: MachineProfile) -> RtConfig {
        RtConfig::with_map(NodeMap::natural(nranks, ppn), profile)
    }

    /// Explicit rank→node map.
    pub fn with_map(nodemap: NodeMap, profile: MachineProfile) -> RtConfig {
        RtConfig {
            nodemap,
            profile,
            verify: VerifyMode::default(),
            coll_select: CollSelector::default(),
            compute: ComputeMode::default(),
            trace: false,
            trace_out: None,
            deadlock_timeout: Duration::from_secs(2),
            sample_interval: Some(Duration::from_millis(1)),
            mailbox: MailboxBackend::default(),
            spin_budget: None,
            progress_shards: 0,
        }
    }

    /// Select the envelope-matching transport.
    pub fn with_mailbox_backend(mut self, backend: MailboxBackend) -> RtConfig {
        self.mailbox = backend;
        self
    }

    /// Set the busy-poll budget of waits before they park.
    pub fn with_spin_budget(mut self, d: Duration) -> RtConfig {
        self.spin_budget = Some(d);
        self
    }

    /// Set the number of progress-engine shards (`0` = per-backend auto).
    pub fn with_progress_shards(mut self, n: usize) -> RtConfig {
        self.progress_shards = n;
        self
    }

    /// Set the verification level.
    pub fn with_verify(mut self, mode: VerifyMode) -> RtConfig {
        self.verify = mode;
        self
    }

    /// Set the collective-algorithm selector.
    pub fn with_coll_select(mut self, sel: CollSelector) -> RtConfig {
        self.coll_select = sel;
        self
    }

    /// Set the modeled-compute treatment.
    pub fn with_compute(mut self, mode: ComputeMode) -> RtConfig {
        self.compute = mode;
        self
    }

    /// Enable span tracing.
    pub fn with_trace(mut self) -> RtConfig {
        self.trace = true;
        self
    }

    /// Enable tracing and write a Perfetto trace to `path` after the run.
    pub fn with_trace_out(mut self, path: impl Into<PathBuf>) -> RtConfig {
        self.trace = true;
        self.trace_out = Some(path.into());
        self
    }

    /// Set the watchdog's deadlock timeout.
    pub fn with_deadlock_timeout(mut self, d: Duration) -> RtConfig {
        self.deadlock_timeout = d;
        self
    }

    /// Set the telemetry-sampler period.
    pub fn with_sample_interval(mut self, d: Duration) -> RtConfig {
        self.sample_interval = Some(d);
        self
    }

    /// Disable the telemetry-sampler thread.
    pub fn without_sampler(mut self) -> RtConfig {
        self.sample_interval = None;
        self
    }
}

/// Why a runtime run failed — mirrors the simulator's `SimError`.
#[derive(Debug)]
pub enum RtError {
    /// Every live thread blocked with no request completing for the
    /// configured timeout (mismatched communication).
    Deadlock {
        /// The structured diagnosis (from the shared verifier).
        report: DeadlockReport,
    },
    /// A rank thread (or progress worker) panicked.
    RankPanic {
        /// World rank of the first panicking thread.
        rank: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// The run completed but `VerifyMode::Strict` analysis found
    /// error-severity communication-correctness violations.
    Verification {
        /// All findings (errors first).
        findings: Vec<Finding>,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Deadlock { report } => write!(f, "{report}"),
            RtError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RtError::Verification { findings } => {
                let errors = findings
                    .iter()
                    .filter(|x| x.severity == Severity::Error)
                    .count();
                write!(f, "verification failed: {errors} error(s)")?;
                for x in findings.iter().take(8) {
                    write!(f, "\n  {x}")?;
                }
                if findings.len() > 8 {
                    write!(f, "\n  ... and {} more finding(s)", findings.len() - 8)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RtError {}

/// Results of a successful runtime run — the wall-clock analogue of the
/// simulator's `SimOutput` (minus network-resource statistics, which only
/// the flow model can produce).
pub struct RtOutput<T> {
    /// Per-rank return values of the rank closure.
    pub results: Vec<T>,
    /// Wall clock of each rank as its closure returned (ns since epoch).
    pub end_times: Vec<SimTime>,
    /// Latest end time — the measured makespan.
    pub makespan: SimTime,
    /// Bytes between ranks on different logical nodes.
    pub inter_node_bytes: u64,
    /// Bytes between ranks on the same logical node.
    pub intra_node_bytes: u64,
    /// Total messages.
    pub messages: u64,
    /// Recorded spans (wall-clock timestamps), if tracing was enabled.
    pub trace: Option<Trace>,
    /// Snapshot of every metric the run recorded — same metric names as
    /// the simulator, so sim-vs-rt reports join per-rank records directly.
    pub metrics: MetricsSnapshot,
    /// Trace spans that arrived with `end < start` and were clamped.
    pub clamped_spans: usize,
    /// Communication-correctness findings and leak counters.
    /// *Order-dependent-match* warnings are filtered out: under real
    /// nondeterministic matching they are expected, not a defect.
    pub verify: VerifyReport,
}

/// True for findings the runtime expects by construction: receive-matching
/// order genuinely races here, so the analyzer's determinism warning about
/// it carries no signal.
fn expected_on_rt(f: &Finding) -> bool {
    f.code() == "order-dependent-match"
}

/// Run `f` on every rank as a real OS thread; returns when all ranks
/// finish (or the watchdog declares deadlock).
///
/// ```
/// use ovcomm_rt::{run, RtConfig, RtRankCtx};
/// use ovcomm_simmpi::Payload;
/// use ovcomm_simnet::MachineProfile;
///
/// // Two ranks: rank 0 sends a value, rank 1 doubles it — the same
/// // program text runs under `ovcomm_simmpi::run` with a `SimConfig`.
/// let out = run(
///     RtConfig::natural(2, 1, MachineProfile::test_profile()),
///     |rc: RtRankCtx| {
///         let world = rc.world();
///         if rc.rank() == 0 {
///             world.send(1, 0, Payload::from_f64s(&[21.0]));
///             0.0
///         } else {
///             2.0 * world.recv(0, 0).to_f64s()[0]
///         }
///     },
/// )
/// .unwrap();
/// assert_eq!(out.results[1], 42.0);
/// ```
// The `expect`s here are launch-time (thread spawn) and join-time (a rank
// that did not panic must have produced a result) invariants.
#[allow(clippy::expect_used)]
pub fn run<T, F>(cfg: RtConfig, f: F) -> Result<RtOutput<T>, RtError>
where
    T: Send + 'static,
    F: Fn(RtRankCtx) -> T + Send + Sync + 'static,
{
    let nranks = cfg.nodemap.nranks();
    let metrics = SimMetrics::new(nranks);
    let prof = crate::shared::RtProf::new(&metrics, nranks);
    // Per-backend defaults: the locked baseline keeps its historical 20 µs
    // pure spin and single pool; the lock-free path yield-polls for 50 µs
    // and shards the progress engine.
    let spin_budget = cfg.spin_budget.unwrap_or(match cfg.mailbox {
        MailboxBackend::Locked => Duration::from_micros(20),
        MailboxBackend::LockFree => Duration::from_micros(50),
    });
    let nshards = match (cfg.progress_shards, cfg.mailbox) {
        (0, MailboxBackend::Locked) => 1,
        (0, MailboxBackend::LockFree) => 8,
        (n, _) => n,
    };
    let shared = Arc::new(RtShared {
        epoch: Instant::now(),
        profile: cfg.profile.clone(),
        nodemap: cfg.nodemap.clone(),
        state: Mutex::new(RtState {
            next_ctx: WORLD_CTX + 1,
            rank_end_times: vec![SimTime::ZERO; nranks],
            ..RtState::default()
        }),
        transport: RtShared::make_transport(cfg.mailbox, nranks),
        progress: crate::progress::ProgressShards::new(nshards),
        spin_budget_ns: spin_budget.as_nanos() as u64,
        poll_yield: cfg.mailbox == MailboxBackend::LockFree,
        inter_bytes: AtomicU64::new(0),
        intra_bytes: AtomicU64::new(0),
        messages: AtomicU64::new(0),
        metrics,
        prof,
        compute: cfg.compute,
        tracing: cfg.trace,
        trace: Mutex::new(Trace::new()),
        verify: match cfg.verify {
            VerifyMode::Off => None,
            VerifyMode::Warn | VerifyMode::Strict => Some(Arc::new(Verifier::new())),
        },
        verify_mode: cfg.verify,
        coll_select: cfg.coll_select.clone(),
        plan_cache: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        op_panics: Mutex::new(Vec::new()),
        live: AtomicUsize::new(nranks),
        blocked: AtomicUsize::new(0),
        progress_epoch: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
        blocked_agents: Mutex::new(HashMap::new()),
        deadlock_blocked: Mutex::new(Vec::new()),
    });

    // The watchdog: declare deadlock only when every live thread has been
    // blocked, with the completion counter frozen, continuously for the
    // configured timeout.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let shared = shared.clone();
        let done = done.clone();
        let timeout = cfg.deadlock_timeout;
        std::thread::Builder::new()
            .name("rt-watchdog".into())
            .spawn(move || {
                let mut stuck_since: Option<(u64, Instant)> = None;
                while !done.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                    let live = shared.live.load(Ordering::SeqCst);
                    let blocked = shared.blocked.load(Ordering::SeqCst);
                    let epoch = shared.progress_epoch.load(Ordering::SeqCst);
                    let all_blocked = live > 0 && blocked >= live;
                    match (&stuck_since, all_blocked) {
                        (Some((e, since)), true) if *e == epoch => {
                            if since.elapsed() >= timeout {
                                // Snapshot who is blocked on what before
                                // releasing anyone, then abort: parked
                                // threads panic on their next park slice.
                                let snapshot: Vec<(u32, u32)> = shared
                                    .blocked_agents
                                    .lock()
                                    .iter()
                                    .map(|(&a, &r)| (a, r))
                                    .collect();
                                *shared.deadlock_blocked.lock() = snapshot;
                                shared.aborted.store(true, Ordering::SeqCst);
                                return;
                            }
                        }
                        (_, true) => stuck_since = Some((epoch, Instant::now())),
                        (_, false) => stuck_since = None,
                    }
                }
            })
            .expect("failed to spawn watchdog thread")
    };

    let telemetry = cfg
        .sample_interval
        .and_then(|d| sampler::start(shared.clone(), d));

    let f = Arc::new(f);
    let world_ranks: Arc<Vec<u32>> = Arc::new((0..nranks as u32).collect());
    let mut handles = Vec::with_capacity(nranks);
    for r in 0..nranks {
        let shared2 = shared.clone();
        let f2 = f.clone();
        let world_ranks2 = world_ranks.clone();
        let h = std::thread::Builder::new()
            .name(format!("rt-rank-{r}"))
            .stack_size(4 << 20)
            .spawn(move || {
                struct Finish(Arc<RtShared>);
                impl Drop for Finish {
                    fn drop(&mut self) {
                        self.0.live.fetch_sub(1, Ordering::SeqCst);
                        // A rank exiting (or unwinding) is progress as far
                        // as the watchdog is concerned.
                        self.0.progress_epoch.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let _guard = Finish(shared2.clone());
                let agent = RtAgent {
                    id: r as u32,
                    rank: r as u32,
                    cell: Arc::new(ParkCell::new()),
                    op_counter: Arc::new(AtomicU64::new(0)),
                    shared: shared2.clone(),
                };
                let world = RtComm::new_world(agent.clone(), world_ranks2, r);
                let rc = RtRankCtx::new(agent, world);
                let out = f2(rc);
                shared2.state.lock().rank_end_times[r] = shared2.now();
                out
            })
            .expect("failed to spawn rank thread");
        handles.push(h);
    }

    let mut results = Vec::with_capacity(nranks);
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (r, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(v) => results.push(Some(v)),
            Err(p) => {
                results.push(None);
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                panics.push((r, msg));
            }
        }
    }
    done.store(true, Ordering::SeqCst);
    let _ = watchdog.join();
    if let Some(s) = telemetry {
        s.stop();
    }
    shared.progress.shutdown();

    // A real bug often *causes* the deadlock that aborts everyone else;
    // report the root cause, not the induced deadlock panics.
    let is_deadlock_msg = |m: &str| m.contains("rt deadlock");
    let mut op_panics = std::mem::take(&mut *shared.op_panics.lock());
    op_panics.retain(|(_, m)| !is_deadlock_msg(m));
    if let Some((rank, message)) = panics
        .iter()
        .find(|(_, m)| !is_deadlock_msg(m))
        .cloned()
        .or_else(|| op_panics.first().map(|(r, m)| (*r as usize, m.clone())))
    {
        return Err(RtError::RankPanic { rank, message });
    }
    if shared.aborted.load(Ordering::SeqCst) {
        let blocked = shared.deadlock_blocked.lock().clone();
        let report = match shared.verify.as_ref() {
            Some(v) => v.deadlock_report(&blocked),
            None => DeadlockReport::unknown(&blocked),
        };
        return Err(RtError::Deadlock { report });
    }
    if let Some((rank, message)) = panics.into_iter().next() {
        return Err(RtError::RankPanic { rank, message });
    }

    // Analyze the communication log with the same analyzer as the
    // simulator, minus the findings real nondeterminism legitimately
    // produces.
    let verify_report = match shared.verify.as_ref() {
        Some(v) => {
            let mut findings = v.analyze();
            findings.retain(|x| !expected_on_rt(x));
            match cfg.verify {
                VerifyMode::Warn => {
                    for x in &findings {
                        eprintln!("ovcomm-verify: {x}");
                    }
                }
                VerifyMode::Strict => {
                    if findings.iter().any(|x| x.severity == Severity::Error) {
                        return Err(RtError::Verification { findings });
                    }
                }
                VerifyMode::Off => {}
            }
            let (dropped_incomplete, dropped_untaken) = v.drop_counters();
            VerifyReport {
                findings,
                dropped_incomplete,
                dropped_untaken,
            }
        }
        None => VerifyReport::default(),
    };

    let end_times = shared.state.lock().rank_end_times.clone();
    let (inter, intra, messages) = (
        shared.inter_bytes.load(Ordering::Relaxed),
        shared.intra_bytes.load(Ordering::Relaxed),
        shared.messages.load(Ordering::Relaxed),
    );
    let makespan = end_times.iter().copied().max().unwrap_or(SimTime::ZERO);
    shared
        .metrics
        .pool_spawned
        .set(shared.progress.spawned() as u64);
    let trace = if cfg.trace {
        Some(std::mem::replace(&mut *shared.trace.lock(), Trace::new()))
    } else {
        None
    };
    let clamped_spans = trace.as_ref().map_or(0, |t| t.clamped());
    shared.metrics.spans_clamped(clamped_spans as u64);
    if let Some(path) = &cfg.trace_out {
        let spans: &[ovcomm_simnet::TraceSpan] = trace.as_ref().map_or(&[], |t| t.spans());
        if let Err(e) = ovcomm_obs::write_trace(path, spans, actor_name) {
            eprintln!("warning: failed to write trace to {}: {e}", path.display());
        }
    }
    Ok(RtOutput {
        results: results
            .into_iter()
            .map(|o| o.expect("non-panicked rank must produce a result"))
            .collect(),
        end_times,
        makespan,
        inter_node_bytes: inter,
        intra_node_bytes: intra,
        messages,
        trace,
        metrics: shared.metrics.snapshot(),
        clamped_spans,
        verify: verify_report,
    })
}
