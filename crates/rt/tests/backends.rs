//! Envelope-matching semantics re-run against **both** mailbox
//! transports. `semantics.rs` exercises whatever `RtConfig` defaults to
//! (the lock-free router); this suite pins each [`MailboxBackend`]
//! explicitly so the locked baseline keeps its coverage and a default
//! flip can never silently drop a transport from CI. The properties are
//! the protocol-defining ones: eager-vs-rendezvous completion ordering,
//! per-envelope FIFO non-overtaking, and envelope (context) isolation.
//!
//! The file ends with a proptest that hammers the [`SpscRing`] itself
//! with a concurrent producer/consumer pair where a random subset of
//! full-ring pushes is *cancelled* (the value dropped, never retried) —
//! the consumer must see exactly the successfully pushed subsequence, in
//! order.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use ovcomm_rt::queue::SpscRing;
use ovcomm_rt::{run, MailboxBackend, RtConfig, RtRankCtx};
use ovcomm_simmpi::Payload;
use ovcomm_simnet::MachineProfile;

const BACKENDS: [MailboxBackend; 2] = [MailboxBackend::LockFree, MailboxBackend::Locked];

fn cfg(backend: MailboxBackend, nranks: usize) -> RtConfig {
    RtConfig::natural(nranks, 1, MachineProfile::test_profile()).with_mailbox_backend(backend)
}

#[test]
fn eager_completes_before_the_receiver_on_both_backends() {
    for backend in BACKENDS {
        let out = run(cfg(backend, 2), |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                let t0 = Instant::now();
                let req = w.isend(1, 7, Payload::from_vec(vec![9u8; 1024]));
                w.wait(&req);
                t0.elapsed()
            } else {
                std::thread::sleep(Duration::from_millis(300));
                assert_eq!(w.recv(0, 7), Payload::from_vec(vec![9u8; 1024]));
                Duration::ZERO
            }
        })
        .unwrap();
        assert!(
            out.results[0] < Duration::from_millis(150),
            "{backend:?}: eager send waited for the receiver ({:?})",
            out.results[0]
        );
    }
}

#[test]
fn rendezvous_waits_for_the_receiver_on_both_backends() {
    // 256 KiB is above the test profile's 64 KiB eager limit.
    let n = 256 * 1024;
    for backend in BACKENDS {
        let out = run(cfg(backend, 2), move |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                let t0 = Instant::now();
                let req = w.isend(1, 7, Payload::from_vec(vec![1u8; n]));
                w.wait(&req);
                t0.elapsed()
            } else {
                std::thread::sleep(Duration::from_millis(300));
                assert_eq!(w.recv(0, 7).len(), n);
                Duration::ZERO
            }
        })
        .unwrap();
        assert!(
            out.results[0] >= Duration::from_millis(100),
            "{backend:?}: rendezvous send completed before its receive ({:?})",
            out.results[0]
        );
    }
}

#[test]
fn fifo_never_overtakes_on_both_backends() {
    for backend in BACKENDS {
        let out = run(cfg(backend, 2), |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                for v in 0..8 {
                    w.send(1, 1, Payload::from_f64s(&[v as f64]));
                }
                vec![]
            } else {
                (0..8).map(|_| w.recv(0, 1).to_f64s()[0]).collect()
            }
        })
        .unwrap();
        let expect: Vec<f64> = (0..8).map(|v| v as f64).collect();
        assert_eq!(
            out.results[1], expect,
            "{backend:?}: non-overtaking violated"
        );
    }
}

#[test]
fn envelopes_stay_isolated_on_both_backends() {
    // Same (src, dst, tag) on world and a dup'd communicator are distinct
    // envelopes; same communicator with distinct tags likewise.
    for backend in BACKENDS {
        let out = run(cfg(backend, 2), |rc: RtRankCtx| {
            let w = rc.world();
            let d = w.dup();
            if rc.rank() == 0 {
                let r1 = w.isend(1, 3, Payload::from_f64s(&[10.0]));
                let r2 = d.isend(1, 3, Payload::from_f64s(&[20.0]));
                let r3 = w.isend(1, 4, Payload::from_f64s(&[30.0]));
                w.wait(&r1);
                d.wait(&r2);
                w.wait(&r3);
                (0.0, 0.0, 0.0)
            } else {
                // Receive in reverse posting order: any cross-match would
                // deliver the wrong payload to at least one of these.
                let on_tag4 = w.recv(0, 4).to_f64s()[0];
                let on_dup = d.recv(0, 3).to_f64s()[0];
                let on_world = w.recv(0, 3).to_f64s()[0];
                (on_world, on_dup, on_tag4)
            }
        })
        .unwrap();
        assert_eq!(
            out.results[1],
            (10.0, 20.0, 30.0),
            "{backend:?}: envelope isolation violated"
        );
    }
}

#[test]
fn explicit_wait_and_shard_knobs_hold_on_both_backends() {
    // A zero spin budget forces every wait straight to the parker; an odd
    // shard count exercises non-default `ctx % shards` routing. The
    // semantics must be knob-invariant.
    for backend in BACKENDS {
        let p = 4;
        let out = run(
            cfg(backend, p)
                .with_spin_budget(Duration::ZERO)
                .with_progress_shards(3),
            move |rc: RtRankCtx| {
                let w = rc.world();
                let comms = w.dup_n(4);
                let reqs: Vec<_> = comms
                    .iter()
                    .map(|c| c.iallreduce(Payload::from_f64s(&[rc.rank() as f64])))
                    .collect();
                reqs.iter().map(|r| w.wait(r).to_f64s()[0]).sum::<f64>()
            },
        )
        .unwrap();
        let per_comm: f64 = (0..p).map(|r| r as f64).sum();
        for &v in &out.results {
            assert_eq!(v, 4.0 * per_comm, "{backend:?}: sharded iallreduce wrong");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent send/recv/cancel hammer on the SPSC ring: a producer
    /// thread pushes `n` sequenced values through a small ring, dropping
    /// (cancelling) a pseudo-random subset of the pushes that hit a full
    /// ring; the consumer must observe exactly the non-cancelled
    /// subsequence, in order, with the returned-on-full value intact.
    #[test]
    fn spsc_ring_hammer_send_recv_cancel(
        cap in 1usize..9,
        n in 1u64..200,
        cancel_seed in 0u64..u64::MAX,
    ) {
        let ring = Arc::new(SpscRing::new(cap));
        let pring = ring.clone();
        let producer = std::thread::spawn(move || {
            let mut pushed = Vec::new();
            for i in 0..n {
                let cancel_on_full = (cancel_seed >> (i % 64)) & 1 == 1;
                // Safety: this thread is the ring's only producer.
                match unsafe { pring.try_push(i) } {
                    Ok(()) => pushed.push(i),
                    Err(back) => {
                        // Full ring hands the value back intact…
                        assert_eq!(back, i, "try_push corrupted the value");
                        if cancel_on_full {
                            continue; // …and a cancel just drops it.
                        }
                        let mut v = back;
                        loop {
                            std::thread::yield_now();
                            // Safety: still the only producer.
                            match unsafe { pring.try_push(v) } {
                                Ok(()) => break,
                                Err(b) => v = b,
                            }
                        }
                        pushed.push(i);
                    }
                }
            }
            pushed
        });
        let mut got = Vec::new();
        loop {
            // Safety: this thread is the ring's only consumer.
            match unsafe { ring.pop() } {
                Some(v) => got.push(v),
                None if producer.is_finished() => {
                    // Safety: still the only consumer.
                    while let Some(v) = unsafe { ring.pop() } {
                        got.push(v);
                    }
                    break;
                }
                None => std::thread::yield_now(),
            }
        }
        let pushed = producer.join().unwrap();
        prop_assert_eq!(got, pushed);
        prop_assert!(ring.is_empty());
    }
}
