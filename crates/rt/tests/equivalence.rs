//! Cross-backend collective equivalence: every `CollPlan` algorithm,
//! forced through the selector, executed by the **rt** interpreter on real
//! OS threads, must deliver exactly the reference data — the same property
//! `proptest_plans.rs` establishes for the simulator's interpreter. A
//! final set of tests runs the same forced plan on both backends and
//! requires bit-identical floating-point reductions: identical plan ⇒
//! identical reduction tree ⇒ identical rounding.
//!
//! Case counts are lower than the sim-side suite because every rt case
//! spawns `p` OS threads per algorithm.

use proptest::prelude::*;

use ovcomm_rt::{run, RtConfig, RtRankCtx};
use ovcomm_simmpi::plan::{chunk_bounds, CollAlgo};
use ovcomm_simmpi::{CollKind, CollSelector, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn cfg(p: usize, algo: CollAlgo) -> RtConfig {
    RtConfig::natural(p, 2, MachineProfile::test_profile())
        .with_coll_select(CollSelector::default().force(algo))
}

fn test_bytes(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bcast_all_algorithms_exact_on_rt(
        p in 1usize..7,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 7, 600, 4097]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Bcast) {
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let payload = (rc.rank() == root).then(|| Payload::from_vec(data.clone()));
                w.bcast(root, payload, n) == expect
            }).unwrap();
            prop_assert!(out.results.iter().all(|&ok| ok), "{algo} p={p} n={n} root={root}");
        }
    }

    #[test]
    fn reduce_all_algorithms_sum_exactly_on_rt(
        p in 1usize..7,
        root_pick in 0usize..64,
        n_elems in prop::sample::select(vec![1usize, 65, 513]),
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Reduce) {
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let mine: Vec<f64> = (0..n_elems)
                    .map(|i| (rc.rank() + 1) as f64 * 0.5 + i as f64)
                    .collect();
                w.reduce(root, Payload::from_f64s(&mine)).map(|r| r.to_f64s())
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                if r == root {
                    let res = res.as_ref().unwrap();
                    prop_assert_eq!(res.len(), n_elems);
                    for (i, &x) in res.iter().enumerate() {
                        let want: f64 = (1..=p).map(|k| k as f64 * 0.5 + i as f64).sum();
                        prop_assert!(
                            (x - want).abs() < 1e-9,
                            "{} p={} root={} elem {}: {} vs {}", algo, p, root, i, x, want
                        );
                    }
                } else {
                    prop_assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn allreduce_all_algorithms_sum_exactly_on_rt(
        p in 1usize..7,
        n_elems in prop::sample::select(vec![1usize, 63, 800]),
    ) {
        for algo in CollAlgo::for_kind(CollKind::Allreduce) {
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let mine: Vec<f64> = (0..n_elems)
                    .map(|i| rc.rank() as f64 - i as f64 * 0.25)
                    .collect();
                w.allreduce(Payload::from_f64s(&mine)).to_f64s()
            }).unwrap();
            for res in &out.results {
                prop_assert_eq!(res.len(), n_elems);
                for (i, &x) in res.iter().enumerate() {
                    let want: f64 = (0..p).map(|k| k as f64 - i as f64 * 0.25).sum();
                    prop_assert!(
                        (x - want).abs() < 1e-9,
                        "{} p={} elem {}: {} vs {}", algo, p, i, x, want
                    );
                }
            }
        }
    }

    #[test]
    fn gather_all_algorithms_collect_in_rank_order_on_rt(
        p in 1usize..7,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 9, 1000]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Gather) {
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let b = chunk_bounds(n, p);
                // Chunks are owned in root-relative virtual-rank order.
                let v = (rc.rank() + p - root) % p;
                let mine = Payload::from_vec(data[b[v]..b[v + 1]].to_vec());
                w.gather(root, mine, n)
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                if r == root {
                    prop_assert_eq!(res.as_ref(), Some(&expect), "{} p={} n={} root={}", algo, p, n, root);
                } else {
                    prop_assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_rank_chunks_on_rt(
        p in 1usize..7,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 9, 1000]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Scatter) {
            let data = test_bytes(n, seed);
            let reference = data.clone();
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let payload = (rc.rank() == root).then(|| Payload::from_vec(data.clone()));
                w.scatter(root, payload, n)
            }).unwrap();
            let b = chunk_bounds(n, p);
            for (r, res) in out.results.iter().enumerate() {
                let v = (r + p - root) % p;
                let want = Payload::from_vec(reference[b[v]..b[v + 1]].to_vec());
                prop_assert_eq!(res, &want, "{} p={} n={} root={} rank {}", algo, p, n, root, r);
            }
        }
    }

    #[test]
    fn allgather_delivers_full_data_everywhere_on_rt(
        p in 1usize..7,
        n in prop::sample::select(vec![1usize, 9, 1000]),
        seed in 0u64..1000,
    ) {
        for algo in CollAlgo::for_kind(CollKind::Allgather) {
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RtRankCtx| {
                let w = rc.world();
                let b = chunk_bounds(n, p);
                let me = rc.rank();
                let mine = Payload::from_vec(data[b[me]..b[me + 1]].to_vec());
                w.allgather(mine, n)
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                prop_assert_eq!(res, &expect, "{} p={} n={} rank {}", algo, p, n, r);
            }
        }
    }

    #[test]
    fn barrier_completes_verifier_clean_on_rt(p in 1usize..7) {
        for algo in CollAlgo::for_kind(CollKind::Barrier) {
            let out = run(cfg(p, algo), |rc: RtRankCtx| {
                rc.world().barrier();
            }).unwrap();
            prop_assert_eq!(out.verify.errors(), 0);
        }
    }

    // -----------------------------------------------------------------
    // Sim vs rt, same forced plan: reductions must be BIT-identical.
    // The two interpreters walk the same CollPlan steps, so the pairwise
    // f64 additions happen in the same tree order; any divergence is an
    // interpreter bug, not floating-point noise.
    // -----------------------------------------------------------------

    #[test]
    fn reduction_bits_identical_across_backends(
        p in 2usize..7,
        n_elems in prop::sample::select(vec![33usize, 257]),
        seed in 0u64..1000,
    ) {
        for algo in CollAlgo::for_kind(CollKind::Allreduce) {
            let mk = move |rank: usize| -> Vec<f64> {
                (0..n_elems)
                    // Deliberately ill-conditioned values so any change in
                    // summation order flips low-order bits.
                    .map(|i| {
                        let x = ((i as u64 + seed).wrapping_mul(2654435761) % 104729) as f64;
                        (x - 52364.0) * 1e-7 + rank as f64 * 1e3 + 1.0 / (1.0 + i as f64)
                    })
                    .collect()
            };
            let sim = ovcomm_simmpi::run(
                SimConfig::natural(p, 2, MachineProfile::test_profile())
                    .with_coll_select(CollSelector::default().force(algo)),
                move |rc: RankCtx| {
                    rc.world().allreduce(Payload::from_f64s(&mk(rc.rank()))).to_f64s()
                },
            ).unwrap();
            let rt = run(cfg(p, algo), move |rc: RtRankCtx| {
                rc.world().allreduce(Payload::from_f64s(&mk(rc.rank()))).to_f64s()
            }).unwrap();
            for (r, (s, t)) in sim.results.iter().zip(&rt.results).enumerate() {
                for (i, (a, b)) in s.iter().zip(t).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "{} p={} rank {} elem {}: sim {} vs rt {}", algo, p, r, i, a, b
                    );
                }
            }
        }
    }
}
