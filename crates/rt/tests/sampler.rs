//! Live-telemetry sampler tests: the background sampler must see runtime
//! load under contention, and its cost must stay negligible relative to
//! the run it observes.

use std::time::Duration;

use ovcomm_rt::{run, RtConfig, RtRankCtx};
use ovcomm_simmpi::Payload;
use ovcomm_simnet::MachineProfile;

/// A held-up receive: rank 0 sleeps before sending, so rank 1 is parked
/// in its wait for ~20ms while a fast sampler (500µs) takes dozens of
/// snapshots. The queue-depth histograms must be non-empty and the
/// blocked-ranks histogram must have caught the parked rank.
#[test]
fn sampler_records_load_under_contention() {
    let out = run(
        RtConfig::natural(2, 1, MachineProfile::test_profile())
            .with_sample_interval(Duration::from_micros(500)),
        |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                w.send(1, 0, Payload::Phantom(64));
            } else {
                let _ = w.recv(0, 0);
            }
        },
    )
    .expect("sampled run");
    let samples = out.metrics.counters.get("rt.sampler.samples").copied();
    assert!(
        samples.is_some_and(|n| n >= 5),
        "sampler took too few snapshots over a 20ms stall: {samples:?}"
    );
    for key in [
        "rt.sampler.pool_queue_depth",
        "rt.sampler.mailbox_slots",
        "rt.sampler.posted_recvs",
        "rt.sampler.blocked_ranks",
    ] {
        let h = out
            .metrics
            .histograms
            .get(key)
            .unwrap_or_else(|| panic!("{key} missing from snapshot"));
        assert!(h.count > 0, "{key} histogram is empty");
    }
    let blocked = &out.metrics.histograms["rt.sampler.blocked_ranks"];
    assert!(
        blocked.max >= 1,
        "a 20ms-parked rank never showed up in blocked_ranks (max {})",
        blocked.max
    );
}

/// Per-shard occupancy gauges: the sampler registers one
/// `rt.sampler.shard{N}.queue_depth` histogram per configured progress
/// shard, next to the aggregate `pool_queue_depth`.
#[test]
fn sampler_records_one_queue_depth_series_per_shard() {
    let shards = 3;
    let out = run(
        RtConfig::natural(2, 1, MachineProfile::test_profile())
            .with_progress_shards(shards)
            .with_sample_interval(Duration::from_micros(500)),
        |rc: RtRankCtx| {
            let w = rc.world();
            let comms = w.dup_n(4);
            let reqs: Vec<_> = comms
                .iter()
                .map(|c| c.iallreduce(Payload::from_f64s(&[rc.rank() as f64])))
                .collect();
            std::thread::sleep(Duration::from_millis(5));
            for r in &reqs {
                let _ = w.wait(r);
            }
        },
    )
    .expect("sharded sampled run");
    for i in 0..shards {
        let key = format!("rt.sampler.shard{i}.queue_depth");
        let h = out
            .metrics
            .histograms
            .get(&key)
            .unwrap_or_else(|| panic!("{key} missing from snapshot"));
        assert!(h.count > 0, "{key} histogram is empty");
    }
    assert!(
        !out.metrics
            .histograms
            .contains_key(&format!("rt.sampler.shard{shards}.queue_depth")),
        "more shard gauges than configured shards"
    );
}

/// No sampler configured: the run records no sampler metrics at all.
#[test]
fn without_sampler_records_nothing() {
    let out = run(
        RtConfig::natural(2, 1, MachineProfile::test_profile()).without_sampler(),
        |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                w.send(1, 0, Payload::Phantom(64));
            } else {
                let _ = w.recv(0, 0);
            }
        },
    )
    .expect("unsampled run");
    assert!(!out.metrics.counters.contains_key("rt.sampler.samples"));
    assert!(out
        .metrics
        .histograms
        .keys()
        .all(|k| !k.starts_with("rt.sampler.")));
}

fn pingpong_seconds(cfg: RtConfig) -> f64 {
    let out = run(cfg, |rc: RtRankCtx| {
        let w = rc.world();
        for _ in 0..200 {
            if rc.rank() == 0 {
                w.send(1, 0, Payload::Phantom(1024));
                let _ = w.recv(1, 1);
            } else {
                let _ = w.recv(0, 0);
                w.send(0, 1, Payload::Phantom(1024));
            }
        }
    })
    .expect("pingpong run");
    out.makespan.as_secs_f64()
}

/// Overhead bound: sampling at 250µs must not meaningfully slow a
/// message-heavy run. The bound is deliberately generous (3× + 50ms) —
/// it catches a sampler that serializes the hot path, not scheduler
/// noise on a shared machine.
#[test]
fn rt_sampler_overhead() {
    let profile = MachineProfile::test_profile();
    let off = pingpong_seconds(RtConfig::natural(2, 1, profile.clone()).without_sampler());
    let on = pingpong_seconds(
        RtConfig::natural(2, 1, profile).with_sample_interval(Duration::from_micros(250)),
    );
    assert!(
        on <= 3.0 * off + 0.050,
        "sampler overhead out of bounds: {on}s sampled vs {off}s unsampled"
    );
}
