//! Every distributed kernel, executed on the real shared-memory backend and
//! compared against the simulator **bit for bit**.
//!
//! Each workload is a single generic function over [`RankHandle`], so the
//! exact same code runs under `ovcomm_simmpi::run` (virtual time, one
//! engine thread) and `ovcomm_rt::run` (wall-clock time, one OS thread per
//! rank). Both backends execute the same CollPlan IR, so reductions apply
//! in the same order and the floating-point results must be identical —
//! not merely close.

use ovcomm_core::{NDupComms, RankHandle, StagePlan};
use ovcomm_densemat::{BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_kernels::{
    block_cg, matvec_blocking, matvec_pipelined, md_init, md_run, symm_square_cube_25d,
    symm_square_cube_baseline, symm_square_cube_cosma, symm_square_cube_optimized,
    symm_square_cube_original, symm_square_cube_summa, BlockCgConfig, CgComms, MatvecInput,
    MdConfig, Mesh25D, Mesh2D, Mesh3D, SummaBundles, SymmInput, VecBuf,
};
use ovcomm_purify::{purify_rank, scf_staged, KernelChoice, PurifyConfig, ScfConfig};
use ovcomm_rt::{RtConfig, RtRankCtx};
use ovcomm_simmpi::{RankCtx, SimConfig};
use ovcomm_simnet::{MachineProfile, SimDur};

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j) as f64;
        1.0 / (1.0 + d) + if i == j { 0.5 } else { 0.0 } + ((i + j) % 3) as f64 * 0.1
    })
}

/// Run the same generic workload on both backends and return
/// (sim results, rt results) in rank order.
fn run_both<T, F>(nranks: usize, ppn: usize, f: F) -> (Vec<T>, Vec<T>)
where
    T: Send + 'static,
    F: for<'a> Fn(&'a dyn WorkloadDispatch) -> T + Send + Sync + Clone + 'static,
{
    let prof = MachineProfile::test_profile;
    let fs = f.clone();
    let sim = ovcomm_simmpi::run(
        SimConfig::natural(nranks, ppn, prof()),
        move |rc: RankCtx| fs(&rc as &dyn WorkloadDispatch),
    )
    .unwrap_or_else(|e| panic!("sim backend failed: {e}"));
    let rt = ovcomm_rt::run(
        RtConfig::natural(nranks, ppn, prof()),
        move |rc: RtRankCtx| f(&rc as &dyn WorkloadDispatch),
    )
    .unwrap_or_else(|e| panic!("rt backend failed: {e}"));
    (sim.results, rt.results)
}

/// Object-safe shim so one closure can accept either concrete rank context.
/// Kernels are generic over `RankHandle` (not object safe), so the closure
/// downcasts to the concrete context and calls a generic worker.
trait WorkloadDispatch {
    fn as_sim(&self) -> Option<&RankCtx>;
    fn as_rt(&self) -> Option<&RtRankCtx>;
}
impl WorkloadDispatch for RankCtx {
    fn as_sim(&self) -> Option<&RankCtx> {
        Some(self)
    }
    fn as_rt(&self) -> Option<&RtRankCtx> {
        None
    }
}
impl WorkloadDispatch for RtRankCtx {
    fn as_sim(&self) -> Option<&RankCtx> {
        None
    }
    fn as_rt(&self) -> Option<&RtRankCtx> {
        Some(self)
    }
}

/// Expand a generic per-rank worker into a `WorkloadDispatch` closure.
macro_rules! dispatch {
    ($worker:expr) => {
        move |rc: &dyn WorkloadDispatch| {
            if let Some(rc) = rc.as_sim() {
                $worker(rc)
            } else if let Some(rc) = rc.as_rt() {
                $worker(rc)
            } else {
                unreachable!("unknown backend")
            }
        }
    };
}

// ---------------------------------------------------------------------
// Matrix–vector.
// ---------------------------------------------------------------------

fn matvec_worker<R: RankHandle>(rc: &R, n: usize, p: usize, n_dup: Option<usize>) -> Vec<f64> {
    let mesh = Mesh2D::new(rc, p);
    let part = Partition1D::new(n, p);
    let grid = BlockGrid::new(n, p);
    let a = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
    let x_full: Vec<f64> = (0..n).map(|t| (t as f64 * 0.3).sin()).collect();
    let (s, l) = part.range(mesh.j);
    let input = MatvecInput {
        n,
        a,
        x: VecBuf::Real(x_full[s..s + l].to_vec()),
    };
    let y = match n_dup {
        None => matvec_blocking(rc, &mesh, &input),
        Some(d) => {
            let row_ndup = NDupComms::new(&mesh.row, d);
            let col_ndup = NDupComms::new(&mesh.col, d);
            matvec_pipelined(rc, &mesh, &row_ndup, &col_ndup, &input)
        }
    };
    match y {
        VecBuf::Real(v) => v,
        VecBuf::Phantom(_) => unreachable!(),
    }
}

#[test]
fn matvec_blocking_identical_on_both_backends() {
    let (sim, rt) = run_both(4, 2, dispatch!(|rc| matvec_worker(rc, 17, 2, None)));
    assert_eq!(sim, rt, "blocking matvec must be bit-identical");
}

#[test]
fn matvec_pipelined_identical_on_both_backends() {
    let (sim, rt) = run_both(4, 2, dispatch!(|rc| matvec_worker(rc, 17, 2, Some(2))));
    assert_eq!(sim, rt, "pipelined matvec must be bit-identical");
}

// ---------------------------------------------------------------------
// 3-D SymmSquareCube, all three algorithm variants.
// ---------------------------------------------------------------------

fn symm3d_worker<R: RankHandle>(
    rc: &R,
    n: usize,
    p: usize,
    variant: usize,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let mesh = Mesh3D::new(rc, p);
    let grid = BlockGrid::new(n, p);
    let d_block =
        (mesh.k == 0).then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
    let input = SymmInput { n, d_block };
    let result = match variant {
        0 => symm_square_cube_original(rc, &mesh, &input),
        1 => symm_square_cube_baseline(rc, &mesh, &input),
        d => {
            let bundles = mesh.dup_bundles(d);
            symm_square_cube_optimized(rc, &mesh, &bundles, &input)
        }
    };
    result.d2.map(|d2| {
        (
            d2.unwrap_real().clone().into_vec(),
            result.d3.unwrap().unwrap_real().clone().into_vec(),
        )
    })
}

#[test]
fn symm3d_all_variants_identical_on_both_backends() {
    for variant in [0usize, 1, 2] {
        let (sim, rt) = run_both(8, 2, dispatch!(move |rc| symm3d_worker(rc, 18, 2, variant)));
        assert_eq!(sim, rt, "symm3d variant {variant} must be bit-identical");
        assert!(sim.iter().filter(|r| r.is_some()).count() == 4);
    }
}

// ---------------------------------------------------------------------
// SUMMA.
// ---------------------------------------------------------------------

fn summa_worker<R: RankHandle>(rc: &R, n: usize, p: usize, n_dup: usize) -> (Vec<f64>, Vec<f64>) {
    let mesh = Mesh2D::new(rc, p);
    let grid = BlockGrid::new(n, p);
    let bundles = SummaBundles::new(&mesh, n_dup);
    let d_block = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
    let input = SymmInput {
        n,
        d_block: Some(d_block),
    };
    let result = symm_square_cube_summa(rc, &mesh, &bundles, &input);
    (
        result.d2.unwrap().unwrap_real().clone().into_vec(),
        result.d3.unwrap().unwrap_real().clone().into_vec(),
    )
}

#[test]
fn summa_identical_on_both_backends() {
    let (sim, rt) = run_both(4, 2, dispatch!(|rc| summa_worker(rc, 18, 2, 2)));
    assert_eq!(sim, rt, "SUMMA must be bit-identical");
}

// ---------------------------------------------------------------------
// COSMA-style one-sided multiply (RMA windows: win_create, fenced get
// epochs, prefetch overlap) — the rma-smoke cross-backend gate.
// ---------------------------------------------------------------------

fn cosma_worker<R: RankHandle>(rc: &R, n: usize, p: usize) -> (Vec<f64>, Vec<f64>) {
    let mesh = Mesh2D::new(rc, p);
    let grid = BlockGrid::new(n, p);
    let d_block = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
    let input = SymmInput {
        n,
        d_block: Some(d_block),
    };
    let result = symm_square_cube_cosma(rc, &mesh, &input);
    (
        result.d2.unwrap().unwrap_real().clone().into_vec(),
        result.d3.unwrap().unwrap_real().clone().into_vec(),
    )
}

#[test]
fn cosma_identical_on_both_backends() {
    let (sim, rt) = run_both(4, 2, dispatch!(|rc| cosma_worker(rc, 18, 2)));
    assert_eq!(sim, rt, "one-sided COSMA must be bit-identical");
}

#[test]
fn cosma_matches_summa_across_backends() {
    // One-sided and two-sided transports of the same schedule: every
    // backend × algorithm combination must produce the same bits.
    let (sim_c, rt_c) = run_both(9, 3, dispatch!(|rc| cosma_worker(rc, 20, 3)));
    let (sim_s, rt_s) = run_both(9, 3, dispatch!(|rc| summa_worker(rc, 20, 3, 2)));
    assert_eq!(sim_c, sim_s, "cosma vs SUMMA on sim");
    assert_eq!(rt_c, rt_s, "cosma vs SUMMA on rt");
}

// ---------------------------------------------------------------------
// 2.5-D SymmSquareCube.
// ---------------------------------------------------------------------

fn symm25d_worker<R: RankHandle>(
    rc: &R,
    n: usize,
    q: usize,
    c: usize,
    n_dup: usize,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let mesh = Mesh25D::new(rc, q, c);
    let grid = BlockGrid::new(n, q);
    let d_block =
        (mesh.k == 0).then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
    let grd_ndup = NDupComms::new(&mesh.grd, n_dup);
    let input = SymmInput { n, d_block };
    let result = symm_square_cube_25d(rc, &mesh, &grd_ndup, &input);
    result.d2.map(|d2| {
        (
            d2.unwrap_real().clone().into_vec(),
            result.d3.unwrap().unwrap_real().clone().into_vec(),
        )
    })
}

#[test]
fn symm25d_identical_on_both_backends() {
    let (sim, rt) = run_both(8, 2, dispatch!(|rc| symm25d_worker(rc, 18, 2, 2, 2)));
    assert_eq!(sim, rt, "2.5D must be bit-identical");
}

// ---------------------------------------------------------------------
// Block CG (overlapped Gram reductions).
// ---------------------------------------------------------------------

fn blockcg_worker<R: RankHandle>(rc: &R, n: usize, p: usize, s: usize) -> (usize, bool, Vec<f64>) {
    let mesh = Mesh2D::new(rc, p);
    let grid = BlockGrid::new(n, p);
    let part = Partition1D::new(n, p);
    let a_full = ovcomm_densemat::symmetric_with_spectrum(
        &(0..n)
            .map(|i| 1.0 + 10.0 * i as f64 / n as f64)
            .collect::<Vec<_>>(),
        77,
    );
    let a = BlockBuf::Real(grid.extract(&a_full, mesh.i, mesh.j));
    let b_full = Matrix::from_fn(n, s, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
    let (st, l) = part.range(mesh.j);
    let b_seg = BlockBuf::Real(b_full.submatrix(st, 0, l, s));
    let comms = CgComms::new(&mesh, 2);
    let cfg = BlockCgConfig {
        n,
        s,
        tol: 1e-10,
        max_iter: 200,
        overlap: true,
    };
    let res = block_cg(rc, &mesh, &comms, &cfg, &a, &b_seg);
    (
        res.iterations,
        res.converged,
        res.x_segment.unwrap_real().clone().into_vec(),
    )
}

#[test]
fn block_cg_identical_on_both_backends() {
    let (sim, rt) = run_both(4, 2, dispatch!(|rc| blockcg_worker(rc, 24, 2, 2)));
    assert!(sim[0].1, "CG must converge");
    assert_eq!(sim, rt, "block CG must be bit-identical");
}

// ---------------------------------------------------------------------
// Force-decomposition MD.
// ---------------------------------------------------------------------

fn md_worker<R: RankHandle>(rc: &R, n: usize, p: usize, overlap: Option<usize>) -> Vec<f64> {
    let mesh = Mesh2D::new(rc, p);
    let cfg = MdConfig {
        n_particles: n,
        steps: 5,
        dt: 0.01,
        overlap,
        neighbors: None,
    };
    let state = md_init(rc, &mesh, &cfg, false);
    let fin = md_run(rc, &mesh, &cfg, state);
    match fin.x {
        VecBuf::Real(v) => v,
        VecBuf::Phantom(_) => unreachable!(),
    }
}

#[test]
fn md_identical_on_both_backends() {
    for overlap in [None, Some(3)] {
        let (sim, rt) = run_both(4, 2, dispatch!(move |rc| md_worker(rc, 12, 2, overlap)));
        assert_eq!(sim, rt, "MD (overlap {overlap:?}) must be bit-identical");
    }
}

// ---------------------------------------------------------------------
// Purification — the full application loop, to convergence.
// ---------------------------------------------------------------------

fn purify_worker<R: RankHandle>(rc: &R, choice: KernelChoice) -> (usize, bool, Option<Vec<f64>>) {
    let cfg = PurifyConfig {
        n: 24,
        nocc: 8,
        tol: 1e-9,
        max_iter: 100,
        phantom: false,
        seed: 42,
    };
    let res = purify_rank(rc, &cfg, choice);
    (
        res.iterations,
        res.converged,
        res.d_block.map(|b| b.unwrap_real().clone().into_vec()),
    )
}

#[test]
fn purification_identical_on_both_backends() {
    for choice in [
        KernelChoice::Baseline,
        KernelChoice::Optimized { n_dup: 2 },
        KernelChoice::TwoFiveD { c: 2, n_dup: 2 },
    ] {
        let (sim, rt) = run_both(8, 2, dispatch!(move |rc| purify_worker(rc, choice)));
        assert!(sim[0].1, "{choice:?} must converge");
        assert_eq!(sim, rt, "{choice:?} purification must be bit-identical");
    }
}

// ---------------------------------------------------------------------
// Staged SCF (per-kernel PPN with Ibarrier sleep-polling) — exercises
// nonblocking barriers, MPI_Test polling and rank sleeping on real
// threads.
// ---------------------------------------------------------------------

fn scf_worker<R: RankHandle>(rc: &R) -> (usize, usize) {
    let cfg = ScfConfig {
        purify: PurifyConfig {
            n: 16,
            nocc: 4,
            tol: 1e-8,
            max_iter: 60,
            phantom: false,
            seed: 9,
        },
        plan: StagePlan::per_node(1, 2),
        fock_time: SimDur::from_micros(50),
        scf_iterations: 2,
    };
    let res = scf_staged(rc, &cfg, KernelChoice::Baseline);
    (res.scf_iterations, res.kernel_calls)
}

#[test]
fn staged_scf_runs_on_both_backends_with_same_kernel_work() {
    // 16 ranks at ppn 2, 1 active per node → 8 actives forming a 2³ cube.
    // Poll counts legitimately differ across backends (wall-clock sleeps vs
    // virtual-time sleeps), so compare the deterministic outputs only.
    let (sim, rt) = run_both(16, 2, dispatch!(scf_worker));
    assert_eq!(sim, rt, "SCF iteration/kernel-call counts must agree");
    for (iters, _) in &rt {
        assert_eq!(*iters, 2);
    }
}
