//! Runtime-semantics tests for the shared-memory backend: point-to-point
//! protocols, communicator management, collectives, deadlock detection and
//! traffic accounting — the rt analogue of simmpi's `mpi_semantics.rs`.
//!
//! Wall-clock assertions use *generous* bounds (hundreds of milliseconds
//! of slack) so they hold on loaded CI machines; they check protocol
//! *ordering* (eager completes before the receiver shows up, rendezvous
//! does not), never precise timing.

use std::time::{Duration, Instant};

use ovcomm_rt::{run, RtConfig, RtError, RtRankCtx};
use ovcomm_simmpi::Payload;
use ovcomm_simnet::MachineProfile;

fn cfg(nranks: usize, ppn: usize) -> RtConfig {
    RtConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

fn bytes(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 251) as u8)
        .collect()
}

#[test]
fn eager_send_completes_without_receiver() {
    // Below the eager limit the sender's request completes at post time,
    // even though the receiver sleeps before posting its receive.
    let out = run(cfg(2, 1), |rc: RtRankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let t0 = Instant::now();
            let req = w.isend(1, 7, Payload::from_vec(bytes(1024, 3)));
            w.wait(&req);
            t0.elapsed()
        } else {
            std::thread::sleep(Duration::from_millis(400));
            let got = w.recv(0, 7);
            assert_eq!(got, Payload::from_vec(bytes(1024, 3)));
            Duration::ZERO
        }
    })
    .unwrap();
    assert!(
        out.results[0] < Duration::from_millis(200),
        "eager send should not wait for the receiver (took {:?})",
        out.results[0]
    );
}

#[test]
fn rendezvous_send_waits_for_receiver() {
    // Above the eager limit (64 KiB in the test profile) the sender
    // completes only at match time.
    let n = 256 * 1024;
    let out = run(cfg(2, 1), move |rc: RtRankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let t0 = Instant::now();
            let req = w.isend(1, 7, Payload::from_vec(bytes(n, 5)));
            w.wait(&req);
            t0.elapsed()
        } else {
            std::thread::sleep(Duration::from_millis(400));
            let got = w.recv(0, 7);
            assert_eq!(got.len(), n);
            Duration::ZERO
        }
    })
    .unwrap();
    assert!(
        out.results[0] >= Duration::from_millis(100),
        "rendezvous send must block until the receive is posted (took {:?})",
        out.results[0]
    );
}

#[test]
fn fifo_order_is_preserved_per_envelope() {
    // Two same-envelope messages must match in post order even when the
    // receives are posted late.
    let out = run(cfg(2, 1), |rc: RtRankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 1, Payload::from_f64s(&[1.0]));
            w.send(1, 1, Payload::from_f64s(&[2.0]));
            vec![]
        } else {
            let a = w.recv(0, 1).to_f64s();
            let b = w.recv(0, 1).to_f64s();
            vec![a[0], b[0]]
        }
    })
    .unwrap();
    assert_eq!(out.results[1], vec![1.0, 2.0]);
}

#[test]
fn sendrecv_ring_rotates_payloads() {
    let p = 5;
    let out = run(cfg(p, 1), move |rc: RtRankCtx| {
        let w = rc.world();
        let me = rc.rank();
        let dst = (me + 1) % p;
        let src = (me + p - 1) % p;
        let got = w.sendrecv(dst, src, 9, Payload::from_f64s(&[me as f64]));
        got.to_f64s()[0]
    })
    .unwrap();
    for (r, &v) in out.results.iter().enumerate() {
        assert_eq!(v as usize, (r + p - 1) % p);
    }
}

#[test]
fn dup_contexts_do_not_cross_match() {
    // The same (src, dst, tag) on world and on a dup'd communicator are
    // different envelopes.
    let out = run(cfg(2, 1), |rc: RtRankCtx| {
        let w = rc.world();
        let d = w.dup();
        if rc.rank() == 0 {
            let r1 = w.isend(1, 3, Payload::from_f64s(&[10.0]));
            let r2 = d.isend(1, 3, Payload::from_f64s(&[20.0]));
            w.wait(&r1);
            d.wait(&r2);
            (0.0, 0.0)
        } else {
            // Receive dup-first: cross-matching would deliver 10.0 here.
            let on_dup = d.recv(0, 3).to_f64s()[0];
            let on_world = w.recv(0, 3).to_f64s()[0];
            (on_world, on_dup)
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (10.0, 20.0));
}

#[test]
fn split_forms_groups_and_supports_collectives() {
    // Even/odd split; each group allreduces its ranks.
    let p = 6;
    let out = run(cfg(p, 1), move |rc: RtRankCtx| {
        let w = rc.world();
        let me = rc.rank();
        let sub = w.split((me % 2) as i64, me as u64).unwrap();
        assert_eq!(sub.size(), p / 2);
        assert_eq!(sub.rank(), me / 2);
        sub.allreduce(Payload::from_f64s(&[me as f64])).to_f64s()[0]
    })
    .unwrap();
    let even: f64 = (0..p).filter(|r| r % 2 == 0).map(|r| r as f64).sum();
    let odd: f64 = (0..p).filter(|r| r % 2 == 1).map(|r| r as f64).sum();
    for (r, &v) in out.results.iter().enumerate() {
        assert_eq!(v, if r % 2 == 0 { even } else { odd });
    }
}

#[test]
fn split_negative_color_opts_out() {
    let out = run(cfg(4, 1), |rc: RtRankCtx| {
        let w = rc.world();
        let color = if rc.rank() < 2 { 0 } else { -1 };
        let sub = w.split(color, rc.rank() as u64);
        match sub {
            Some(c) => {
                assert_eq!(c.size(), 2);
                true
            }
            None => false,
        }
    })
    .unwrap();
    assert_eq!(out.results, vec![true, true, false, false]);
}

#[test]
fn blocking_collectives_deliver_exact_data() {
    let p = 5;
    let n = 4096;
    let data = bytes(n, 11);
    let expect = Payload::from_vec(data.clone());
    let expect2 = expect.clone();
    let out = run(cfg(p, 1), move |rc: RtRankCtx| {
        let w = rc.world();
        let me = rc.rank();

        // bcast from rank 2.
        let got = w.bcast(2, (me == 2).then(|| Payload::from_vec(data.clone())), n);
        assert_eq!(got, expect2, "bcast");

        // reduce to rank 1.
        let red = w.reduce(1, Payload::from_f64s(&[me as f64, 1.0]));
        if me == 1 {
            let v = red.unwrap().to_f64s();
            assert_eq!(v, vec![(0..p).map(|r| r as f64).sum::<f64>(), p as f64]);
        } else {
            assert!(red.is_none());
        }

        // allreduce.
        let all = w
            .allreduce(Payload::from_f64s(&[2.0 * me as f64]))
            .to_f64s();
        assert_eq!(all[0], (0..p).map(|r| 2.0 * r as f64).sum::<f64>());

        // barrier.
        w.barrier();

        // scatter from 0 / gather to 0 round-trip.
        let sc = w.scatter(0, (me == 0).then(|| Payload::from_vec(data.clone())), n);
        let back = w.gather(0, sc, n);
        if me == 0 {
            assert_eq!(back.unwrap().len(), n);
        } else {
            assert!(back.is_none());
        }

        // allgather of per-rank chunks.
        let b = ovcomm_simmpi::plan::chunk_bounds(n, p);
        let mine = Payload::from_vec(data[b[me]..b[me + 1]].to_vec());
        w.allgather(mine, n)
    })
    .unwrap();
    for res in &out.results {
        assert_eq!(res, &expect);
    }
}

#[test]
fn nonblocking_collectives_complete_via_wait_and_test() {
    let p = 4;
    let out = run(cfg(p, 1), move |rc: RtRankCtx| {
        let w = rc.world();
        let me = rc.rank();

        let rb = w.ibcast(0, (me == 0).then(|| Payload::from_f64s(&[7.0])), 8);
        let rr = w.ireduce(3, Payload::from_f64s(&[me as f64]));
        let ra = w.iallreduce(Payload::from_f64s(&[1.0]));

        let b = w.wait(&rb).to_f64s()[0];
        let r = w.wait(&rr).map(|x| x.to_f64s()[0]);
        let a = w.wait(&ra).to_f64s()[0];

        // ibarrier completed by polling MPI_Test.
        let bar = w.ibarrier();
        let mut polls = 0usize;
        while !w.test(&bar) {
            std::thread::sleep(Duration::from_millis(1));
            polls += 1;
            assert!(polls < 10_000, "ibarrier never completed");
        }
        w.wait(&bar);
        (b, r, a)
    })
    .unwrap();
    for (me, (b, r, a)) in out.results.iter().enumerate() {
        assert_eq!(*b, 7.0);
        assert_eq!(*a, p as f64);
        if me == 3 {
            assert_eq!(r.unwrap(), (0..p).map(|x| x as f64).sum::<f64>());
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn unmatched_receive_is_detected_as_deadlock() {
    let res = run(
        cfg(2, 1).with_deadlock_timeout(Duration::from_millis(300)),
        |rc: RtRankCtx| {
            let w = rc.world();
            if rc.rank() == 0 {
                // Nobody ever sends this.
                let _ = w.recv(1, 42);
            } else {
                // Rank 1 waits forever on a barrier rank 0 never reaches.
                w.barrier();
            }
        },
    );
    match res {
        Err(RtError::Deadlock { .. }) => {}
        other => panic!(
            "expected deadlock, got {:?}",
            other.as_ref().map(|_| "Ok").map_err(|e| e.to_string())
        ),
    }
}

#[test]
fn traffic_accounting_distinguishes_intra_and_inter_node() {
    // 4 ranks packed 2 per node: 0,1 on node 0; 2,3 on node 1.
    let out = run(cfg(4, 2), |rc: RtRankCtx| {
        let w = rc.world();
        match rc.rank() {
            0 => {
                w.send(1, 0, Payload::from_vec(vec![0u8; 1000])); // intra
                w.send(2, 0, Payload::from_vec(vec![0u8; 3000])); // inter
            }
            1 => {
                let _ = w.recv(0, 0);
            }
            2 => {
                let _ = w.recv(0, 0);
            }
            _ => {}
        }
    })
    .unwrap();
    assert_eq!(out.intra_node_bytes, 1000);
    assert_eq!(out.inter_node_bytes, 3000);
    assert_eq!(out.messages, 2);
}

#[test]
fn strict_verification_passes_a_clean_run_and_counts_nothing() {
    let out = run(cfg(3, 1), |rc: RtRankCtx| {
        let w = rc.world();
        let me = rc.rank();
        let v = w.allreduce(Payload::from_f64s(&[me as f64]));
        w.barrier();
        v.to_f64s()[0]
    })
    .unwrap();
    assert_eq!(out.verify.errors(), 0);
    assert_eq!(out.verify.dropped_incomplete, 0);
    assert_eq!(out.verify.dropped_untaken, 0);
}

#[test]
fn makespan_and_end_times_are_monotone() {
    let out = run(cfg(3, 1), |rc: RtRankCtx| {
        let w = rc.world();
        w.barrier();
        rc.rank()
    })
    .unwrap();
    assert_eq!(out.results, vec![0, 1, 2]);
    for &t in &out.end_times {
        assert!(t <= out.makespan);
        assert!(t > ovcomm_simnet::SimTime::ZERO);
    }
}
