//! Loom schedule tests for the runtime's concurrency core.
//!
//! Built (and the whole crate's `crate::sync` switched to loom primitives)
//! only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ovcomm-rt --test loom
//! ```
//!
//! The harness drives the *production* [`ovcomm_rt::mailbox::Mailbox`]
//! type from concurrent model threads, wrapped in a miniature runtime
//! that replicates the shared-state protocol shape of `shared.rs`:
//! matching decisions happen under one state mutex, request completion
//! happens *after* the lock is released (the lost-wakeup-prone part), and
//! waiters block on a mutex+condvar completion cell. The loom scheduler
//! explores randomized interleavings of every lock acquire, condvar
//! wait/notify, and atomic access, and its deadlock detector turns any
//! lost wakeup or handshake hole into a test failure naming the seed.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

use ovcomm_rt::mailbox::{Mailbox, RecvPost, RtKey, SendPost};

const SCHEDULES: u64 = 64;

fn key(tag: u64) -> RtKey {
    RtKey {
        ctx: 0,
        src: 0,
        dst: 1,
        tag,
    }
}

/// A completion cell: the distilled `Request` + `ParkCell` pair. `wait`
/// parks on the condvar until `complete` delivers a value.
struct CompletionCell<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> CompletionCell<T> {
    fn new() -> CompletionCell<T> {
        CompletionCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, v: T) {
        *self.slot.lock() = Some(v);
        self.cv.notify_all();
    }

    fn wait(&self) -> T {
        let mut g = self.slot.lock();
        loop {
            if let Some(v) = g.take() {
                return v;
            }
            self.cv.wait(&mut g);
        }
    }
}

/// Parked send slot in the mini runtime: the payload plus the sender's
/// completion cell and protocol flag (mirrors `shared::Slot`).
struct MiniSlot {
    payload: u64,
    sender: Arc<CompletionCell<()>>,
    eager: bool,
}

/// The mini runtime: production mailbox under the production sync
/// primitives, with the same lock-then-complete-outside-lock shape as
/// `RtShared::{isend_raw, irecv_raw}`.
struct MiniRt {
    state: Mutex<Mailbox<MiniSlot, Arc<CompletionCell<u64>>>>,
}

impl MiniRt {
    fn new() -> MiniRt {
        MiniRt {
            state: Mutex::new(Mailbox::new()),
        }
    }

    /// Post a send; eager sends complete at post, rendezvous at match.
    /// Returns the sender's completion cell.
    fn isend(&self, key: RtKey, payload: u64, eager: bool) -> Arc<CompletionCell<()>> {
        let sender = Arc::new(CompletionCell::new());
        if eager {
            sender.complete(());
        }
        let slot = MiniSlot {
            payload,
            sender: sender.clone(),
            eager,
        };
        let matched = {
            let mut st = self.state.lock();
            match st.post_send(key, slot) {
                SendPost::Matched { send, recv } => Some((send, recv)),
                SendPost::Parked(_) => None,
            }
        };
        // Completions run outside the state lock, as in the real runtime.
        if let Some((send, recv)) = matched {
            if !send.eager {
                send.sender.complete(());
            }
            recv.complete(send.payload);
        }
        sender
    }

    /// Post a receive; returns the receiver's completion cell.
    fn irecv(&self, key: RtKey) -> Arc<CompletionCell<u64>> {
        let recv = Arc::new(CompletionCell::new());
        let matched = {
            let mut st = self.state.lock();
            match st.post_recv(key, recv.clone()) {
                RecvPost::Matched { send, .. } => Some(send),
                RecvPost::Parked => None,
            }
        };
        if let Some(send) = matched {
            if !send.eager {
                send.sender.complete(());
            }
            recv.complete(send.payload);
        }
        recv
    }

    fn drained(&self) -> bool {
        self.state.lock().is_drained()
    }
}

/// One eager send racing one receive: under every schedule the payload is
/// delivered, both requests complete, and the mailbox drains.
#[test]
fn eager_match_commutes_with_post_order() {
    loom::model_with(SCHEDULES, 0xA11CE, || {
        let rt = Arc::new(MiniRt::new());
        let rts = rt.clone();
        let sender = thread::spawn(move || rts.isend(key(1), 42, true).wait());
        let rtr = rt.clone();
        let receiver = thread::spawn(move || rtr.irecv(key(1)).wait());
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), 42);
        assert!(rt.drained());
    });
}

/// Two same-envelope sends against two receives posted from another
/// thread: MPI's non-overtaking rule must hold under every interleaving —
/// the first-posted receive gets the first-posted payload.
#[test]
fn fifo_matching_never_overtakes() {
    loom::model_with(SCHEDULES, 0xF1F0, || {
        let rt = Arc::new(MiniRt::new());
        let rts = rt.clone();
        let sender = thread::spawn(move || {
            let s1 = rts.isend(key(9), 100, true);
            let s2 = rts.isend(key(9), 200, true);
            s1.wait();
            s2.wait();
        });
        let rtr = rt.clone();
        let receiver = thread::spawn(move || {
            let r1 = rtr.irecv(key(9));
            let r2 = rtr.irecv(key(9));
            (r1.wait(), r2.wait())
        });
        sender.join().unwrap();
        let (v1, v2) = receiver.join().unwrap();
        assert_eq!((v1, v2), (100, 200), "receives matched out of post order");
        assert!(rt.drained());
    });
}

/// Rendezvous handshake: the sender's completion must happen-after the
/// receive is posted, and the blocking wait on it must never miss the
/// wakeup (a lost notify would deadlock the schedule and fail the model).
#[test]
fn rendezvous_completion_waits_for_the_receiver() {
    loom::model_with(SCHEDULES, 0xDE2F, || {
        let rt = Arc::new(MiniRt::new());
        let recv_posted = Arc::new(AtomicBool::new(false));
        let rts = rt.clone();
        let flag = recv_posted.clone();
        let sender = thread::spawn(move || {
            let req = rts.isend(key(5), 7, false);
            req.wait();
            // Rendezvous: by the time the send completes, the receive must
            // have been posted (eager buffering is not allowed here).
            assert!(
                flag.load(Ordering::SeqCst),
                "rendezvous send completed before its receive was posted"
            );
        });
        let rtr = rt.clone();
        let flag2 = recv_posted.clone();
        let receiver = thread::spawn(move || {
            flag2.store(true, Ordering::SeqCst);
            rtr.irecv(key(5)).wait()
        });
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), 7);
        assert!(rt.drained());
    });
}

/// Distinct envelopes are fully independent: concurrent traffic on two
/// tags never cross-matches and never deadlocks, whichever side posts
/// first on each.
#[test]
fn disjoint_envelopes_do_not_interfere() {
    loom::model_with(SCHEDULES, 0x5EED, || {
        let rt = Arc::new(MiniRt::new());
        let rta = rt.clone();
        let a = thread::spawn(move || {
            let s = rta.isend(key(1), 111, true);
            let r = rta.irecv(key(2));
            s.wait();
            r.wait()
        });
        let rtb = rt.clone();
        let b = thread::spawn(move || {
            let s = rtb.isend(key(2), 222, false);
            let r = rtb.irecv(key(1));
            s.wait();
            r.wait()
        });
        assert_eq!(a.join().unwrap(), 222);
        assert_eq!(b.join().unwrap(), 111);
        assert!(rt.drained());
    });
}
