//! Loom schedule tests for the runtime's concurrency core.
//!
//! Built (and the whole crate's `crate::sync` switched to loom primitives)
//! only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ovcomm-rt --test loom
//! ```
//!
//! The harness drives the *production* [`ovcomm_rt::mailbox::Mailbox`]
//! type from concurrent model threads, wrapped in a miniature runtime
//! that replicates the shared-state protocol shape of `shared.rs`:
//! matching decisions happen under one state mutex, request completion
//! happens *after* the lock is released (the lost-wakeup-prone part), and
//! waiters block on a mutex+condvar completion cell. The loom scheduler
//! explores randomized interleavings of every lock acquire, condvar
//! wait/notify, and atomic access, and its deadlock detector turns any
//! lost wakeup or handshake hole into a test failure naming the seed.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

use ovcomm_rt::mailbox::{
    LockFreeMailbox, Mailbox, MatchPair, PostedOp, RecvPost, RtKey, SendPost,
};
use ovcomm_rt::queue::{MpscQueue, Popped, SpscRing};
use ovcomm_rt::window::{StagedOp, WinCore};
use ovcomm_simmpi::Payload;

const SCHEDULES: u64 = 64;

fn key(tag: u64) -> RtKey {
    RtKey {
        ctx: 0,
        src: 0,
        dst: 1,
        tag,
    }
}

/// A completion cell: the distilled `Request` + `ParkCell` pair. `wait`
/// parks on the condvar until `complete` delivers a value.
struct CompletionCell<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> CompletionCell<T> {
    fn new() -> CompletionCell<T> {
        CompletionCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, v: T) {
        *self.slot.lock() = Some(v);
        self.cv.notify_all();
    }

    fn wait(&self) -> T {
        let mut g = self.slot.lock();
        loop {
            if let Some(v) = g.take() {
                return v;
            }
            self.cv.wait(&mut g);
        }
    }
}

/// Parked send slot in the mini runtime: the payload plus the sender's
/// completion cell and protocol flag (mirrors `shared::Slot`).
struct MiniSlot {
    payload: u64,
    sender: Arc<CompletionCell<()>>,
    eager: bool,
}

/// The mini runtime: production mailbox under the production sync
/// primitives, with the same lock-then-complete-outside-lock shape as
/// `RtShared::{isend_raw, irecv_raw}`.
struct MiniRt {
    state: Mutex<Mailbox<MiniSlot, Arc<CompletionCell<u64>>>>,
}

impl MiniRt {
    fn new() -> MiniRt {
        MiniRt {
            state: Mutex::new(Mailbox::new()),
        }
    }

    /// Post a send; eager sends complete at post, rendezvous at match.
    /// Returns the sender's completion cell.
    fn isend(&self, key: RtKey, payload: u64, eager: bool) -> Arc<CompletionCell<()>> {
        let sender = Arc::new(CompletionCell::new());
        if eager {
            sender.complete(());
        }
        let slot = MiniSlot {
            payload,
            sender: sender.clone(),
            eager,
        };
        let matched = {
            let mut st = self.state.lock();
            match st.post_send(key, slot) {
                SendPost::Matched { send, recv } => Some((send, recv)),
                SendPost::Parked(_) => None,
            }
        };
        // Completions run outside the state lock, as in the real runtime.
        if let Some((send, recv)) = matched {
            if !send.eager {
                send.sender.complete(());
            }
            recv.complete(send.payload);
        }
        sender
    }

    /// Post a receive; returns the receiver's completion cell.
    fn irecv(&self, key: RtKey) -> Arc<CompletionCell<u64>> {
        let recv = Arc::new(CompletionCell::new());
        let matched = {
            let mut st = self.state.lock();
            match st.post_recv(key, recv.clone()) {
                RecvPost::Matched { send, .. } => Some(send),
                RecvPost::Parked => None,
            }
        };
        if let Some(send) = matched {
            if !send.eager {
                send.sender.complete(());
            }
            recv.complete(send.payload);
        }
        recv
    }

    fn drained(&self) -> bool {
        self.state.lock().is_drained()
    }
}

/// One eager send racing one receive: under every schedule the payload is
/// delivered, both requests complete, and the mailbox drains.
#[test]
fn eager_match_commutes_with_post_order() {
    loom::model_with(SCHEDULES, 0xA11CE, || {
        let rt = Arc::new(MiniRt::new());
        let rts = rt.clone();
        let sender = thread::spawn(move || rts.isend(key(1), 42, true).wait());
        let rtr = rt.clone();
        let receiver = thread::spawn(move || rtr.irecv(key(1)).wait());
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), 42);
        assert!(rt.drained());
    });
}

/// Two same-envelope sends against two receives posted from another
/// thread: MPI's non-overtaking rule must hold under every interleaving —
/// the first-posted receive gets the first-posted payload.
#[test]
fn fifo_matching_never_overtakes() {
    loom::model_with(SCHEDULES, 0xF1F0, || {
        let rt = Arc::new(MiniRt::new());
        let rts = rt.clone();
        let sender = thread::spawn(move || {
            let s1 = rts.isend(key(9), 100, true);
            let s2 = rts.isend(key(9), 200, true);
            s1.wait();
            s2.wait();
        });
        let rtr = rt.clone();
        let receiver = thread::spawn(move || {
            let r1 = rtr.irecv(key(9));
            let r2 = rtr.irecv(key(9));
            (r1.wait(), r2.wait())
        });
        sender.join().unwrap();
        let (v1, v2) = receiver.join().unwrap();
        assert_eq!((v1, v2), (100, 200), "receives matched out of post order");
        assert!(rt.drained());
    });
}

/// Rendezvous handshake: the sender's completion must happen-after the
/// receive is posted, and the blocking wait on it must never miss the
/// wakeup (a lost notify would deadlock the schedule and fail the model).
#[test]
fn rendezvous_completion_waits_for_the_receiver() {
    loom::model_with(SCHEDULES, 0xDE2F, || {
        let rt = Arc::new(MiniRt::new());
        let recv_posted = Arc::new(AtomicBool::new(false));
        let rts = rt.clone();
        let flag = recv_posted.clone();
        let sender = thread::spawn(move || {
            let req = rts.isend(key(5), 7, false);
            req.wait();
            // Rendezvous: by the time the send completes, the receive must
            // have been posted (eager buffering is not allowed here).
            assert!(
                flag.load(Ordering::SeqCst),
                "rendezvous send completed before its receive was posted"
            );
        });
        let rtr = rt.clone();
        let flag2 = recv_posted.clone();
        let receiver = thread::spawn(move || {
            flag2.store(true, Ordering::SeqCst);
            rtr.irecv(key(5)).wait()
        });
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), 7);
        assert!(rt.drained());
    });
}

/// Concurrent SPSC push/pop through a deliberately tiny ring: FIFO order
/// must hold and the full-ring `Err` path must hand the value back intact
/// for the retry (the production ring-full backoff loop).
#[test]
fn spsc_ring_concurrent_push_pop_stays_fifo() {
    loom::model_with(SCHEDULES, 0x59C0, || {
        let ring = Arc::new(SpscRing::new(2));
        let pring = ring.clone();
        let producer = thread::spawn(move || {
            for v in 0..4u64 {
                let mut v = v;
                // Safety: this thread is the ring's only producer.
                while let Err(back) = unsafe { pring.try_push(v) } {
                    v = back;
                    thread::yield_now();
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 4 {
            // Safety: this thread is the ring's only consumer.
            match unsafe { ring.pop() } {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3], "SPSC ring reordered or lost");
        assert!(ring.is_empty());
    });
}

/// Two concurrent producers against one consumer: the MPSC injector must
/// lose nothing and keep each producer's own order, and the consumer's
/// view of a producer parked mid-push (`Inconsistent`) must resolve once
/// that producer runs again.
#[test]
fn mpsc_queue_concurrent_producers_preserve_per_producer_order() {
    loom::model_with(SCHEDULES, 0x3A1B, || {
        let q = Arc::new(MpscQueue::new());
        let qa = q.clone();
        let a = thread::spawn(move || {
            qa.push(10u64);
            qa.push(11);
        });
        let qb = q.clone();
        let b = thread::spawn(move || {
            qb.push(20u64);
            qb.push(21);
        });
        let mut got = Vec::new();
        while got.len() < 4 {
            // Safety: this thread is the queue's only consumer.
            match unsafe { q.pop() } {
                Popped::Item(v) => got.push(v),
                Popped::Empty | Popped::Inconsistent => thread::yield_now(),
            }
        }
        a.join().unwrap();
        b.join().unwrap();
        let pos = |v: u64| got.iter().position(|&x| x == v).unwrap();
        assert!(pos(10) < pos(11), "producer A reordered: {got:?}");
        assert!(pos(20) < pos(21), "producer B reordered: {got:?}");
        // Safety: still the only consumer.
        assert_eq!(unsafe { q.pop() }, Popped::Empty);
    });
}

/// The drain-baton no-strand obligation: two rank threads post the two
/// halves of one match concurrently; by the time both `post` calls have
/// returned, the match must have surfaced in someone's out list — no
/// final sweep allowed. A schedule where a failed baton CAS strands an
/// enqueued op fails this count.
#[test]
fn lockfree_router_never_strands_a_concurrent_post() {
    loom::model_with(SCHEDULES, 0x10CF, || {
        let mb: Arc<LockFreeMailbox<u64, u64>> = Arc::new(LockFreeMailbox::new(2, 4));
        let m0 = mb.clone();
        let sender = thread::spawn(move || {
            let mut out = Vec::new();
            // Safety: this thread plays rank 0 — sole producer of ring 0.
            unsafe {
                m0.post(
                    Some(0),
                    PostedOp::Send {
                        key: key(3),
                        slot: 7u64,
                    },
                    &mut out,
                )
            };
            out
        });
        let m1 = mb.clone();
        let receiver = thread::spawn(move || {
            let mut out = Vec::new();
            // Safety: this thread plays rank 1 — sole producer of ring 1.
            unsafe {
                m1.post(
                    Some(1),
                    PostedOp::Recv {
                        key: key(3),
                        entry: 40u64,
                    },
                    &mut out,
                )
            };
            out
        });
        let mut matches = sender.join().unwrap();
        matches.extend(receiver.join().unwrap());
        assert_eq!(matches.len(), 1, "match stranded or duplicated");
        let MatchPair { send, recv, .. } = &matches[0];
        assert_eq!((*send, *recv), (7, 40));
        assert_eq!((mb.unmatched_sends(), mb.posted_recvs()), (0, 0));
    });
}

/// Same-envelope FIFO through the lock-free router under concurrency:
/// whatever interleaving drains the rings, the first-posted send must
/// pair with the first-posted receive (MPI non-overtaking).
#[test]
fn lockfree_router_pairs_same_envelope_in_fifo_order() {
    loom::model_with(SCHEDULES, 0xF1F1, || {
        let mb: Arc<LockFreeMailbox<u64, u64>> = Arc::new(LockFreeMailbox::new(2, 4));
        let m0 = mb.clone();
        let sender = thread::spawn(move || {
            let mut out = Vec::new();
            // Safety: this thread plays rank 0 — sole producer of ring 0.
            unsafe {
                m0.post(
                    Some(0),
                    PostedOp::Send {
                        key: key(9),
                        slot: 100u64,
                    },
                    &mut out,
                );
                m0.post(
                    Some(0),
                    PostedOp::Send {
                        key: key(9),
                        slot: 200u64,
                    },
                    &mut out,
                );
            }
            out
        });
        let m1 = mb.clone();
        let receiver = thread::spawn(move || {
            let mut out = Vec::new();
            // Safety: this thread plays rank 1 — sole producer of ring 1.
            unsafe {
                m1.post(
                    Some(1),
                    PostedOp::Recv {
                        key: key(9),
                        entry: 1u64,
                    },
                    &mut out,
                );
                m1.post(
                    Some(1),
                    PostedOp::Recv {
                        key: key(9),
                        entry: 2u64,
                    },
                    &mut out,
                );
            }
            out
        });
        let mut matches = sender.join().unwrap();
        matches.extend(receiver.join().unwrap());
        assert_eq!(matches.len(), 2);
        matches.sort_by_key(|m| m.recv);
        let pairs: Vec<(u64, u64)> = matches.iter().map(|m| (m.send, m.recv)).collect();
        assert_eq!(pairs, vec![(100, 1), (200, 2)], "non-overtaking violated");
        assert_eq!((mb.unmatched_sends(), mb.posted_recvs()), (0, 0));
    });
}

/// A rank-thread ring post racing a progress-worker injector post
/// (`producer: None`): the two queue kinds must merge through the same
/// baton without losing either half of the match — including schedules
/// that catch the injector's mid-push `Inconsistent` window.
#[test]
fn lockfree_router_merges_ring_and_injector_posts() {
    loom::model_with(SCHEDULES, 0x1B0C, || {
        let mb: Arc<LockFreeMailbox<u64, u64>> = Arc::new(LockFreeMailbox::new(2, 4));
        let m0 = mb.clone();
        let rank = thread::spawn(move || {
            let mut out = Vec::new();
            // Safety: this thread plays rank 0 — sole producer of ring 0.
            unsafe {
                m0.post(
                    Some(0),
                    PostedOp::Recv {
                        key: key(6),
                        entry: 40u64,
                    },
                    &mut out,
                )
            };
            out
        });
        let mw = mb.clone();
        let worker = thread::spawn(move || {
            let mut out = Vec::new();
            // Progress workers have no ring: `None` routes via the
            // injector (safe for any thread).
            unsafe {
                mw.post(
                    None,
                    PostedOp::Send {
                        key: key(6),
                        slot: 7u64,
                    },
                    &mut out,
                )
            };
            out
        });
        let mut matches = rank.join().unwrap();
        matches.extend(worker.join().unwrap());
        assert_eq!(matches.len(), 1, "ring/injector match stranded");
        assert_eq!((matches[0].send, matches[0].recv), (7, 40));
        assert_eq!((mb.unmatched_sends(), mb.posted_recvs()), (0, 0));
    });
}

// ---------------------------------------------------------------------
// One-sided window core (`ovcomm_rt::window::WinCore`) — the
// loom-checked half of the RMA path. The harness plays the role of
// `RtWin`: grants are completion cells (the production type is a
// `Request<()>` completed through the shared runtime), completed outside
// the core's mutex exactly as `RtWin::unlock` does.
// ---------------------------------------------------------------------

/// Passive-target lock/unlock handoff: three origins contend for rank 0's
/// lock, each staging one accumulate inside its critical section. Under
/// every schedule the lock is mutually exclusive, no queued grant is ever
/// lost (a lost handoff deadlocks the schedule and fails the model with
/// its seed), and the applied ops sum exactly.
#[test]
fn window_lock_handoff_is_exclusive_and_never_lost() {
    loom::model_with(SCHEDULES, 0x10CC, || {
        let core: Arc<WinCore<Arc<CompletionCell<()>>>> = Arc::new(WinCore::new(3));
        for r in 0..3 {
            core.deposit(r, &Payload::from_f64s(&[0.0]));
        }
        let in_crit = Arc::new(loom::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (1..3u32)
            .map(|me| {
                let core = core.clone();
                let in_crit = in_crit.clone();
                thread::spawn(move || {
                    let grant = Arc::new(CompletionCell::new());
                    if !core.lock_or_queue(0, me, grant.clone()) {
                        grant.wait();
                    }
                    assert_eq!(
                        in_crit.fetch_add(1, Ordering::SeqCst),
                        0,
                        "two origins inside the lock"
                    );
                    core.stage(
                        0,
                        StagedOp {
                            origin: me,
                            seq: 0,
                            offset: 0,
                            acc: true,
                            data: Payload::from_f64s(&[f64::from(me)]),
                        },
                    );
                    in_crit.fetch_sub(1, Ordering::SeqCst);
                    let (_bytes, next) = core.unlock(0, me);
                    // The handoff completes outside the core's mutex,
                    // exactly as `RtWin::unlock` does.
                    if let Some((_rank, g)) = next {
                        g.complete(());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(core.holder(0), None, "lock still held after all unlocks");
        // Each origin's ops were applied at its unlock: 1.0 + 2.0.
        let v = core.snapshot(0, 0, 8).to_f64s();
        assert_eq!(v, vec![3.0], "accumulates lost or double-applied");
    });
}

/// Concurrent fenced accumulate/put determinism: two origins stage against
/// rank 0 in racing threads, then the epoch closes (`apply_target`). The
/// apply order is `(origin, seq)` — so whatever interleaving staged the
/// ops, the committed bytes must come out identical: accumulates sum, and
/// the last-origin put wins the overwritten slot.
#[test]
fn window_concurrent_ops_apply_deterministically() {
    loom::model_with(SCHEDULES, 0xACC0, || {
        let core: Arc<WinCore<Arc<CompletionCell<()>>>> = Arc::new(WinCore::new(3));
        for r in 0..3 {
            core.deposit(r, &Payload::from_f64s(&[0.0, 0.0]));
        }
        let handles: Vec<_> = (1..3u32)
            .map(|me| {
                let core = core.clone();
                thread::spawn(move || {
                    // Slot 0: accumulate (commutes). Slot 1: put (must
                    // resolve by origin order, not schedule order).
                    core.stage(
                        0,
                        StagedOp {
                            origin: me,
                            seq: 0,
                            offset: 0,
                            acc: true,
                            data: Payload::from_f64s(&[f64::from(me)]),
                        },
                    );
                    core.stage(
                        0,
                        StagedOp {
                            origin: me,
                            seq: 1,
                            offset: 8,
                            acc: false,
                            data: Payload::from_f64s(&[10.0 * f64::from(me)]),
                        },
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let bytes = core.apply_target(0);
        assert_eq!(bytes, 32, "four staged ops of 8 bytes each");
        let v = core.snapshot(0, 0, 16).to_f64s();
        // 1.0 + 2.0 accumulated; origin 2's put applies after origin 1's.
        assert_eq!(v, vec![3.0, 20.0], "apply order depended on the schedule");
    });
}

/// Epoch-close atomicity vs gets: a reader snapshots rank 0's segment
/// while the epoch-close applies a two-slot put. The snapshot must be the
/// committed state before or after the whole apply — never a torn,
/// half-applied mix.
#[test]
fn window_snapshot_never_observes_a_half_applied_epoch() {
    loom::model_with(SCHEDULES, 0x5AFE, || {
        let core: Arc<WinCore<Arc<CompletionCell<()>>>> = Arc::new(WinCore::new(2));
        for r in 0..2 {
            core.deposit(r, &Payload::from_f64s(&[0.0, 0.0]));
        }
        core.stage(
            0,
            StagedOp {
                origin: 1,
                seq: 0,
                offset: 0,
                acc: false,
                data: Payload::from_f64s(&[1.0, 1.0]),
            },
        );
        let closer = {
            let core = core.clone();
            thread::spawn(move || {
                core.apply_target(0);
            })
        };
        let v = core.snapshot(0, 0, 16).to_f64s();
        closer.join().unwrap();
        assert!(
            v == vec![0.0, 0.0] || v == vec![1.0, 1.0],
            "torn snapshot: {v:?}"
        );
    });
}

/// Distinct envelopes are fully independent: concurrent traffic on two
/// tags never cross-matches and never deadlocks, whichever side posts
/// first on each.
#[test]
fn disjoint_envelopes_do_not_interfere() {
    loom::model_with(SCHEDULES, 0x5EED, || {
        let rt = Arc::new(MiniRt::new());
        let rta = rt.clone();
        let a = thread::spawn(move || {
            let s = rta.isend(key(1), 111, true);
            let r = rta.irecv(key(2));
            s.wait();
            r.wait()
        });
        let rtb = rt.clone();
        let b = thread::spawn(move || {
            let s = rtb.isend(key(2), 222, false);
            let r = rtb.irecv(key(1));
            s.wait();
            r.wait()
        });
        assert_eq!(a.join().unwrap(), 222);
        assert_eq!(b.join().unwrap(), 111);
        assert!(rt.drained());
    });
}
