//! Wait-blame attribution: fold the critical path into a tree of causes.
//!
//! [`critical_path_dag`](crate::critpath::critical_path_dag) tiles the
//! makespan with segments; this module groups them into a three-level
//! **blame tree** — kernel phase → operation → plan step — with leaf
//! *causes* naming where the time physically went:
//!
//! | cause              | meaning                                          |
//! |--------------------|--------------------------------------------------|
//! | `compute`          | modeled/real local computation and reductions    |
//! | `posting`          | posting sends and nonblocking operations         |
//! | `receiver-posting` | receive-side posting (plan `recv` steps)         |
//! | `link-transfer`    | time explained by message transport (waits the   |
//! |                    | DAG could not redirect further — on the sim this |
//! |                    | is the modeled flow; plan `recv` step bodies)    |
//! | `spin-poll`/`park` | rt only: wait time busy-polling for completion   |
//! |                    | (yield-poll or pure spin, per the configured     |
//! |                    | wait strategy) vs. parked on the condvar (split  |
//! |                    | by the `rt.wait_*_ns` sums)                      |
//! | `rendezvous-stall` | rt only: first-posted side waiting for its peer  |
//! | `progress-delay`   | enabling completion with no traced work behind   |
//! |                    | it (pool scheduling, in-flight delivery)         |
//! | `idle`             | nothing traced anywhere                          |
//! | `slack` / `copy`   | per-round software slack; local copy steps       |
//!
//! Leaf durations sum to the makespan: the segments tile it, and the rt
//! wait split conserves each segment's duration exactly (the last share
//! is computed as a remainder). [`ProfileBlock`] is the serializable
//! record the bench harness embeds next to its `MetricsBlock`.

use std::collections::BTreeMap;

use serde::Serialize;

use ovcomm_simnet::{SimTime, TraceEdge, TraceSpan};

use crate::critpath::{critical_path_dag, rank_of_actor, PathSegment};
use crate::registry::MetricsSnapshot;

/// One node of the blame tree. `dur_us` of an interior node equals the
/// sum of its children; leaves carry the cause name.
#[derive(Debug, Clone, Serialize)]
pub struct BlameNode {
    /// Phase label, operation name, plan-step label, or cause.
    pub name: String,
    /// Microseconds of critical-path time under this node.
    pub dur_us: f64,
    /// Sub-attribution; empty for cause leaves.
    pub children: Vec<BlameNode>,
}

impl BlameNode {
    fn new(name: &str) -> BlameNode {
        BlameNode {
            name: name.to_string(),
            dur_us: 0.0,
            children: Vec::new(),
        }
    }

    fn child(&mut self, name: &str) -> &mut BlameNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(BlameNode::new(name));
        let last = self.children.len() - 1;
        &mut self.children[last]
    }

    /// Sum of leaf durations under this node.
    pub fn leaf_sum_us(&self) -> f64 {
        if self.children.is_empty() {
            self.dur_us
        } else {
            self.children.iter().map(BlameNode::leaf_sum_us).sum()
        }
    }

    /// Visit every leaf, accumulating `cause → total` into `into`.
    fn collect_causes(&self, into: &mut BTreeMap<String, f64>) {
        if self.children.is_empty() {
            *into.entry(self.name.clone()).or_insert(0.0) += self.dur_us;
        } else {
            for c in &self.children {
                c.collect_causes(into);
            }
        }
    }
}

/// One critical-path segment as serialized in a [`ProfileBlock`] —
/// microsecond view of [`PathSegment`].
#[derive(Debug, Clone, Serialize)]
pub struct ProfileSegment {
    /// Actor the segment ran on (`u32::MAX` for idle gaps).
    pub actor: u32,
    /// World rank the actor acts for (identity for rank actors).
    pub rank: u32,
    /// Span category name, or `"gap"`.
    pub kind: String,
    /// Span label (gaps: the gap cause).
    pub label: String,
    /// Segment start, microseconds.
    pub start_us: f64,
    /// Segment length, microseconds.
    pub dur_us: f64,
}

/// Critical-path/blame record for one run — emitted by the bench harness
/// next to its `MetricsBlock`, schema-versioned for the trajectory file.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileBlock {
    /// Schema version of this block (bump on field changes).
    pub schema: u32,
    /// `"sim"` or `"rt"`.
    pub backend: String,
    /// Run length, microseconds.
    pub makespan_us: f64,
    /// DAG critical path, latest segment first; durations tile the
    /// makespan.
    pub critical_path: Vec<ProfileSegment>,
    /// Phase → operation → step → cause attribution of the path.
    pub blame: BlameNode,
    /// Flattened `cause → total microseconds` over all leaves.
    pub causes: BTreeMap<String, f64>,
}

/// Current [`ProfileBlock::schema`].
pub const PROFILE_SCHEMA: u32 = 1;

/// Per-rank wait-breakdown weights harvested from an rt run's metrics
/// (`rt.wait_spin_ns{rank=r}` etc.). All zeros on the simulator, which
/// leaves wait time attributed to `link-transfer`.
struct WaitWeights {
    spin: Vec<f64>,
    park: Vec<f64>,
    stall: Vec<f64>,
}

impl WaitWeights {
    fn from_metrics(metrics: &MetricsSnapshot) -> WaitWeights {
        let sums = |name: &str| -> Vec<f64> {
            let mut v: Vec<f64> = Vec::new();
            let prefix = format!("{name}{{rank=");
            for (key, h) in &metrics.histograms {
                if let Some(rest) = key.strip_prefix(&prefix) {
                    if let Ok(rank) = rest.trim_end_matches('}').parse::<usize>() {
                        if v.len() <= rank {
                            v.resize(rank + 1, 0.0);
                        }
                        v[rank] = h.sum as f64;
                    }
                }
            }
            v
        };
        WaitWeights {
            spin: sums("rt.wait_spin_ns"),
            park: sums("rt.wait_park_ns"),
            stall: sums("rt.rendezvous_stall_ns"),
        }
    }

    fn get(v: &[f64], rank: u32) -> f64 {
        v.get(rank as usize).copied().unwrap_or(0.0)
    }
}

/// Cause leaf (or leaves) for one segment. Wait-like segments on ranks
/// with recorded rt wait weights split proportionally into
/// spin/park/rendezvous-stall, conserving the duration exactly.
fn add_cause_leaves(node: &mut BlameNode, seg: &ProfileSegment, w: &WaitWeights) {
    let d = seg.dur_us;
    let mut leaf = |name: &str, dur: f64| {
        if dur > 0.0 {
            node.child(name).dur_us += dur;
        }
    };
    match seg.kind.as_str() {
        "compute" => leaf("compute", d),
        "post" => leaf("posting", d),
        "gap" => leaf(&seg.label, d), // "progress-delay" or "idle"
        "collstep" => {
            // Plan-step labels are "{algo} s{i} {verb} ..." — the verb
            // names the physical activity.
            let verb = seg.label.split_whitespace().nth(2).unwrap_or("");
            match verb {
                "send" => leaf("posting", d),
                "recv" => leaf("link-transfer", d),
                "reduce" => leaf("compute", d),
                "slack" => leaf("slack", d),
                "copy" => leaf("copy", d),
                _ => leaf("other", d),
            }
        }
        "wait" | "blocking" => {
            let (spin, park, stall) = (
                WaitWeights::get(&w.spin, seg.rank),
                WaitWeights::get(&w.park, seg.rank),
                WaitWeights::get(&w.stall, seg.rank),
            );
            let total = spin + park + stall;
            if total > 0.0 {
                let a = d * spin / total;
                let b = d * park / total;
                // Remainder, not a third ratio: the three shares must sum
                // to `d` exactly for the leaf-sum invariant.
                let c = d - a - b;
                leaf("spin-poll", a);
                leaf("park", b);
                leaf("rendezvous-stall", c);
                // All three shares rounded to zero (d subnormal): keep it.
                if a == 0.0 && b == 0.0 && c == 0.0 && d > 0.0 {
                    leaf("park", d);
                }
            } else {
                leaf("link-transfer", d);
            }
        }
        _ => leaf("other", d),
    }
}

/// Enclosing `Phase` span on the segment's rank (smallest phase covering
/// the segment midpoint), or `"(no phase)"`.
fn phase_of(spans: &[TraceSpan], seg: &PathSegment) -> String {
    if seg.actor == crate::critpath::GAP_ACTOR {
        return "(no phase)".to_string();
    }
    let rank = rank_of_actor(seg.actor);
    let mid = SimTime(seg.start.0 + (seg.end.0 - seg.start.0) / 2);
    spans
        .iter()
        .filter(|s| {
            s.kind == ovcomm_simnet::SpanKind::Phase
                && rank_of_actor(s.actor) == rank
                && s.start <= mid
                && s.end > mid
        })
        .min_by_key(|s| s.end.0 - s.start.0)
        .map(|s| s.label.clone())
        .unwrap_or_else(|| "(no phase)".to_string())
}

/// Operation / step grouping of a segment label. Plan steps
/// (`"{algo} s{i} …"`) group under their algorithm with the step as a
/// child; everything else groups under its own label.
fn op_and_step(seg: &ProfileSegment) -> (String, Option<String>) {
    if seg.kind == "collstep" {
        let mut it = seg.label.splitn(2, ' ');
        let algo = it.next().unwrap_or("collstep").to_string();
        let step = it.next().map(|s| s.to_string());
        (algo, step)
    } else if seg.kind == "gap" {
        (format!("({})", seg.label), None)
    } else {
        (seg.label.clone(), None)
    }
}

/// Build the full [`ProfileBlock`] for one run: extract the DAG critical
/// path and fold it into the blame tree. `backend` is `"sim"` or `"rt"`;
/// rt runs split wait time by their recorded spin/park/stall sums.
pub fn profile(
    spans: &[TraceSpan],
    edges: &[TraceEdge],
    metrics: &MetricsSnapshot,
    makespan: SimTime,
    backend: &str,
) -> ProfileBlock {
    let path = critical_path_dag(spans, edges, makespan);
    let weights = WaitWeights::from_metrics(metrics);
    let mut root = BlameNode::new("run");
    let mut segments = Vec::with_capacity(path.len());
    for seg in &path {
        let out = ProfileSegment {
            actor: seg.actor,
            rank: rank_of_actor(seg.actor),
            kind: seg.kind.clone(),
            label: seg.label.clone(),
            start_us: seg.start_us(),
            dur_us: seg.dur_us(),
        };
        let phase = phase_of(spans, seg);
        let (op, step) = op_and_step(&out);
        let node = root.child(&phase).child(&op);
        let node = match &step {
            Some(s) => node.child(s),
            None => node,
        };
        add_cause_leaves(node, &out, &weights);
        segments.push(out);
    }
    roll_up(&mut root);
    let mut causes = BTreeMap::new();
    root.collect_causes(&mut causes);
    ProfileBlock {
        schema: PROFILE_SCHEMA,
        backend: backend.to_string(),
        makespan_us: makespan.as_nanos() as f64 / 1_000.0,
        critical_path: segments,
        blame: root,
        causes,
    }
}

/// Set every interior node's `dur_us` to the sum of its children.
fn roll_up(node: &mut BlameNode) {
    if node.children.is_empty() {
        return;
    }
    let mut sum = 0.0;
    for c in &mut node.children {
        roll_up(c);
        sum += c.dur_us;
    }
    node.dur_us = sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simnet::SpanKind;

    fn span(actor: u32, kind: SpanKind, label: &str, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            actor,
            kind,
            label: label.to_string(),
            chunk: None,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn leaves_sum_to_makespan_and_phases_group() {
        let spans = vec![
            span(0, SpanKind::Phase, "summa step", 0, 1_000),
            span(0, SpanKind::Compute, "gemm", 0, 600),
            span(0, SpanKind::Wait, "MPI_Wait", 600, 1_000),
        ];
        let b = profile(
            &spans,
            &[],
            &MetricsSnapshot::default(),
            SimTime(1_000),
            "sim",
        );
        assert!((b.blame.leaf_sum_us() - 1.0).abs() < 1e-9);
        assert_eq!(b.blame.children.len(), 1);
        assert_eq!(b.blame.children[0].name, "summa step");
        assert!((b.causes["compute"] - 0.6).abs() < 1e-12);
        assert!((b.causes["link-transfer"] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn collstep_groups_algo_then_step() {
        let spans = vec![span(
            0,
            SpanKind::CollStep,
            "rsag-bcast s3 send 4096B -> 2",
            0,
            500,
        )];
        let b = profile(
            &spans,
            &[],
            &MetricsSnapshot::default(),
            SimTime(500),
            "sim",
        );
        let phase = &b.blame.children[0];
        let op = &phase.children[0];
        assert_eq!(op.name, "rsag-bcast");
        assert_eq!(op.children[0].name, "s3 send 4096B -> 2");
        assert_eq!(op.children[0].children[0].name, "posting");
    }
}
