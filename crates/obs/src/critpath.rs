//! Edge-aware critical-path extraction.
//!
//! [`analyze`](crate::analyze) ships a greedy span-only critical path;
//! this module reconstructs the *happens-before DAG* — per-actor span
//! sequences plus the send→recv and post→wait [`TraceEdge`]s both
//! backends emit — and walks it backward from the makespan. The result is
//! a sequence of [`PathSegment`]s that **exactly partitions** `[0,
//! makespan]`: every nanosecond of the run is attributed to the span (on
//! whatever actor) that was holding the run up at that moment, or to a
//! named gap (`progress-delay` when an enabling completion had no active
//! work behind it, `idle` when nothing anywhere was traced).
//!
//! The walk keeps a *lane* (the actor currently on the critical path):
//!
//! 1. At the cursor, pick the **finest** active span on the lane's rank —
//!    latest start wins, then earliest end, then lowest actor id. Phase
//!    spans are skipped (they envelop the finer spans that explain the
//!    time); zero-length spans can never be active.
//! 2. If that span is wait-like (`Wait`/`BlockingCall`), the time was
//!    spent on whoever *ended* the wait: find the latest edge into this
//!    rank within the span, and redirect to the sending actor's active
//!    span — the classic critical-path lane switch. A redirect that finds
//!    no active remote span becomes a `progress-delay` gap: the enabling
//!    event existed, but nothing traced was running behind it (progress
//!    thread scheduling, message in flight).
//! 3. If the lane has nothing active, fall back to the finest span on any
//!    actor, and to an `idle` gap when the whole machine is quiet.
//!
//! Each step strictly decreases the cursor, so the walk terminates and
//! the partition invariant — segment durations sum to the makespan — holds
//! by construction. The blame layer ([`crate::blame`]) folds these
//! segments into a per-phase/per-op/per-cause tree.

use ovcomm_simnet::{SimTime, SpanKind, TraceEdge, TraceSpan};

/// Operation-agent actor ids carry this tag bit (simmpi's id scheme).
const OP_ACTOR_TAG: u32 = 0x8000_0000;

/// World rank an actor id acts for — inverse of simmpi's `op_actor_id`
/// encoding for operation actors, identity for rank actors.
pub fn rank_of_actor(id: u32) -> u32 {
    if id & OP_ACTOR_TAG != 0 {
        (id & 0x7FFF_FFFF) >> 14
    } else {
        id
    }
}

/// Synthetic actor id for segments not attributable to any actor.
pub const GAP_ACTOR: u32 = u32::MAX;

/// One segment of the DAG critical path. Segments are returned latest
/// first and tile `[0, makespan]` exactly: each segment's `start` is the
/// next segment's `end`.
#[derive(Debug, Clone)]
pub struct PathSegment {
    /// Actor whose span (or whose missing progress) explains the time;
    /// [`GAP_ACTOR`] for fully idle gaps.
    pub actor: u32,
    /// Span category name, or `"gap"`.
    pub kind: String,
    /// Span label; gaps carry `"progress-delay"` or `"idle"`.
    pub label: String,
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive; equals the previous segment's start).
    pub end: SimTime,
}

impl PathSegment {
    /// Segment length in microseconds.
    pub fn dur_us(&self) -> f64 {
        self.end.saturating_since(self.start).as_nanos() as f64 / 1_000.0
    }

    /// Segment start in microseconds.
    pub fn start_us(&self) -> f64 {
        self.start.as_nanos() as f64 / 1_000.0
    }
}

fn wait_like(kind: SpanKind) -> bool {
    matches!(kind, SpanKind::Wait | SpanKind::BlockingCall)
}

/// Active at `cursor`: covers the instant just before it. A zero-length
/// span can never satisfy both bounds, so clamped spans are skipped.
fn active(s: &TraceSpan, cursor: SimTime) -> bool {
    s.kind != SpanKind::Phase && s.start < cursor && s.end >= cursor
}

/// The finest active span at `cursor`, optionally restricted to one rank:
/// latest start, then earliest end, then lowest actor id, then label —
/// innermost nested span first, deterministic on exact ties.
fn finest(spans: &[TraceSpan], cursor: SimTime, rank: Option<u32>) -> Option<&TraceSpan> {
    spans
        .iter()
        .filter(|s| active(s, cursor) && rank.is_none_or(|r| rank_of_actor(s.actor) == r))
        .min_by(|a, b| {
            (std::cmp::Reverse(a.start), a.end, a.actor, &a.label).cmp(&(
                std::cmp::Reverse(b.start),
                b.end,
                b.actor,
                &b.label,
            ))
        })
}

/// The latest enabling edge into `rank` that lands inside `(after,
/// cursor]` — the completion that let this rank's wait make progress.
fn enabling_edge(
    edges: &[TraceEdge],
    rank: u32,
    after: SimTime,
    cursor: SimTime,
) -> Option<&TraceEdge> {
    edges
        .iter()
        .filter(|e| rank_of_actor(e.to_actor) == rank && e.to_time > after && e.to_time <= cursor)
        .max_by_key(|e| (e.to_time, e.from_time, std::cmp::Reverse(e.from_actor)))
}

fn push(
    path: &mut Vec<PathSegment>,
    actor: u32,
    kind: &str,
    label: &str,
    lo: SimTime,
    hi: SimTime,
) {
    debug_assert!(lo < hi, "segments must make progress");
    path.push(PathSegment {
        actor,
        kind: kind.to_string(),
        label: label.to_string(),
        start: lo,
        end: hi,
    });
}

/// Walk the happens-before DAG backward from `makespan`. See the module
/// docs for the algorithm; the guarantee is that the returned segments
/// (latest first) tile `[0, makespan]` exactly.
pub fn critical_path_dag(
    spans: &[TraceSpan],
    edges: &[TraceEdge],
    makespan: SimTime,
) -> Vec<PathSegment> {
    let mut path = Vec::new();
    let mut cursor = makespan;
    let mut lane: Option<u32> = None;
    // Every iteration moves the cursor to a span boundary drawn from a
    // finite set, so this bound is never reached; it guards the invariant
    // against future bugs rather than expected inputs.
    let max_iters = 2 * spans.len() + edges.len() + 8;
    for _ in 0..max_iters {
        if cursor == SimTime(0) {
            break;
        }
        // Prefer the lane we are following; fall back to any actor.
        let pick = lane
            .and_then(|r| finest(spans, cursor, Some(r)))
            .or_else(|| finest(spans, cursor, None));
        let Some(s) = pick else {
            // Nothing active anywhere: idle gap back to the latest span
            // end (or the origin).
            let prev = spans
                .iter()
                .filter(|s| s.kind != SpanKind::Phase && s.end < cursor)
                .map(|s| s.end)
                .max()
                .unwrap_or(SimTime(0));
            push(&mut path, GAP_ACTOR, "gap", "idle", prev, cursor);
            cursor = prev;
            lane = None;
            continue;
        };
        let my_rank = rank_of_actor(s.actor);
        if wait_like(s.kind) {
            if let Some(e) = enabling_edge(edges, my_rank, s.start, cursor) {
                let from_rank = rank_of_actor(e.from_actor);
                // Redirect: what was the enabling side doing when it
                // produced the completion?
                if let Some(rs) = finest(spans, e.from_time.max(SimTime(1)), Some(from_rank)) {
                    if rs.start < cursor {
                        push(
                            &mut path,
                            rs.actor,
                            rs.kind.name(),
                            &rs.label,
                            rs.start,
                            cursor,
                        );
                        cursor = rs.start;
                        lane = Some(rank_of_actor(rs.actor));
                        continue;
                    }
                } else {
                    // The enabling event had no traced work behind it:
                    // progress delay (pool scheduling, in-flight delivery).
                    // Bounded below by the remote side's latest traced
                    // activity and the wait's own start.
                    let remote_prev = spans
                        .iter()
                        .filter(|x| {
                            x.kind != SpanKind::Phase
                                && rank_of_actor(x.actor) == from_rank
                                && x.end < cursor
                        })
                        .map(|x| x.end)
                        .max()
                        .unwrap_or(SimTime(0));
                    let lo = remote_prev.max(s.start);
                    push(&mut path, e.from_actor, "gap", "progress-delay", lo, cursor);
                    cursor = lo;
                    lane = Some(from_rank);
                    continue;
                }
            }
        }
        // Local span explains the time (also the wait fallback when no
        // edge is recorded — e.g. sim waits on modeled link transfers).
        push(&mut path, s.actor, s.kind.name(), &s.label, s.start, cursor);
        cursor = s.start;
        lane = Some(my_rank);
    }
    if cursor > SimTime(0) {
        // Unreachable by construction; keep the tiling invariant anyway.
        push(&mut path, GAP_ACTOR, "gap", "idle", SimTime(0), cursor);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simnet::EdgeKind;

    fn span(actor: u32, kind: SpanKind, label: &str, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            actor,
            kind,
            label: label.to_string(),
            chunk: None,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn tiles_the_makespan() {
        let spans = vec![
            span(0, SpanKind::Compute, "c", 0, 400),
            span(1, SpanKind::Wait, "w", 600, 1_000),
        ];
        let p = critical_path_dag(&spans, &[], SimTime(1_000));
        assert_eq!(p[0].end, SimTime(1_000));
        assert_eq!(p.last().map(|s| s.start), Some(SimTime(0)));
        for w in p.windows(2) {
            assert_eq!(w[0].start, w[1].end, "segments tile without holes");
        }
        let total_ns: u64 = p.iter().map(|s| s.end.0 - s.start.0).sum();
        assert_eq!(total_ns, 1_000);
    }

    #[test]
    fn wait_redirects_through_edge_to_sender() {
        // Rank 1 waits [100, 900]; rank 0 computes [0, 880] and its send
        // lands at 900. The path must blame rank 0's compute, not the wait.
        let spans = vec![
            span(0, SpanKind::Compute, "produce", 0, 880),
            span(1, SpanKind::Wait, "recv-wait", 100, 900),
            span(1, SpanKind::Compute, "consume", 900, 1_000),
        ];
        let edges = vec![TraceEdge {
            kind: EdgeKind::SendRecv,
            from_actor: 0,
            from_time: SimTime(880),
            to_actor: 1,
            to_time: SimTime(900),
        }];
        let p = critical_path_dag(&spans, &edges, SimTime(1_000));
        assert_eq!(p[0].label, "consume");
        assert_eq!(p[1].label, "produce");
        assert_eq!(p[1].actor, 0);
        assert_eq!(p[1].start, SimTime(0));
        assert_eq!(p[1].end, SimTime(900));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn redirect_without_remote_span_is_progress_delay() {
        let spans = vec![
            span(0, SpanKind::Compute, "early", 0, 100),
            span(1, SpanKind::Wait, "w", 100, 1_000),
        ];
        let edges = vec![TraceEdge {
            kind: EdgeKind::PostWait,
            from_actor: 0,
            from_time: SimTime(1_000),
            to_actor: 1,
            to_time: SimTime(1_000),
        }];
        let p = critical_path_dag(&spans, &edges, SimTime(1_000));
        assert_eq!(p[0].label, "progress-delay");
        assert_eq!(p[0].start, SimTime(100));
        assert_eq!(p[0].end, SimTime(1_000));
    }
}
