//! Overlap-efficiency analysis: turn a run's trace spans and network
//! utilization integrals into the numbers behind the paper's figures —
//! how busy the NICs were, how much of that busy time actually overlapped
//! two or more transfers (the paper's central quantity), where each rank's
//! time went (Fig. 6 as numbers), and which spans form the critical path.

use serde::Serialize;

use ovcomm_simnet::{NetStats, SimTime, SpanKind, TraceSpan};

/// Utilization summary for one network resource.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceUtilization {
    /// Resource label, e.g. `"nic_tx/3"`.
    pub resource: String,
    /// Registered capacity, bytes/second.
    pub capacity_bps: f64,
    /// Fraction of the run the resource was moving bytes.
    pub busy_frac: f64,
    /// Fraction of the run the resource carried ≥ 2 concurrent flows.
    pub overlap2_frac: f64,
    /// Total bytes carried.
    pub bytes: f64,
    /// High-water mark of concurrently attached flows.
    pub max_concurrent: u32,
}

/// One rank's time split over the run (the Fig. 6 breakdown as numbers).
#[derive(Debug, Clone, Serialize)]
pub struct RankBreakdown {
    /// World rank.
    pub rank: u32,
    /// Microseconds in modeled local computation.
    pub compute_us: f64,
    /// Microseconds posting nonblocking operations.
    pub post_us: f64,
    /// Microseconds blocked — in `MPI_Wait` or inside blocking collectives.
    pub wait_us: f64,
    /// Microseconds in none of the above (makespan minus the rest,
    /// clamped at zero).
    pub idle_us: f64,
}

/// One segment of the greedy backward critical path.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalSegment {
    /// Actor the segment ran on.
    pub actor: u32,
    /// Span category name.
    pub kind: String,
    /// Span label.
    pub label: String,
    /// Segment start, microseconds.
    pub start_us: f64,
    /// Segment length, microseconds.
    pub dur_us: f64,
}

/// Whole-run overlap-efficiency report.
#[derive(Debug, Clone, Serialize)]
pub struct OverlapReport {
    /// Run length in microseconds.
    pub makespan_us: f64,
    /// Mean over NIC resources of the fraction of the run each was busy.
    pub nic_busy_frac: f64,
    /// Fraction of NIC-busy time that carried ≥ 2 concurrent flows —
    /// the paper's "communications overlapped with other communications".
    pub nic_overlap2_frac: f64,
    /// Largest number of flows ever concurrent on any single NIC resource.
    pub nic_max_concurrent: u32,
    /// Flows that ran to completion.
    pub completed_flows: u64,
    /// Mean per-flow queueing delay (actual minus contention-free duration)
    /// in microseconds.
    pub mean_queue_delay_us: f64,
    /// Largest single-flow queueing delay in microseconds.
    pub max_queue_delay_us: f64,
    /// Share of total rank-time spent blocked in waits (0..1).
    pub wait_time_share: f64,
    /// Per-resource utilization, in registration order.
    pub resources: Vec<ResourceUtilization>,
    /// Per-rank compute/post/wait/idle split.
    pub ranks: Vec<RankBreakdown>,
    /// Greedy backward critical path, latest segment first.
    pub critical_path: Vec<CriticalSegment>,
}

/// Operation-agent actor ids carry this tag bit (simmpi's id scheme);
/// anything below it is a rank agent.
const OP_ACTOR_TAG: u32 = 0x8000_0000;

fn us(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

/// Build an [`OverlapReport`] from a run's spans, network accounting, and
/// makespan. Spans may be empty (tracing off): rank breakdowns and the
/// critical path are then empty, but NIC utilization still reports.
pub fn analyze(spans: &[TraceSpan], net: &NetStats, makespan: SimTime) -> OverlapReport {
    let makespan_secs = makespan.as_nanos() as f64 / 1e9;
    let makespan_us = us(makespan);

    let mut resources = Vec::with_capacity(net.resources.len());
    let mut nic_busy = 0.0;
    let mut nic_overlap2 = 0.0;
    let mut nic_count = 0usize;
    let mut nic_max_concurrent = 0u32;
    for entry in &net.resources {
        let s = entry.stats;
        let frac = |secs: f64| {
            if makespan_secs > 0.0 {
                (secs / makespan_secs).min(1.0)
            } else {
                0.0
            }
        };
        if entry.kind.is_nic() {
            nic_busy += s.busy_secs;
            nic_overlap2 += s.overlap2_secs;
            nic_count += 1;
            nic_max_concurrent = nic_max_concurrent.max(s.max_concurrent);
        }
        resources.push(ResourceUtilization {
            resource: entry.kind.label(),
            capacity_bps: entry.capacity,
            busy_frac: frac(s.busy_secs),
            overlap2_frac: frac(s.overlap2_secs),
            bytes: s.bytes,
            max_concurrent: s.max_concurrent,
        });
    }
    let nic_busy_frac = if nic_count > 0 && makespan_secs > 0.0 {
        (nic_busy / (nic_count as f64 * makespan_secs)).min(1.0)
    } else {
        0.0
    };
    let nic_overlap2_frac = if nic_busy > 0.0 {
        nic_overlap2 / nic_busy
    } else {
        0.0
    };

    let ranks = rank_breakdowns(spans, makespan_us);
    let total_rank_us = makespan_us * ranks.len() as f64;
    let wait_us: f64 = ranks.iter().map(|r| r.wait_us).sum();
    let wait_time_share = if total_rank_us > 0.0 {
        wait_us / total_rank_us
    } else {
        0.0
    };

    OverlapReport {
        makespan_us,
        nic_busy_frac,
        nic_overlap2_frac,
        nic_max_concurrent,
        completed_flows: net.completed_flows,
        mean_queue_delay_us: if net.completed_flows > 0 {
            net.total_queue_delay_secs * 1e6 / net.completed_flows as f64
        } else {
            0.0
        },
        max_queue_delay_us: net.max_queue_delay_secs * 1e6,
        wait_time_share,
        resources,
        ranks,
        critical_path: critical_path(spans, makespan),
    }
}

/// Sum span durations per rank agent by category. Operation-agent spans and
/// `Phase`/`Other` spans (which overlap finer spans by design) are excluded.
fn rank_breakdowns(spans: &[TraceSpan], makespan_us: f64) -> Vec<RankBreakdown> {
    use std::collections::BTreeMap;
    let mut per_rank: BTreeMap<u32, (f64, f64, f64)> = BTreeMap::new();
    for s in spans {
        if s.actor & OP_ACTOR_TAG != 0 {
            continue;
        }
        let d = s.micros();
        let slot = per_rank.entry(s.actor).or_default();
        match s.kind {
            SpanKind::Compute => slot.0 += d,
            SpanKind::Post => slot.1 += d,
            SpanKind::Wait | SpanKind::BlockingCall => slot.2 += d,
            // Per-step collective spans nest inside the blocking-call /
            // op-agent spans that already account for the time — counting
            // them again would double-bill the busy split.
            SpanKind::Phase | SpanKind::CollStep | SpanKind::Other => {}
        }
    }
    per_rank
        .into_iter()
        .map(|(rank, (compute_us, post_us, wait_us))| RankBreakdown {
            rank,
            compute_us,
            post_us,
            wait_us,
            idle_us: (makespan_us - compute_us - post_us - wait_us).max(0.0),
        })
        .collect()
}

/// Greedy backward critical path: starting from the makespan, repeatedly
/// take the span that is active at the current time and started earliest,
/// then jump to its start. Phase spans are skipped (they envelop the finer
/// spans that explain the time). The result is the chain of spans that
/// covers the timeline walking backward — a lower-bound explanation of the
/// run length, latest segment first.
fn critical_path(spans: &[TraceSpan], makespan: SimTime) -> Vec<CriticalSegment> {
    let mut path = Vec::new();
    let mut cursor = makespan;
    // Cap the walk defensively: a chain longer than the span count would
    // mean we failed to make progress.
    for _ in 0..=spans.len() {
        if cursor == SimTime(0) {
            break;
        }
        // Active at `cursor`: start < cursor <= end. Among those, earliest
        // start wins (covers the most time); ties break on actor for
        // determinism.
        let best = spans
            .iter()
            .filter(|s| {
                s.kind != SpanKind::Phase
                    && s.kind != SpanKind::CollStep
                    && s.start < cursor
                    && s.end >= cursor
            })
            .min_by_key(|s| (s.start, s.actor));
        match best {
            Some(s) => {
                path.push(CriticalSegment {
                    actor: s.actor,
                    kind: s.kind.name().to_string(),
                    label: s.label.clone(),
                    start_us: us(s.start),
                    dur_us: us(cursor) - us(s.start),
                });
                cursor = s.start;
            }
            None => {
                // Gap: no span covers `cursor`. Jump to the latest span end
                // at or before it, attributing the gap to idle time.
                let prev_end = spans
                    .iter()
                    .filter(|s| {
                        s.kind != SpanKind::Phase && s.kind != SpanKind::CollStep && s.end < cursor
                    })
                    .map(|s| s.end)
                    .max();
                match prev_end {
                    Some(e) => {
                        path.push(CriticalSegment {
                            actor: u32::MAX,
                            kind: "gap".to_string(),
                            label: "(no span active)".to_string(),
                            start_us: us(e),
                            dur_us: us(cursor) - us(e),
                        });
                        cursor = e;
                    }
                    None => break,
                }
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simnet::{NetStats, ResourceEntry, ResourceKind, ResourceStats};

    fn span(actor: u32, kind: SpanKind, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            actor,
            kind,
            label: kind.name().to_string(),
            chunk: None,
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    fn nic_entry(busy: f64, overlap2: f64, maxc: u32) -> ResourceEntry {
        ResourceEntry {
            kind: ResourceKind::NicTx(0),
            capacity: 1e9,
            stats: ResourceStats {
                busy_secs: busy,
                overlap2_secs: overlap2,
                bytes: 1.0,
                max_concurrent: maxc,
            },
        }
    }

    #[test]
    fn nic_fractions_and_rank_split() {
        let net = NetStats {
            resources: vec![nic_entry(0.5, 0.25, 3)],
            completed_flows: 2,
            total_queue_delay_secs: 0.002,
            max_queue_delay_secs: 0.0015,
        };
        // 1 second makespan; rank 0: 300us compute, 100us post, 200us wait.
        let spans = vec![
            span(0, SpanKind::Compute, 0, 300_000),
            span(0, SpanKind::Post, 300_000, 400_000),
            span(0, SpanKind::Wait, 400_000, 600_000),
            // Op-agent span must not pollute the rank split.
            span(0x8000_0001, SpanKind::Other, 0, 1_000_000),
        ];
        let r = analyze(&spans, &net, SimTime(1_000_000_000));
        assert!((r.nic_busy_frac - 0.5).abs() < 1e-12);
        assert!((r.nic_overlap2_frac - 0.5).abs() < 1e-12);
        assert_eq!(r.nic_max_concurrent, 3);
        assert!((r.mean_queue_delay_us - 1_000.0).abs() < 1e-9);
        assert!((r.max_queue_delay_us - 1_500.0).abs() < 1e-9);
        assert_eq!(r.ranks.len(), 1);
        let rank = &r.ranks[0];
        assert!((rank.compute_us - 300.0).abs() < 1e-9);
        assert!((rank.post_us - 100.0).abs() < 1e-9);
        assert!((rank.wait_us - 200.0).abs() < 1e-9);
        assert!((rank.idle_us - (1_000_000.0 - 600.0)).abs() < 1e-6);
    }

    #[test]
    fn critical_path_walks_backward_over_gaps() {
        // [0,400] on rank 0, gap, [600,1000] on rank 1.
        let spans = vec![
            span(0, SpanKind::Compute, 0, 400),
            span(1, SpanKind::Wait, 600, 1_000),
        ];
        let p = critical_path(&spans, SimTime(1_000));
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].actor, 1);
        assert_eq!(p[1].kind, "gap");
        assert_eq!(p[2].actor, 0);
        let total: f64 = p.iter().map(|s| s.dur_us).sum();
        assert!((total - 1.0).abs() < 1e-12, "path covers the makespan");
    }

    #[test]
    fn empty_inputs_produce_empty_report() {
        let r = analyze(&[], &NetStats::default(), SimTime(0));
        assert_eq!(r.nic_busy_frac, 0.0);
        assert_eq!(r.ranks.len(), 0);
        assert_eq!(r.critical_path.len(), 0);
        assert_eq!(r.wait_time_share, 0.0);
    }
}
