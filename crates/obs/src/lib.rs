//! Observability for the ovcomm stack.
#![warn(missing_docs)]
