//! # ovcomm-obs
//!
//! Observability for the ovcomm stack: a lock-cheap [`registry`] of
//! counters/gauges/virtual-time histograms fed by the simulator layers, an
//! [`analyze`] pass that turns trace spans and network utilization
//! integrals into overlap-efficiency numbers (how much NIC-busy time
//! carried ≥ 2 concurrent flows — the paper's central quantity — plus the
//! Fig.-6 per-rank compute/post/wait/idle split and a critical path), a
//! [`critpath`]/[`blame`] profiling pass that rebuilds the happens-before
//! DAG from spans plus send→recv / post→wait edges and attributes the
//! makespan into a wait-blame tree (the `ProfileBlock` bench records
//! embed), and a [`perfetto`] exporter that writes Chrome trace-event
//! JSON loadable in `ui.perfetto.dev` — optionally with an annotated
//! critical-path track.
//!
//! The crate depends only on `ovcomm-simnet` types; `ovcomm-simmpi` feeds
//! it and the kernel/bench layers consume the reports.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod blame;
pub mod critpath;
pub mod perfetto;
pub mod registry;

pub use analyze::{analyze, CriticalSegment, OverlapReport, RankBreakdown, ResourceUtilization};
pub use blame::{profile, BlameNode, ProfileBlock, ProfileSegment, PROFILE_SCHEMA};
pub use critpath::{critical_path_dag, rank_of_actor, PathSegment, GAP_ACTOR};
pub use perfetto::{
    trace_to_json, trace_to_json_annotated, trace_to_json_with_names, validate_trace_events,
    write_trace, write_trace_annotated,
};
pub use registry::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
