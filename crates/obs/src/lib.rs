//! # ovcomm-obs
//!
//! Observability for the ovcomm stack: a lock-cheap [`registry`] of
//! counters/gauges/virtual-time histograms fed by the simulator layers, an
//! [`analyze`] pass that turns trace spans and network utilization
//! integrals into overlap-efficiency numbers (how much NIC-busy time
//! carried ≥ 2 concurrent flows — the paper's central quantity — plus the
//! Fig.-6 per-rank compute/post/wait/idle split and a critical path), and
//! a [`perfetto`] exporter that writes Chrome trace-event JSON loadable in
//! `ui.perfetto.dev`.
//!
//! The crate depends only on `ovcomm-simnet` types; `ovcomm-simmpi` feeds
//! it and the kernel/bench layers consume the reports.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod perfetto;
pub mod registry;

pub use analyze::{analyze, CriticalSegment, OverlapReport, RankBreakdown, ResourceUtilization};
pub use perfetto::{trace_to_json, trace_to_json_with_names, validate_trace_events, write_trace};
pub use registry::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
