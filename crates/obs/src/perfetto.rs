//! Perfetto / Chrome trace-event JSON export.
//!
//! Serializes a run's [`TraceSpan`]s into the [Trace Event Format] JSON
//! object that `ui.perfetto.dev` (and `chrome://tracing`) load directly:
//! one complete (`"ph":"X"`) event per span with microsecond timestamps,
//! plus `"M"` metadata events naming each actor's track.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::Write;
use std::path::Path;

use serde_json::Value;

use ovcomm_simnet::TraceSpan;

/// Default actor naming: `"rank N"` for plain ids, `"actor 0x…"` for tagged
/// (operation-agent) ids. Layers that know their id scheme pass their own
/// namer to [`trace_to_json_with_names`].
pub fn default_actor_name(actor: u32) -> String {
    if actor & 0x8000_0000 != 0 {
        format!("actor {actor:#x}")
    } else {
        format!("rank {actor}")
    }
}

/// Build the trace-event JSON object for `spans` with default track names.
pub fn trace_to_json(spans: &[TraceSpan]) -> Value {
    trace_to_json_with_names(spans, default_actor_name)
}

/// Build the trace-event JSON object for `spans`, naming each actor's track
/// via `name_of`.
pub fn trace_to_json_with_names(spans: &[TraceSpan], name_of: impl Fn(u32) -> String) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 16);

    // Rank threads record spans under a lock, so the recording order can
    // vary with OS scheduling even when the spans themselves are fully
    // deterministic. Sort by virtual-time content so the exported JSON is
    // byte-identical across runs of the same seeded simulation.
    let mut spans: Vec<&TraceSpan> = spans.iter().collect();
    spans.sort_by(|a, b| {
        (a.start, a.actor, a.end, a.kind.name(), &a.label, a.chunk).cmp(&(
            b.start,
            b.actor,
            b.end,
            b.kind.name(),
            &b.label,
            b.chunk,
        ))
    });

    // Metadata: one thread_name event per distinct actor, in actor order,
    // so tracks are stable across runs.
    let mut actors: Vec<u32> = spans.iter().map(|s| s.actor).collect();
    actors.sort_unstable();
    actors.dedup();
    for &actor in &actors {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str("thread_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(actor as u64)),
            (
                "args".to_string(),
                Value::Object(vec![("name".to_string(), Value::Str(name_of(actor)))]),
            ),
        ]));
    }

    for s in spans {
        let mut args: Vec<(String, Value)> = Vec::new();
        if let Some(c) = s.chunk {
            args.push(("chunk".to_string(), Value::UInt(c as u64)));
        }
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str(s.label.clone())),
            ("cat".to_string(), Value::Str(s.kind.name().to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            (
                "ts".to_string(),
                Value::Float(s.start.as_nanos() as f64 / 1_000.0),
            ),
            ("dur".to_string(), Value::Float(s.micros())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(s.actor as u64)),
            ("args".to_string(), Value::Object(args)),
        ]));
    }

    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ])
}

/// Write the trace-event JSON for `spans` to `path`.
pub fn write_trace(
    path: &Path,
    spans: &[TraceSpan],
    name_of: impl Fn(u32) -> String,
) -> std::io::Result<()> {
    write_json_file(path, &trace_to_json_with_names(spans, name_of))
}

/// Synthetic `tid` of the annotated critical-path track (no real actor id
/// reaches `u32::MAX`).
const CRITPATH_TID: u64 = u32::MAX as u64;

/// Build trace-event JSON for `spans` plus one synthetic **critical
/// path** track: each [`PathSegment`](crate::critpath::PathSegment)
/// becomes a complete event on its own thread row, so loading the file in
/// `ui.perfetto.dev` shows the blame chain directly above the per-actor
/// timelines. Segment events carry the owning actor and segment kind in
/// `args`.
pub fn trace_to_json_annotated(
    spans: &[TraceSpan],
    name_of: impl Fn(u32) -> String,
    critpath: &[crate::critpath::PathSegment],
) -> Value {
    let mut v = trace_to_json_with_names(spans, name_of);
    let Value::Object(fields) = &mut v else {
        return v;
    };
    let Some((_, Value::Array(events))) = fields.iter_mut().find(|(k, _)| k == "traceEvents")
    else {
        return v;
    };
    events.push(Value::Object(vec![
        ("name".to_string(), Value::Str("thread_name".to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(CRITPATH_TID)),
        (
            "args".to_string(),
            Value::Object(vec![(
                "name".to_string(),
                Value::Str("critical path".to_string()),
            )]),
        ),
    ]));
    for seg in critpath {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str(seg.label.clone())),
            ("cat".to_string(), Value::Str("critpath".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Float(seg.start_us())),
            ("dur".to_string(), Value::Float(seg.dur_us())),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(CRITPATH_TID)),
            (
                "args".to_string(),
                Value::Object(vec![
                    ("actor".to_string(), Value::UInt(seg.actor as u64)),
                    ("kind".to_string(), Value::Str(seg.kind.clone())),
                ]),
            ),
        ]));
    }
    v
}

/// Write the annotated (critical-path-track) trace-event JSON to `path`.
pub fn write_trace_annotated(
    path: &Path,
    spans: &[TraceSpan],
    name_of: impl Fn(u32) -> String,
    critpath: &[crate::critpath::PathSegment],
) -> std::io::Result<()> {
    write_json_file(path, &trace_to_json_annotated(spans, name_of, critpath))
}

fn write_json_file(path: &Path, v: &Value) -> std::io::Result<()> {
    let json = serde_json::to_string(v)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// Validate that `v` is a well-formed trace-event object: a `traceEvents`
/// array whose entries each carry the fields their phase requires (`"X"`
/// events need name/cat/ts/dur/pid/tid with non-negative durations; `"M"`
/// events need name/pid/tid). Returns the first violation found.
pub fn validate_trace_events(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let e = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |name: &str| {
            e.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing {name}"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i} ph not a string"))?;
        match ph {
            "X" => {
                field("name")?
                    .as_str()
                    .ok_or_else(|| format!("event {i} name not a string"))?;
                field("cat")?
                    .as_str()
                    .ok_or_else(|| format!("event {i} cat not a string"))?;
                let ts = field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i} ts not a number"))?;
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i} dur not a number"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i} ts invalid: {ts}"));
                }
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} dur invalid: {dur}"));
                }
                field("pid")?;
                field("tid")?;
            }
            "M" => {
                field("name")?;
                field("pid")?;
                field("tid")?;
            }
            other => return Err(format!("event {i} has unsupported phase {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_simnet::{SimTime, SpanKind};

    fn spans() -> Vec<TraceSpan> {
        vec![
            TraceSpan {
                actor: 0,
                kind: SpanKind::Post,
                label: "MPI_Ibcast post".into(),
                chunk: Some(3),
                start: SimTime(1_000),
                end: SimTime(2_500),
            },
            TraceSpan {
                actor: 1,
                kind: SpanKind::Wait,
                label: "MPI_Wait".into(),
                chunk: None,
                start: SimTime(2_500),
                end: SimTime(9_000),
            },
        ]
    }

    #[test]
    fn export_is_valid_and_carries_chunks() {
        let v = trace_to_json(&spans());
        validate_trace_events(&v).expect("valid trace-event JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + 2 span events.
        assert_eq!(events.len(), 4);
        let post = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("MPI_Ibcast post"))
            .unwrap();
        assert_eq!(post.get("cat").and_then(Value::as_str), Some("post"));
        assert_eq!(
            post.get("args")
                .unwrap()
                .get("chunk")
                .and_then(Value::as_u64),
            Some(3)
        );
        assert!((post.get("ts").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-12);
        assert!((post.get("dur").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn export_roundtrips_through_parser() {
        let v = trace_to_json(&spans());
        let text = serde_json::to_string(&v).unwrap();
        let back = serde_json::from_str(&text).expect("parses");
        validate_trace_events(&back).expect("still valid after roundtrip");
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(validate_trace_events(&Value::Null).is_err());
        let missing_dur = serde_json::from_str(
            r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","ts":1.0,"pid":0,"tid":0}]}"#,
        )
        .unwrap();
        let err = validate_trace_events(&missing_dur).unwrap_err();
        assert!(err.contains("missing dur"), "{err}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let v = trace_to_json(&[]);
        validate_trace_events(&v).expect("empty trace still valid");
    }
}
