//! A lock-cheap metrics registry.
//!
//! Registration (naming a metric, attaching labels) takes a mutex once and
//! hands back a handle backed by atomics; the hot path — incrementing a
//! counter from inside an MPI call, recording a virtual-time duration —
//! touches only those atomics. Snapshots walk the registry under the lock
//! and produce a plain, serializable, deterministically ordered value.
//!
//! Metric identity is `name{k=v,…}` with labels sorted by key, so equal
//! registrations from different call sites share one instrument.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// Number of power-of-two histogram buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter (bytes, calls, …).
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An instantaneous level with a high-water mark (e.g. progress-pool
/// occupancy, in-flight operations).
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    high_water: Arc<AtomicU64>,
}

impl Gauge {
    /// Raise the level by one and update the high-water mark.
    pub fn inc(&self) {
        let v = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Lower the level by one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set the level to an absolute value and update the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// A histogram of `u64` samples (virtual-time durations in nanoseconds)
/// with power-of-two buckets plus count/sum/min/max.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Bucket index for a sample: 0 holds zero, bucket `i` holds samples whose
/// highest set bit is `i - 1` (i.e. `[2^(i-1), 2^i)`).
fn bucket_of(sample: u64) -> usize {
    (u64::BITS - sample.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, sample: u64) {
        let h = &self.inner;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(sample, Ordering::Relaxed);
        h.min.fetch_min(sample, Ordering::Relaxed);
        h.max.fetch_max(sample, Ordering::Relaxed);
        h.buckets[bucket_of(sample)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: metric identity → instrument storage.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Instrument>>,
}

/// Canonical metric identity: `name{k=v,…}` with labels sorted by key, or
/// bare `name` when there are none.
pub fn metric_key(name: &str, labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, String)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let body: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Lock the instrument table, recovering from poisoning: metrics are
    /// monotone counters, so state left by a panicking writer is still
    /// valid to read and extend.
    fn table(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> Counter {
        let key = metric_key(name, labels);
        let mut m = self.table();
        match m.entry(key.clone()).or_insert_with(|| {
            Instrument::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> Gauge {
        let key = metric_key(name, labels);
        let mut m = self.table();
        match m.entry(key.clone()).or_insert_with(|| {
            Instrument::Gauge(Gauge {
                value: Arc::new(AtomicU64::new(0)),
                high_water: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, String)]) -> Histogram {
        let key = metric_key(name, labels);
        let mut m = self.table();
        match m.entry(key.clone()).or_insert_with(|| {
            Instrument::Histogram(Histogram {
                inner: Arc::new(HistogramInner {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                }),
            })
        }) {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {key} already registered with a different type"),
        }
    }

    /// Snapshot every instrument into a plain, ordered, serializable value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.table();
        let mut snap = MetricsSnapshot::default();
        for (key, inst) in m.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.insert(key.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    snap.gauges.insert(
                        key.clone(),
                        GaugeSnapshot {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                    );
                }
                Instrument::Histogram(h) => {
                    let inner = &h.inner;
                    let count = inner.count.load(Ordering::Relaxed);
                    snap.histograms.insert(
                        key.clone(),
                        HistogramSnapshot {
                            count,
                            sum: inner.sum.load(Ordering::Relaxed),
                            min: if count == 0 {
                                0
                            } else {
                                inner.min.load(Ordering::Relaxed)
                            },
                            max: inner.max.load(Ordering::Relaxed),
                            buckets: inner
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                        },
                    );
                }
            }
        }
        snap
    }
}

/// Point-in-time value of a gauge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: u64,
    /// Highest level ever observed.
    pub high_water: u64,
}

/// Point-in-time contents of a histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two bucket counts; bucket 0 holds zero-valued samples,
    /// bucket `i` holds samples in `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

/// Everything in the registry at one instant, deterministically ordered by
/// metric key.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by metric key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric key.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram contents by metric key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("bytes", &[("rank", "0".into()), ("op", "ibcast".into())]);
        // Same name + same labels (any order) → same instrument.
        let b = reg.counter("bytes", &[("op", "ibcast".into()), ("rank", "0".into())]);
        a.add(10);
        b.add(5);
        assert_eq!(a.get(), 15);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["bytes{op=ibcast,rank=0}"], 15);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("occupancy", &[]);
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 2);
        g.set(7);
        g.set(1);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["occupancy"].value, 1);
        assert_eq!(snap.gauges["occupancy"].high_water, 7);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait_ns", &[("rank", "1".into())]);
        h.record(0);
        h.record(1);
        h.record(1024);
        h.record(1500);
        let snap = reg.snapshot();
        let hs = &snap.histograms["wait_ns{rank=1}"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 2525);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1500);
        assert_eq!(hs.buckets[0], 1); // the zero
        assert_eq!(hs.buckets[1], 1); // 1 ∈ [1,2)
        assert_eq!(hs.buckets[11], 2); // 1024, 1500 ∈ [1024,2048)
        assert_eq!(hs.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let reg = MetricsRegistry::new();
        reg.histogram("empty", &[]);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["empty"].min, 0);
        assert_eq!(snap.histograms["empty"].count, 0);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }
}
