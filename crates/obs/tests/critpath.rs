//! Critical-path extraction and blame-tree invariants.
//!
//! The hand-computed cases pin exact walk behavior (edge redirects, tie
//! breaking, zero-duration spans); the property test holds the structural
//! guarantee — segments tile `[0, makespan]` and blame leaves sum to it —
//! over arbitrary span/edge soups, including inconsistent ones no real
//! backend would emit.

use proptest::prelude::*;

use ovcomm_obs::registry::MetricsSnapshot;
use ovcomm_obs::{critical_path_dag, profile, GAP_ACTOR};
use ovcomm_simnet::{EdgeKind, SimTime, SpanKind, TraceEdge, TraceSpan};

fn span(actor: u32, kind: SpanKind, label: &str, start: u64, end: u64) -> TraceSpan {
    TraceSpan {
        actor,
        kind,
        label: label.to_string(),
        chunk: None,
        start: SimTime(start),
        end: SimTime(end),
    }
}

/// Hand-computed DAG: rank 1 waits on a message rank 0 produced; the walk
/// must hop the send→recv edge and land on rank 0's posting span, then
/// its compute — and skip the zero-duration span at t=400.
#[test]
fn hand_computed_path_with_edge_redirect_and_zero_span() {
    let spans = vec![
        span(0, SpanKind::Compute, "a", 0, 300),
        span(0, SpanKind::Post, "p", 300, 400),
        span(0, SpanKind::Other, "z", 400, 400), // zero-duration: never active
        span(1, SpanKind::Wait, "w", 100, 1_000),
        span(1, SpanKind::Compute, "tail", 1_000, 1_200),
    ];
    let edges = vec![TraceEdge {
        kind: EdgeKind::SendRecv,
        from_actor: 0,
        from_time: SimTime(400),
        to_actor: 1,
        to_time: SimTime(1_000),
    }];
    let p = critical_path_dag(&spans, &edges, SimTime(1_200));
    let got: Vec<(&str, u64, u64)> = p
        .iter()
        .map(|s| (s.label.as_str(), s.start.0, s.end.0))
        .collect();
    assert_eq!(
        got,
        vec![
            ("tail", 1_000, 1_200),
            ("p", 300, 1_000), // redirect through the edge: the wait is rank 0's fault
            ("a", 0, 300),
        ]
    );
    assert!(p.iter().all(|s| s.label != "z"), "zero span stays off path");
}

/// Exact tie (same start, same end, different actors): the walk picks the
/// lowest actor id, deterministically.
#[test]
fn exact_tie_breaks_to_lowest_actor() {
    let spans = vec![
        span(3, SpanKind::Compute, "high", 0, 500),
        span(2, SpanKind::Compute, "low", 0, 500),
    ];
    let p = critical_path_dag(&spans, &[], SimTime(500));
    assert_eq!(p.len(), 1);
    assert_eq!(p[0].actor, 2);
    assert_eq!(p[0].label, "low");
}

/// A makespan beyond every span end starts with an idle gap.
#[test]
fn trailing_idle_gap_reaches_makespan() {
    let spans = vec![span(0, SpanKind::Compute, "c", 0, 400)];
    let p = critical_path_dag(&spans, &[], SimTime(1_000));
    assert_eq!(p[0].label, "idle");
    assert_eq!(p[0].actor, GAP_ACTOR);
    assert_eq!((p[0].start, p[0].end), (SimTime(400), SimTime(1_000)));
    assert_eq!(p[1].label, "c");
}

/// Empty trace: the whole makespan is one idle gap; zero makespan: empty.
#[test]
fn degenerate_inputs() {
    let p = critical_path_dag(&[], &[], SimTime(700));
    assert_eq!(p.len(), 1);
    assert_eq!((p[0].start, p[0].end), (SimTime(0), SimTime(700)));
    assert!(critical_path_dag(&[], &[], SimTime(0)).is_empty());
}

#[derive(Debug, Clone)]
struct Soup {
    spans: Vec<TraceSpan>,
    edges: Vec<TraceEdge>,
    makespan: u64,
}

fn soup() -> impl Strategy<Value = Soup> {
    let kinds = vec![
        SpanKind::Compute,
        SpanKind::Post,
        SpanKind::Wait,
        SpanKind::BlockingCall,
        SpanKind::CollStep,
        SpanKind::Phase,
        SpanKind::Other,
    ];
    let one_span = (
        0u32..4,
        prop::sample::select(kinds),
        0u64..5_000,
        0u64..2_000,
    )
        .prop_map(|(actor, kind, start, len)| span(actor, kind, "s", start, start + len));
    let one_edge = (0u32..4, 0u64..6_000, 0u32..4, 0u64..6_000).prop_map(
        |(from_actor, from_time, to_actor, to_time)| TraceEdge {
            kind: EdgeKind::SendRecv,
            from_actor,
            from_time: SimTime(from_time),
            to_actor,
            to_time: SimTime(to_time),
        },
    );
    (
        prop::collection::vec(one_span, 1..24),
        prop::collection::vec(one_edge, 0..8),
        0u64..1_000,
    )
        .prop_map(|(spans, edges, extra)| {
            let latest = spans.iter().map(|s| s.end.0).max().unwrap_or(0);
            Soup {
                spans,
                edges,
                makespan: latest + extra,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural invariant: for ANY span/edge soup the path tiles
    /// `[0, makespan]` contiguously and the blame tree's leaves sum to
    /// the makespan.
    #[test]
    fn path_tiles_and_blame_conserves(s in soup()) {
        let makespan = SimTime(s.makespan);
        let p = critical_path_dag(&s.spans, &s.edges, makespan);
        let mut expect_end = makespan;
        for seg in &p {
            prop_assert_eq!(seg.end, expect_end, "contiguous tiling");
            prop_assert!(seg.start < seg.end, "segments have positive length");
            expect_end = seg.start;
        }
        prop_assert_eq!(expect_end, SimTime(0), "path reaches the origin");
        let total: u64 = p.iter().map(|seg| seg.end.0 - seg.start.0).sum();
        prop_assert_eq!(total, s.makespan);

        let b = profile(&s.spans, &s.edges, &MetricsSnapshot::default(), makespan, "sim");
        let makespan_us = s.makespan as f64 / 1_000.0;
        prop_assert!(
            (b.blame.leaf_sum_us() - makespan_us).abs() <= 1e-9 * makespan_us.max(1.0),
            "blame leaves sum {} != makespan {}", b.blame.leaf_sum_us(), makespan_us
        );
        let cause_total: f64 = b.causes.values().sum();
        prop_assert!((cause_total - makespan_us).abs() <= 1e-9 * makespan_us.max(1.0));
    }
}
