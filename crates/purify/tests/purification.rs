//! Purification end-to-end: convergence to the exact spectral projector on
//! every kernel variant, and timing-faithful phantom runs.

use ovcomm_densemat::{exact_density, fock_like_spectrum, gemm, BlockGrid, Matrix};
use ovcomm_purify::{purify_rank, KernelChoice, PurifyConfig};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn purify_real(
    n: usize,
    nocc: usize,
    nranks: usize,
    choice: KernelChoice,
    seed: u64,
) -> (Matrix, usize, bool) {
    let cfg = PurifyConfig {
        n,
        nocc,
        tol: 1e-9,
        max_iter: 100,
        phantom: false,
        seed,
    };
    let out = run(
        SimConfig::natural(nranks, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let res = purify_rank(&rc, &cfg, choice);
            let block = res.d_block.map(|b| b.unwrap_real().clone().into_vec());
            (res.iterations, res.converged, block, rc.rank())
        },
    )
    .unwrap_or_else(|e| panic!("purify {choice:?}: {e}"));

    // Assemble D from plane-0 blocks. Plane 0 = the first p² (or q²) ranks
    // in both mesh layouts.
    let p = match choice {
        KernelChoice::TwoFiveD { c, .. } => ((nranks / c) as f64).sqrt().round() as usize,
        _ => (nranks as f64).cbrt().round() as usize,
    };
    let grid = BlockGrid::new(n, p);
    let mut blocks = vec![Matrix::zeros(0, 0); p * p];
    let mut iterations = 0;
    let mut converged = false;
    for (iters, conv, block, rank) in out.results {
        if let Some(v) = block {
            let (i, j) = (rank / p, rank % p);
            let (r, c) = grid.block_dims(i, j);
            blocks[i * p + j] = Matrix::from_vec(r, c, v);
            iterations = iters;
            converged = conv;
        }
    }
    (grid.assemble(&blocks), iterations, converged)
}

fn check_converges(n: usize, nocc: usize, nranks: usize, choice: KernelChoice) {
    let seed = 42;
    let (d, iters, converged) = purify_real(n, nocc, nranks, choice, seed);
    assert!(
        converged,
        "{choice:?} did not converge in {iters} iterations"
    );
    // D must be an idempotent projector with trace nocc...
    let d2 = gemm(&d, &d);
    assert!(
        d2.max_abs_diff(&d) < 1e-5,
        "{choice:?}: idempotency error {}",
        d2.max_abs_diff(&d)
    );
    assert!(
        (d.trace() - nocc as f64).abs() < 1e-5,
        "{choice:?}: trace {} != {nocc}",
        d.trace()
    );
    // ...and equal to the exact density matrix built from the same
    // eigenbasis.
    let eigs = fock_like_spectrum(n, nocc);
    let exact = exact_density(&eigs, nocc, seed);
    assert!(
        d.max_abs_diff(&exact) < 1e-4,
        "{choice:?}: distance to exact projector {}",
        d.max_abs_diff(&exact)
    );
}

#[test]
fn purification_converges_with_baseline_kernel() {
    check_converges(24, 8, 8, KernelChoice::Baseline);
}

#[test]
fn purification_converges_with_original_kernel() {
    check_converges(24, 8, 8, KernelChoice::Original);
}

#[test]
fn purification_converges_with_optimized_kernel() {
    check_converges(24, 8, 8, KernelChoice::Optimized { n_dup: 3 });
    check_converges(21, 7, 27, KernelChoice::Optimized { n_dup: 2 });
}

#[test]
fn purification_converges_with_25d_kernel() {
    check_converges(24, 8, 8, KernelChoice::TwoFiveD { c: 2, n_dup: 2 });
    check_converges(24, 8, 16, KernelChoice::TwoFiveD { c: 1, n_dup: 1 });
}

#[test]
fn all_kernels_produce_the_same_density() {
    let a = purify_real(20, 6, 8, KernelChoice::Baseline, 7).0;
    let b = purify_real(20, 6, 8, KernelChoice::Optimized { n_dup: 4 }, 7).0;
    let c = purify_real(20, 6, 8, KernelChoice::TwoFiveD { c: 2, n_dup: 2 }, 7).0;
    assert!(a.max_abs_diff(&b) < 1e-9, "optimized differs from baseline");
    assert!(a.max_abs_diff(&c) < 1e-9, "2.5D differs from baseline");
}

#[test]
fn phantom_run_executes_fixed_iterations_with_timing() {
    let cfg = PurifyConfig {
        n: 512,
        nocc: 100,
        tol: 1e-9,
        max_iter: 5,
        phantom: true,
        seed: 1,
    };
    let out = run(
        SimConfig::natural(8, 2, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let res = purify_rank(&rc, &cfg, KernelChoice::Optimized { n_dup: 2 });
            (
                res.iterations,
                res.kernel_time.as_nanos(),
                res.total_time.as_nanos(),
            )
        },
    )
    .unwrap();
    for (iters, ktime, ttime) in &out.results {
        assert_eq!(*iters, 5);
        assert!(*ktime > 0);
        assert!(ttime >= ktime);
    }
}

#[test]
fn initial_iterate_has_correct_trace_and_bounds() {
    let eigs = fock_like_spectrum(30, 10);
    let h = ovcomm_densemat::symmetric_with_spectrum(&eigs, 3);
    let d0 = ovcomm_purify::initial_iterate(&h, 10);
    assert!((d0.trace() - 10.0).abs() < 1e-9, "trace {}", d0.trace());
    assert!(d0.is_symmetric(1e-9));
}

#[test]
fn kernel_flops_metric_is_sane() {
    let cfg = PurifyConfig {
        n: 24,
        nocc: 8,
        tol: 1e-9,
        max_iter: 30,
        phantom: false,
        seed: 5,
    };
    let out = run(
        SimConfig::natural(8, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let res = purify_rank(&rc, &cfg, KernelChoice::Baseline);
            res.kernel_flops_per_sec(24)
        },
    )
    .unwrap();
    for f in &out.results {
        assert!(f.is_finite() && *f > 0.0);
    }
}

#[test]
fn staged_scf_purifies_on_a_per_node_subset() {
    use ovcomm_core::StagePlan;
    use ovcomm_purify::{scf_staged, ScfConfig};
    use ovcomm_simnet::SimDur;

    // 16 ranks at 4 PPN (4 nodes); purification uses 2 per node = 8 ranks
    // forming a 2x2x2 mesh while the other 8 sleep.
    let cfg = ScfConfig {
        purify: PurifyConfig {
            n: 24,
            nocc: 8,
            tol: 1e-9,
            max_iter: 50,
            phantom: false,
            seed: 42,
        },
        plan: StagePlan::per_node(2, 4),
        fock_time: SimDur::from_millis(5),
        scf_iterations: 2,
    };
    let out = run(
        SimConfig::natural(16, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let res = scf_staged(&rc, &cfg, KernelChoice::Optimized { n_dup: 2 });
            (res.kernel_calls, res.polls, res.total_time.as_nanos())
        },
    )
    .unwrap();
    // Active ranks (local index 0,1 of each node) did kernel work, no polls;
    // sleepers did the opposite.
    for r in 0..16 {
        let (calls, polls, _) = out.results[r];
        if r % 4 < 2 {
            assert!(calls > 0, "active rank {r} must run the kernel");
            assert_eq!(polls, 0);
        } else {
            assert_eq!(calls, 0, "sleeper {r} must not run the kernel");
            assert!(polls > 0, "sleeper {r} must have polled");
        }
    }
    // Everyone finishes the same virtual run (two barriers per SCF iter).
    let t0 = out.results[0].2;
    for r in 1..16 {
        assert!(
            (out.results[r].2 as i64 - t0 as i64).unsigned_abs() < 20_000_000,
            "rank {r} finished far from rank 0"
        );
    }
}

#[test]
fn mcweeny_purification_converges_with_known_mu() {
    use ovcomm_purify::mcweeny_rank;
    // The synthetic spectrum has its gap between -2 (top of the occupied
    // band) and 0 (bottom of the virtual band): mu = -1 splits it.
    let n = 24;
    let nocc = 8;
    let seed = 42;
    let cfg = PurifyConfig {
        n,
        nocc,
        tol: 1e-10,
        max_iter: 80,
        phantom: false,
        seed,
    };
    let out = run(
        SimConfig::natural(8, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let res = mcweeny_rank(&rc, &cfg, -1.0, KernelChoice::Optimized { n_dup: 2 });
            (
                res.converged,
                res.d_block.map(|b| b.unwrap_real().clone().into_vec()),
                rc.rank(),
            )
        },
    )
    .unwrap();
    let p = 2;
    let grid = BlockGrid::new(n, p);
    let mut blocks = vec![Matrix::zeros(0, 0); p * p];
    for (conv, block, rank) in out.results {
        if let Some(v) = block {
            assert!(conv, "McWeeny must converge");
            let (i, j) = (rank / p, rank % p);
            let (r, c) = grid.block_dims(i, j);
            blocks[i * p + j] = Matrix::from_vec(r, c, v);
        }
    }
    let d = grid.assemble(&blocks);
    // Same projector as canonical purification (and the exact density).
    let exact = exact_density(&fock_like_spectrum(n, nocc), nocc, seed);
    assert!(
        d.max_abs_diff(&exact) < 1e-6,
        "McWeeny projector differs from exact: {}",
        d.max_abs_diff(&exact)
    );
    assert!((d.trace() - nocc as f64).abs() < 1e-6);
}
