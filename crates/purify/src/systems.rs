//! Synthetic molecular systems.
//!
//! The paper evaluates on Fock matrices of three protein fragments
//! (1hsg_45/60/70) whose details it calls "immaterial to this paper except
//! for the dimension of the density matrices" (§V-A). We keep the names and
//! dimensions and substitute synthetic symmetric matrices with a
//! gapped occupied/virtual spectrum, which is what canonical purification
//! needs to converge.

/// A named test system: matrix dimension and occupied-orbital count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MolecularSystem {
    /// System name (as in the paper's tables).
    pub name: &'static str,
    /// Density/Fock matrix dimension N.
    pub dimension: usize,
    /// Number of occupied orbitals (trace of the density matrix).
    pub nocc: usize,
}

/// The paper's three systems (Table I). Occupation counts are synthetic
/// (≈ N/5, a typical basis-to-electron ratio) — only the dimension matters
/// for communication behaviour.
pub const PAPER_SYSTEMS: [MolecularSystem; 3] = [
    MolecularSystem {
        name: "1hsg_45",
        dimension: 5330,
        nocc: 1066,
    },
    MolecularSystem {
        name: "1hsg_60",
        dimension: 6895,
        nocc: 1379,
    },
    MolecularSystem {
        name: "1hsg_70",
        dimension: 7645,
        nocc: 1529,
    },
];

/// Look up a paper system by name.
pub fn paper_system(name: &str) -> Option<MolecularSystem> {
    PAPER_SYSTEMS.iter().copied().find(|s| s.name == name)
}

/// A scaled-down system for real-arithmetic runs (tests/examples).
pub fn small_system(dimension: usize, nocc: usize) -> MolecularSystem {
    assert!(nocc <= dimension);
    MolecularSystem {
        name: "synthetic",
        dimension,
        nocc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_match_table1() {
        assert_eq!(paper_system("1hsg_45").unwrap().dimension, 5330);
        assert_eq!(paper_system("1hsg_60").unwrap().dimension, 6895);
        assert_eq!(paper_system("1hsg_70").unwrap().dimension, 7645);
        assert!(paper_system("nonesuch").is_none());
    }
}
