//! # ovcomm-purify
//!
//! Density matrix purification — the application whose bottleneck kernel
//! (SymmSquareCube) the paper optimizes. Implements canonical purification
//! (Palser & Manolopoulos) over the distributed kernels, with the paper's
//! molecular systems replaced by synthetic symmetric matrices of the same
//! dimensions.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod canonical;
pub mod mcweeny;
pub mod staged;
pub mod systems;

pub use canonical::{
    initial_iterate, purify_rank, purify_rank_on, KernelChoice, PurifyConfig, PurifyResult,
};
pub use mcweeny::{mcweeny_initial, mcweeny_rank};
pub use staged::{scf_staged, ScfConfig, ScfResult};
pub use systems::{paper_system, small_system, MolecularSystem, PAPER_SYSTEMS};
