//! Per-kernel PPN selection inside an SCF-like application (§III-B).
//!
//! The paper modified GTFock "to allow the user to separately choose the
//! number of MPI processes for Fock matrix construction and for density
//! matrix purification": all launched processes work on the Fock stage,
//! then only the chosen subset runs purification while the rest sleep-poll
//! an `MPI_Ibarrier`. This module is that mechanism, end to end.

// Purification drivers are invariant-dense: `expect`/`unwrap` here assert
// plane/root-only payload delivery and staged-communicator membership
// guaranteed by the surrounding protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{run_stage, Communicator, RankHandle, StagePlan};
use ovcomm_simnet::{SimDur, SimTime};

use crate::canonical::{purify_rank_on, KernelChoice, PurifyConfig};

/// Configuration of a staged SCF-like run.
#[derive(Debug, Clone)]
pub struct ScfConfig {
    /// Purification parameters (matrix size, iterations, phantom…).
    pub purify: PurifyConfig,
    /// Which ranks are active during purification.
    pub plan: StagePlan,
    /// Modeled duration of the Fock-construction stage (all ranks).
    pub fock_time: SimDur,
    /// Number of SCF iterations (Fock stage + purification stage each).
    pub scf_iterations: usize,
}

/// Per-rank outcome of a staged run.
pub struct ScfResult {
    /// SCF iterations executed.
    pub scf_iterations: usize,
    /// Total purification-kernel virtual time (active ranks; zero on
    /// sleepers).
    pub purify_kernel_time: SimDur,
    /// SymmSquareCube calls performed by this rank.
    pub kernel_calls: usize,
    /// Total sleep polls performed by this rank across stages.
    pub polls: usize,
    /// Virtual time of the whole run.
    pub total_time: SimDur,
}

/// Run `scf_iterations` of (Fock stage on all ranks → purification on the
/// planned subset). Every rank of the universe must call this.
pub fn scf_staged<R: RankHandle>(rc: &R, cfg: &ScfConfig, choice: KernelChoice) -> ScfResult {
    let world = rc.world();
    let t0: SimTime = rc.now();
    // The active subset's communicator is created once, collectively.
    let active = cfg.plan.is_active(rc.rank());
    let sub = world.split(if active { 0 } else { -1 }, rc.rank() as u64);

    let mut kernel_time = SimDur::ZERO;
    let mut kernel_calls = 0usize;
    let mut polls = 0usize;
    for _ in 0..cfg.scf_iterations {
        // Stage 1: Fock construction — every process computes.
        rc.advance(cfg.fock_time);
        world.barrier();

        // Stage 2: purification at the per-kernel PPN; surplus processes
        // sleep-poll the Ibarrier and release their cores to the actives.
        if let Some(k) = cfg.plan.active_ppn() {
            rc.set_active_ppn(k);
        }
        let (res, p) = run_stage(rc, &world, &cfg.plan, || {
            purify_rank_on(
                rc,
                sub.as_ref()
                    .expect("active ranks have the sub-communicator"),
                &cfg.purify,
                choice,
            )
        });
        rc.set_active_ppn(0);
        polls += p;
        if let Some(r) = res {
            kernel_time += r.kernel_time;
            kernel_calls += r.iterations;
        }
    }
    ScfResult {
        scf_iterations: cfg.scf_iterations,
        purify_kernel_time: kernel_time,
        kernel_calls,
        polls,
        total_time: rc.now() - t0,
    }
}
