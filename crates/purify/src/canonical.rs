//! Canonical density matrix purification (Palser & Manolopoulos, 1998)
//! driven by the distributed SymmSquareCube kernels.
//!
//! Each iteration computes D² and D³ with one SymmSquareCube call — the
//! kernel the paper optimizes — then applies the canonical update
//!
//! ```text
//! c = tr(D² − D³) / tr(D − D²)
//! D ← ((1+c)·D² − D³) / c                   if c ≥ ½
//! D ← ((1−2c)·D + (1+c)·D² − D³) / (1−c)   otherwise
//! ```
//!
//! (The branch choice keeps both fixed points 0 and 1 of the trace-
//! conserving cubic stable: the first form's derivative at 1 is (2c−1)/c,
//! the second's at 0 is (1−2c)/(1−c).)
//!
//! until `tr(D − D²)` vanishes (D becomes an idempotent projector with
//! trace = nocc). The initial iterate is the standard scaled/shifted
//! Hamiltonian `D₀ = (λ/N)(μI − F) + (nocc/N)·I` with `μ = tr(F)/N` and λ
//! from the spectral bounds.

// Purification drivers are invariant-dense: `expect`/`unwrap` here assert
// plane/root-only payload delivery and staged-communicator membership
// guaranteed by the surrounding protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{Communicator, NDupComms, RankHandle};
use ovcomm_densemat::{BlockBuf, BlockGrid, Matrix};
use ovcomm_kernels::{
    symm_square_cube_25d, symm_square_cube_baseline, symm_square_cube_optimized,
    symm_square_cube_original, Mesh25D, Mesh3D, Mesh3DBundles, SymmInput,
};
use ovcomm_simmpi::Payload;
use ovcomm_simnet::{SimDur, SimTime};

/// Which SymmSquareCube variant drives the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Algorithm 3 (original GTFock).
    Original,
    /// Algorithm 4 (baseline).
    Baseline,
    /// Algorithm 5 with the given N_DUP.
    Optimized {
        /// Number of duplicated communicators / pipeline chunks.
        n_dup: usize,
    },
    /// Algorithm 6 (2.5D) with replication factor c and N_DUP.
    TwoFiveD {
        /// Replication factor (c | q).
        c: usize,
        /// Self-overlap N_DUP for the grid collectives.
        n_dup: usize,
    },
}

/// Configuration of a purification run.
#[derive(Debug, Clone)]
pub struct PurifyConfig {
    /// Matrix dimension N.
    pub n: usize,
    /// Occupied count (target trace).
    pub nocc: usize,
    /// Convergence threshold on `tr(D − D²)` (real mode).
    pub tol: f64,
    /// Iteration cap; phantom mode runs exactly this many iterations.
    pub max_iter: usize,
    /// Phantom data (paper-scale benchmarking) or real arithmetic.
    pub phantom: bool,
    /// Seed for the synthetic Hamiltonian (real mode).
    pub seed: u64,
}

/// Outcome of a purification run on one rank.
pub struct PurifyResult {
    /// SymmSquareCube calls performed.
    pub iterations: usize,
    /// Whether `tr(D − D²)` dropped below tolerance (always false for
    /// phantom runs, which are fixed-length).
    pub converged: bool,
    /// Final `tr(D − D²)` (real mode; 0.0 for phantom).
    pub residual: f64,
    /// Total virtual time spent inside SymmSquareCube calls.
    pub kernel_time: SimDur,
    /// Virtual time of the whole purification loop.
    pub total_time: SimDur,
    /// Final density block on plane 0 (real mode).
    pub d_block: Option<BlockBuf>,
}

impl PurifyResult {
    /// Average SymmSquareCube performance in flop/s — the paper's reported
    /// metric (4N³ flops per call, averaged over calls).
    pub fn kernel_flops_per_sec(&self, n: usize) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        let flops = ovcomm_kernels::symm_square_cube_flops(n) * self.iterations as f64;
        flops / self.kernel_time.as_secs_f64()
    }
}

/// Mesh + communicators built once per run.
enum KernelState<C: Communicator> {
    ThreeD {
        mesh: Mesh3D<C>,
        bundles: Option<Mesh3DBundles<C>>,
        choice: KernelChoice,
    },
    TwoFiveD {
        mesh: Mesh25D<C>,
        grd_ndup: NDupComms<C>,
    },
}

impl<C: Communicator> KernelState<C> {
    fn grid_p(&self) -> usize {
        match self {
            KernelState::ThreeD { mesh, .. } => mesh.p,
            KernelState::TwoFiveD { mesh, .. } => mesh.q,
        }
    }

    fn on_plane0(&self) -> bool {
        match self {
            KernelState::ThreeD { mesh, .. } => mesh.k == 0,
            KernelState::TwoFiveD { mesh, .. } => mesh.k == 0,
        }
    }

    fn coords(&self) -> (usize, usize) {
        match self {
            KernelState::ThreeD { mesh, .. } => (mesh.i, mesh.j),
            KernelState::TwoFiveD { mesh, .. } => (mesh.i, mesh.j),
        }
    }

    fn call<R: RankHandle<Comm = C>>(
        &self,
        rc: &R,
        input: &SymmInput,
    ) -> ovcomm_kernels::SymmOutput {
        match self {
            KernelState::ThreeD {
                mesh,
                bundles,
                choice,
            } => match choice {
                KernelChoice::Original => symm_square_cube_original(rc, mesh, input),
                KernelChoice::Baseline => symm_square_cube_baseline(rc, mesh, input),
                KernelChoice::Optimized { .. } => {
                    symm_square_cube_optimized(rc, mesh, bundles.as_ref().unwrap(), input)
                }
                KernelChoice::TwoFiveD { .. } => unreachable!(),
            },
            KernelState::TwoFiveD { mesh, grd_ndup } => {
                symm_square_cube_25d(rc, mesh, grd_ndup, input)
            }
        }
    }
}

/// Build the initial canonical-purification iterate from the Hamiltonian
/// (full matrices; used at real scale only).
pub fn initial_iterate(h: &Matrix, nocc: usize) -> Matrix {
    let n = h.rows();
    let mu = h.trace() / n as f64;
    let (emin, emax) = ovcomm_densemat::gershgorin_bounds(h);
    let ne = nocc as f64;
    let nf = n as f64;
    let lambda = (ne / (emax - mu)).min((nf - ne) / (mu - emin));
    // D0 = (λ/N)(μI − H) + (ne/N)·I
    let mut d0 = h.clone();
    d0.scale(-lambda / nf);
    d0.shift_diag(lambda * mu / nf + ne / nf);
    d0
}

/// The per-rank purification driver. Call from inside a simulation rank
/// closure; every rank of the universe participates (the mesh shape is
/// inferred from the kernel choice and the rank count).
pub fn purify_rank<R: RankHandle>(
    rc: &R,
    cfg: &PurifyConfig,
    choice: KernelChoice,
) -> PurifyResult {
    purify_rank_on(rc, &rc.world(), cfg, choice)
}

/// Purification over an arbitrary base communicator — the building block of
/// per-kernel PPN selection (§III-B): the caller hands in just the active
/// subset of processes. Every member of `base` must call.
pub fn purify_rank_on<R: RankHandle>(
    rc: &R,
    base: &R::Comm,
    cfg: &PurifyConfig,
    choice: KernelChoice,
) -> PurifyResult {
    purify_loop_on(rc, base, cfg, choice, initial_iterate_cfg, canonical_update)
}

/// Canonical initial iterate bound to the config's occupation count.
fn initial_iterate_cfg(h: &Matrix, cfg: &PurifyConfig) -> Matrix {
    initial_iterate(h, cfg.nocc)
}

/// The canonical (trace-conserving) update; `sums = [tr(D−D²), tr(D²−D³)]`
/// from the global reduction. Returns `None` when the iteration is
/// numerically exhausted (c leaves (0, 1)).
fn canonical_update(dm: &Matrix, d2m: &Matrix, d3m: &Matrix, sums: [f64; 2]) -> Option<Matrix> {
    let (den, num) = (sums[0], sums[1]);
    let c = num / den;
    if !c.is_finite() || !(1e-12..=1.0 - 1e-12).contains(&c) {
        return None;
    }
    let mut next = Matrix::zeros(dm.rows(), dm.cols());
    if c >= 0.5 {
        // ((1+c)D² − D³)/c
        next.axpy((1.0 + c) / c, d2m);
        next.axpy(-1.0 / c, d3m);
    } else {
        // ((1−2c)D + (1+c)D² − D³)/(1−c)
        next.axpy((1.0 - 2.0 * c) / (1.0 - c), dm);
        next.axpy((1.0 + c) / (1.0 - c), d2m);
        next.axpy(-1.0 / (1.0 - c), d3m);
    }
    Some(next)
}

/// The generic purification loop over the world communicator (used by the
/// McWeeny variant too).
pub(crate) fn purify_loop<R: RankHandle>(
    rc: &R,
    cfg: &PurifyConfig,
    choice: KernelChoice,
    init: impl Fn(&Matrix, &PurifyConfig) -> Matrix,
    update: impl Fn(&Matrix, &Matrix, &Matrix, [f64; 2]) -> Option<Matrix>,
) -> PurifyResult {
    purify_loop_on(rc, &rc.world(), cfg, choice, init, update)
}

/// The generic purification loop: one SymmSquareCube call per iteration,
/// global trace reduction, a pluggable polynomial update.
pub(crate) fn purify_loop_on<R: RankHandle>(
    rc: &R,
    base: &R::Comm,
    cfg: &PurifyConfig,
    choice: KernelChoice,
    init: impl Fn(&Matrix, &PurifyConfig) -> Matrix,
    update: impl Fn(&Matrix, &Matrix, &Matrix, [f64; 2]) -> Option<Matrix>,
) -> PurifyResult {
    let world = base.clone();
    let nranks = world.size();
    let state = match choice {
        KernelChoice::TwoFiveD { c, n_dup } => {
            let q = ((nranks / c) as f64).sqrt().round() as usize;
            assert_eq!(q * q * c, nranks, "rank count must be q^2*c");
            let mesh = Mesh25D::new_on(world.clone(), q, c);
            let grd_ndup = NDupComms::new(&mesh.grd, n_dup);
            KernelState::TwoFiveD { mesh, grd_ndup }
        }
        _ => {
            let p = (nranks as f64).cbrt().round() as usize;
            assert_eq!(p * p * p, nranks, "rank count must be p^3");
            let mesh = Mesh3D::new_on(world.clone(), p);
            let bundles = match choice {
                KernelChoice::Optimized { n_dup } => Some(mesh.dup_bundles(n_dup)),
                _ => None,
            };
            KernelState::ThreeD {
                mesh,
                bundles,
                choice,
            }
        }
    };

    let p = state.grid_p();
    let grid = BlockGrid::new(cfg.n, p);
    let (bi, bj) = state.coords();
    let plane0 = state.on_plane0();
    // Communicator over plane 0 for the trace reductions.
    let plane0_comm: Option<R::Comm> =
        world.split(if plane0 { 0 } else { -1 }, world.rank() as u64);

    // Initial iterate.
    let mut d_block: Option<BlockBuf> = plane0.then(|| {
        if cfg.phantom {
            let (r, c) = grid.block_dims(bi, bj);
            BlockBuf::Phantom(r, c)
        } else {
            let eigs = ovcomm_densemat::fock_like_spectrum(cfg.n, cfg.nocc);
            let h = ovcomm_densemat::symmetric_with_spectrum(&eigs, cfg.seed);
            let d0 = init(&h, cfg);
            BlockBuf::Real(grid.extract(&d0, bi, bj))
        }
    });

    let t_start = rc.now();
    let mut kernel_time = SimDur::ZERO;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut residual = f64::NAN;

    while iterations < cfg.max_iter {
        // One SymmSquareCube call (all ranks).
        let input = SymmInput {
            n: cfg.n,
            d_block: d_block.clone(),
        };
        let t0: SimTime = rc.now();
        let out = state.call(rc, &input);
        world.barrier();
        kernel_time += rc.now() - t0;
        iterations += 1;
        rc.phase_span(t0, format!("purify iter {iterations}"));

        // Canonical update on plane 0.
        let mut stop = false;
        if plane0 {
            let comm = plane0_comm.as_ref().expect("plane 0 has the trace comm");
            let d2 = out.d2.expect("plane 0 receives D²");
            let d3 = out.d3.expect("plane 0 receives D³");
            let d = d_block.take().unwrap();
            if cfg.phantom {
                // Timing-faithful stand-ins: scalar trace allreduce and the
                // three-operand block update charge.
                let _ = comm.allreduce(Payload::from_f64s(&[0.0, 0.0]));
                charge_update(rc, &grid, bi, bj);
                d_block = Some(d);
            } else {
                let (dm, d2m, d3m) = (d.unwrap_real(), d2.unwrap_real(), d3.unwrap_real());
                // Local trace contributions (diagonal blocks only).
                let (tr_d_d2, tr_d2_d3) = if bi == bj {
                    (dm.trace() - d2m.trace(), d2m.trace() - d3m.trace())
                } else {
                    (0.0, 0.0)
                };
                let sums = comm
                    .allreduce(Payload::from_f64s(&[tr_d_d2, tr_d2_d3]))
                    .to_f64s();
                let (den, num) = (sums[0], sums[1]);
                residual = den;
                let next = if den.abs() < cfg.tol {
                    None
                } else {
                    update(dm, d2m, d3m, [den, num])
                };
                match next {
                    Some(next) => {
                        charge_update(rc, &grid, bi, bj);
                        d_block = Some(BlockBuf::Real(next));
                    }
                    None => {
                        // Converged (or numerically exhausted).
                        converged = true;
                        d_block = Some(BlockBuf::Real(dm.clone()));
                        stop = true;
                    }
                }
            }
        }
        // Everyone learns whether to continue.
        let flag = world.bcast(
            0,
            (world.rank() == 0).then(|| Payload::from_f64s(&[if stop { 1.0 } else { 0.0 }])),
            8,
        );
        if !cfg.phantom && flag.to_f64s()[0] > 0.5 {
            break;
        }
    }

    PurifyResult {
        iterations,
        converged,
        residual: if residual.is_nan() { 0.0 } else { residual },
        kernel_time,
        total_time: rc.now() - t_start,
        d_block,
    }
}

/// Virtual-time cost of the three-operand canonical update (memory-bound
/// streaming over D, D², D³ and the output).
fn charge_update<R: RankHandle>(rc: &R, grid: &BlockGrid, i: usize, j: usize) {
    let bytes = grid.block_bytes(i, j) as f64 * 4.0;
    // Stream at the node's memory bandwidth share.
    let bw = rc.profile().node_mem_bw / rc.compute_ppn() as f64;
    rc.advance(SimDur::from_secs_f64(bytes / bw));
}
