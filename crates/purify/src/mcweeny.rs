//! McWeeny purification — the classic variant the paper's iteration
//! formula quotes directly (§I): `D_{k+1} = 3D_k² − 2D_k³`.
//!
//! Unlike canonical purification, McWeeny's iteration does not conserve the
//! trace: it drives every eigenvalue in (½, 1] to 1 and every eigenvalue in
//! [0, ½) to 0. The initial iterate must therefore already separate
//! occupied from virtual states across ½, which requires the chemical
//! potential μ: `D₀ = (μI − F) / (2λ) + ½I` scaled so the spectrum lies in
//! [0, 1]. Every iteration is one SymmSquareCube call — the same kernel,
//! the same overlap techniques.

use ovcomm_core::RankHandle;
use ovcomm_densemat::Matrix;

use crate::canonical::{KernelChoice, PurifyConfig, PurifyResult};

/// Build the McWeeny initial iterate from the Hamiltonian and the chemical
/// potential μ (any value strictly inside the HOMO–LUMO gap): eigenvalues
/// below μ map above ½, eigenvalues above μ map below ½, all within [0, 1].
pub fn mcweeny_initial(h: &Matrix, mu: f64) -> Matrix {
    let (emin, emax) = ovcomm_densemat::gershgorin_bounds(h);
    // λ bounds the half-spectrum width so (μ − λ, μ + λ) covers it.
    let lambda = (emax - mu).max(mu - emin).max(1e-12);
    let n = h.rows();
    let mut d0 = h.clone();
    d0.scale(-0.5 / lambda);
    d0.shift_diag(0.5 * mu / lambda + 0.5);
    debug_assert_eq!(d0.rows(), n);
    d0
}

/// Run McWeeny purification: iterate `D ← 3D² − 2D³` until `tr(D − D²)`
/// falls below tolerance. Same calling convention as
/// [`crate::purify_rank`], plus the chemical potential. Phantom runs
/// execute exactly `max_iter` iterations.
pub fn mcweeny_rank<R: RankHandle>(
    rc: &R,
    cfg: &PurifyConfig,
    mu: f64,
    choice: KernelChoice,
) -> PurifyResult {
    crate::canonical::purify_loop(
        rc,
        cfg,
        choice,
        move |h, _cfg| mcweeny_initial(h, mu),
        |dm, d2m, d3m, _sums| {
            // D ← 3D² − 2D³.
            let mut next = Matrix::zeros(dm.rows(), dm.cols());
            next.axpy(3.0, d2m);
            next.axpy(-2.0, d3m);
            let _ = dm;
            Some(next)
        },
    )
}
