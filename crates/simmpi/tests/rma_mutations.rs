//! Seeded-mutation suite for the one-sided (RMA) lints: each test plants
//! one RMA-usage bug into an otherwise-legal window program and asserts
//! `VerifyMode::Strict` catches it with a diagnostic that names the
//! offending rank, window, and operation. A clean epoch-disciplined
//! program is checked first to pin that the lints have no false positives.

use ovcomm_simmpi::{run, Finding, Payload, RankCtx, SimConfig, SimError, SimOutput};
use ovcomm_simnet::MachineProfile;

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

/// The run must fail verification; returns the rendered findings.
fn expect_findings<T>(result: Result<SimOutput<T>, SimError>) -> String {
    match result {
        Err(SimError::Verification { findings }) => render(&findings),
        Ok(_) => panic!("run passed verification; expected findings"),
        Err(other) => panic!("expected a verification failure, got: {other}"),
    }
}

fn render(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// Baseline: a disciplined window program is clean
// ---------------------------------------------------------------------

#[test]
fn disciplined_window_program_is_clean() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let win = w.win_create(Payload::from_f64s(&[0.0; 8]));
        // Active-target epoch: both origins accumulate into rank 0.
        win.fence();
        win.accumulate(0, 0, Payload::from_f64s(&[1.0 + rc.rank() as f64]));
        win.fence();
        // Passive-target epoch: rank 1 puts into rank 0 under the lock.
        if rc.rank() == 1 {
            win.lock(0);
            win.put(0, 8, Payload::from_f64s(&[7.0]));
            win.unlock(0);
        }
        w.barrier();
        win.fence();
        let local = win.local().to_f64s();
        win.free();
        local
    })
    .expect("disciplined program must verify clean");
    assert!(out.verify.findings.is_empty(), "{:?}", out.verify.findings);
    // Both accumulates landed (1 + 2), then the locked put wrote slot 1.
    assert_eq!(out.results[0][0], 3.0);
    assert_eq!(out.results[0][1], 7.0);
}

// ---------------------------------------------------------------------
// Bug class 1: put outside any epoch (no fence, no lock)
// ---------------------------------------------------------------------

#[test]
fn mutation_put_outside_epoch_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let win = w.win_create(Payload::from_f64s(&[0.0; 4]));
        // Mutation: the put is issued before any fence opens an access
        // epoch. The staged data still applies at the later fence, so the
        // run completes — only the verifier sees the race.
        if rc.rank() == 1 {
            win.put(0, 0, Payload::from_f64s(&[1.0]));
        }
        win.fence();
        win.fence();
        win.free();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("rma-outside-epoch"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("MPI_Rput"), "{msg}");
    assert!(msg.contains("outside any epoch"), "{msg}");
}

// ---------------------------------------------------------------------
// Bug class 2: missing closing fence (epoch left open at free)
// ---------------------------------------------------------------------

#[test]
fn mutation_missing_closing_fence_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let win = w.win_create(Payload::from_f64s(&[0.0; 4]));
        win.fence();
        if rc.rank() == 1 {
            win.put(0, 0, Payload::from_f64s(&[2.0]));
        }
        // Mutation: the closing fence is missing — the put is never
        // synchronized before the window is torn down.
        win.free();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("rma-unclosed-epoch"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("unsynchronized operation"), "{msg}");
}

// ---------------------------------------------------------------------
// Bug class 3: conflicting put/accumulate in one epoch
// ---------------------------------------------------------------------

#[test]
fn mutation_conflicting_put_and_accumulate_is_flagged() {
    let result = run(cfg(3, 1), |rc: RankCtx| {
        let w = rc.world();
        let win = w.win_create(Payload::from_f64s(&[0.0; 4]));
        win.fence();
        // Mutation: rank 1 puts bytes 0..16 of rank 0's segment while
        // rank 2 accumulates bytes 8..24 in the *same* epoch — the final
        // value of bytes 8..16 depends on apply order across origins.
        // (Concurrent accumulates alone would commute and be legal.)
        if rc.rank() == 1 {
            win.put(0, 0, Payload::from_f64s(&[1.0, 1.0]));
        } else if rc.rank() == 2 {
            win.accumulate(0, 8, Payload::from_f64s(&[1.0, 1.0]));
        }
        win.fence();
        win.free();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("rma-conflict"), "{msg}");
    assert!(msg.contains("conflicting one-sided accesses"), "{msg}");
    assert!(
        msg.contains("MPI_Rput") && msg.contains("MPI_Raccumulate"),
        "{msg}"
    );
}

// ---------------------------------------------------------------------
// Bug class 4: double unlock
// ---------------------------------------------------------------------

#[test]
fn mutation_double_unlock_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let win = w.win_create(Payload::from_f64s(&[0.0; 4]));
        if rc.rank() == 1 {
            win.lock(0);
            win.put(0, 0, Payload::from_f64s(&[3.0]));
            win.unlock(0);
            // Mutation: a second unlock of a target this rank no longer
            // holds. The backends tolerate it (nothing is released), so
            // the run reaches verification.
            win.unlock(0);
        }
        w.barrier();
        win.fence();
        win.fence();
        win.free();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("rma-double-unlock"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
}

// ---------------------------------------------------------------------
// Bug class 5: window handle dropped without free (leak, satellite of
// the request-leak detector)
// ---------------------------------------------------------------------

#[test]
fn mutation_dropped_window_is_flagged_with_creation_site() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        // Mutation: the window is created, used legally, then dropped
        // without `free` — the `Win` analogue of a request leak.
        let win = w.win_create(Payload::from_f64s(&[0.0; 4]));
        win.fence();
        win.fence();
        drop(win);
    });
    let msg = expect_findings(result);
    assert!(msg.contains("win-leak"), "{msg}");
    assert!(msg.contains("without freeing it"), "{msg}");
    // The diagnostic carries the `win_create` call site of this file.
    assert!(msg.contains("rma_mutations.rs"), "{msg}");
}
