//! Property tests: every collective produces exactly the reference result
//! for arbitrary communicator sizes, roots, payload sizes (crossing the
//! small/large algorithm threshold and the eager/rendezvous boundary), and
//! the payload algebra holds for arbitrary splits.

use proptest::prelude::*;

use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn cfg(nranks: usize) -> SimConfig {
    SimConfig::natural(nranks, 2, MachineProfile::test_profile())
}

proptest! {
    // Simulation-backed cases are heavier: keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_delivers_exact_data(
        p in 1usize..9,
        root_pick in 0usize..64,
        n_elems in prop::sample::select(vec![1usize, 7, 128, 4097, 9000]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        let data: Vec<f64> = (0..n_elems).map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f64 / 7.0).collect();
        let expect = data.clone();
        let out = run(cfg(p), move |rc: RankCtx| {
            let w = rc.world();
            let payload = (rc.rank() == root).then(|| Payload::from_f64s(&data));
            w.bcast(root, payload, n_elems * 8).to_f64s() == expect
        }).unwrap();
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn reduce_sums_exactly(
        p in 1usize..9,
        root_pick in 0usize..64,
        n_elems in prop::sample::select(vec![1usize, 63, 512, 4100, 8192]),
    ) {
        let root = root_pick % p;
        let out = run(cfg(p), move |rc: RankCtx| {
            let w = rc.world();
            let mine: Vec<f64> = (0..n_elems).map(|i| (rc.rank() + 1) as f64 * 0.5 + i as f64).collect();
            w.reduce(root, Payload::from_f64s(&mine)).map(|r| r.to_f64s())
        }).unwrap();
        for (r, res) in out.results.iter().enumerate() {
            if r == root {
                let res = res.as_ref().unwrap();
                for (i, &x) in res.iter().enumerate() {
                    let want: f64 = (1..=p).map(|k| k as f64 * 0.5 + i as f64).sum();
                    prop_assert!((x - want).abs() < 1e-9);
                }
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allreduce_equals_reduce_plus_bcast(
        p in 2usize..8,
        n_elems in prop::sample::select(vec![3usize, 800, 4099]),
    ) {
        let out = run(cfg(p), move |rc: RankCtx| {
            let w = rc.world();
            let mine: Vec<f64> = (0..n_elems).map(|i| rc.rank() as f64 - i as f64 * 0.25).collect();
            let all = w.allreduce(Payload::from_f64s(&mine)).to_f64s();
            let red = w.reduce(0, Payload::from_f64s(&mine));
            let via = w.bcast(0, red, n_elems * 8).to_f64s();
            all == via
        }).unwrap();
        prop_assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn scatter_then_allgather_is_identity(
        p in 1usize..8,
        n_chunks_elems in 1usize..40,
    ) {
        let n = n_chunks_elems * p * 8; // bytes, divisible enough
        let data: Vec<f64> = (0..n / 8).map(|i| i as f64 * 1.5).collect();
        let expect = data.clone();
        let out = run(cfg(p), move |rc: RankCtx| {
            let w = rc.world();
            let payload = (rc.rank() == 0).then(|| Payload::from_f64s(&data));
            let chunk = w.scatter(0, payload, n);
            w.allgather(chunk, n).to_f64s() == expect
        }).unwrap();
        prop_assert!(out.results.iter().all(|&ok| ok));
    }
}

proptest! {
    // Verifier soundness: any *legal* schedule — same collective order on
    // every rank, every request waited, tags paired — must produce zero
    // verifier errors in Strict mode (which is `cfg()`'s default, so the
    // `unwrap` itself is the assertion; a false positive would surface as
    // `SimError::Verification`).
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn legal_random_schedules_are_verifier_clean(
        p in 2usize..7,
        ops in prop::collection::vec(0u8..7, 1..8),
        n in prop::sample::select(vec![64usize, 4096, 40000]),
    ) {
        let out = run(cfg(p), move |rc: RankCtx| {
            let w = rc.world();
            let d = w.dup();
            let me = rc.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            for (i, &op) in ops.iter().enumerate() {
                let tag = i as u32;
                let root = i % p;
                match op {
                    0 => { let data = (me == root).then_some(Payload::Phantom(n)); let _ = w.bcast(root, data, n); }
                    1 => { let _ = w.allreduce(Payload::Phantom(n)); }
                    2 => w.barrier(),
                    3 => { let data = (me == root).then_some(Payload::Phantom(n)); let r = d.ibcast(root, data, n); let _ = d.wait(&r); }
                    4 => { let r = d.iallreduce(Payload::Phantom(n)); let _ = d.wait(&r); }
                    5 => { let _ = w.sendrecv(right, left, tag, Payload::Phantom(n)); }
                    _ => {
                        let s = w.isend(right, tag, Payload::Phantom(n));
                        let r = w.irecv(left, tag);
                        let _ = w.wait(&r);
                        w.wait(&s);
                    }
                }
            }
        }).unwrap();
        prop_assert_eq!(out.verify.errors(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn payload_split_concat_roundtrip(
        elems in prop::collection::vec(-1e6..1e6f64, 0..200),
        cut_ratio in 0.0..1.0f64,
    ) {
        let p = Payload::from_f64s(&elems);
        let cut = ((p.len() as f64 * cut_ratio) as usize / 8) * 8;
        let (a, b) = p.split_at(cut);
        let back = Payload::concat(&[a, b]);
        prop_assert_eq!(back.to_f64s(), elems);
    }

    #[test]
    fn payload_reduce_is_commutative(
        a in prop::collection::vec(-1e6..1e6f64, 1..100),
        seed in 0u64..100,
    ) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, x)| x * 0.5 + (i as u64 + seed) as f64).collect();
        let pa = Payload::from_f64s(&a);
        let pb = Payload::from_f64s(&b);
        prop_assert_eq!(pa.reduce_sum_f64(&pb), pb.reduce_sum_f64(&pa));
    }
}
