//! Plan-cache memoization: each collective shape is compiled and
//! statically analyzed (lint + model check under `Strict`) exactly once;
//! cache hits return the same plans without re-running analysis or
//! re-rendering findings.

use ovcomm_simmpi::universe::PlanCache;
use ovcomm_simmpi::{compile_plans, CollKind, CollSelector, VerifyMode};
use std::sync::Arc;

#[test]
fn cache_hit_returns_memoized_plans_and_findings() {
    let cache = parking_lot::Mutex::new(PlanCache::new());
    let sel = CollSelector::default();
    let a = compile_plans(
        &cache,
        &sel,
        VerifyMode::Strict,
        4,
        CollKind::Allreduce,
        256,
        0,
    );
    let b = compile_plans(
        &cache,
        &sel,
        VerifyMode::Strict,
        4,
        CollKind::Allreduce,
        256,
        0,
    );
    // Same Arc: the second call is a pure cache hit (no rebuild, no
    // re-analysis).
    assert!(Arc::ptr_eq(&a, &b));
    let guard = cache.lock();
    assert_eq!(guard.len(), 1);
    let cached = guard.values().next().unwrap();
    // Strict-mode analysis ran once and found the shipped builder clean.
    assert!(cached.findings.is_empty());
}

#[test]
fn distinct_shapes_get_distinct_entries() {
    let cache = parking_lot::Mutex::new(PlanCache::new());
    let sel = CollSelector::default();
    for n in [64usize, 256, 4096] {
        let _ = compile_plans(&cache, &sel, VerifyMode::Strict, 5, CollKind::Bcast, n, 2);
    }
    // Shapes may share an algorithm but differ in n: one entry each.
    assert_eq!(cache.lock().len(), 3);
}

#[test]
fn strict_mode_model_checks_every_kind() {
    let cache = parking_lot::Mutex::new(PlanCache::new());
    let sel = CollSelector::default();
    for kind in [
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::Allreduce,
        CollKind::Gather,
        CollKind::Scatter,
        CollKind::Allgather,
        CollKind::Barrier,
    ] {
        // Rootless collectives use root 0 by convention.
        let root = match kind {
            CollKind::Bcast | CollKind::Reduce | CollKind::Gather | CollKind::Scatter => 1,
            _ => 0,
        };
        let plans = compile_plans(&cache, &sel, VerifyMode::Strict, 6, kind, 512, root);
        assert_eq!(plans.len(), 6);
    }
    assert!(cache.lock().values().all(|c| c.findings.is_empty()));
}
