//! Integration tests for the simulated MPI: point-to-point semantics,
//! collective correctness against references, communicator management,
//! nonblocking progress, determinism and deadlock detection.

use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig, SimError};
use ovcomm_simnet::MachineProfile;

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

#[test]
fn send_recv_moves_real_data() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 7, Payload::from_f64s(&[1.0, 2.0, 3.0]));
            Vec::new()
        } else {
            w.recv(0, 7).to_f64s()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], vec![1.0, 2.0, 3.0]);
    assert!(out.makespan.as_nanos() > 0);
}

#[test]
fn messages_do_not_overtake_on_same_envelope() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            for i in 0..8 {
                w.send(1, 5, Payload::from_f64s(&[i as f64]));
            }
            Vec::new()
        } else {
            (0..8).map(|_| w.recv(0, 5).to_f64s()[0]).collect()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (0..8).map(|i| i as f64).collect::<Vec<_>>());
}

#[test]
fn tags_demultiplex() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 1, Payload::from_f64s(&[10.0]));
            w.send(1, 2, Payload::from_f64s(&[20.0]));
            (0.0, 0.0)
        } else {
            // Receive in the opposite tag order.
            let b = w.recv(0, 2).to_f64s()[0];
            let a = w.recv(0, 1).to_f64s()[0];
            (a, b)
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (10.0, 20.0));
}

#[test]
fn rendezvous_large_message_roundtrip() {
    // 256 KB > eager limit of the test profile (64 KB).
    let data: Vec<f64> = (0..32 * 1024).map(|i| i as f64).collect();
    let expect = data.clone();
    let out = run(cfg(2, 1), move |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 0, Payload::from_f64s(&data));
            true
        } else {
            w.recv(0, 0).to_f64s() == expect
        }
    })
    .unwrap();
    assert!(out.results[1]);
}

#[test]
fn rendezvous_waits_for_receiver() {
    // The sender cannot complete a rendezvous send before the receiver
    // posts. The receiver delays 1 ms; the sender's completion time must
    // reflect that.
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let big = Payload::Phantom(1 << 20);
            w.send(1, 0, big);
            rc.now().as_secs_f64()
        } else {
            rc.advance(ovcomm_simnet::SimDur::from_millis(1));
            let _ = w.recv(0, 0);
            rc.now().as_secs_f64()
        }
    })
    .unwrap();
    assert!(
        out.results[0] >= 1e-3,
        "sender finished at {} but receiver posted at 1ms",
        out.results[0]
    );
}

#[test]
fn eager_send_completes_immediately() {
    // A small send is buffered: the sender finishes long before the
    // receiver even posts.
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 0, Payload::from_f64s(&[1.0]));
            rc.now().as_secs_f64()
        } else {
            rc.advance(ovcomm_simnet::SimDur::from_millis(5));
            let _ = w.recv(0, 0);
            rc.now().as_secs_f64()
        }
    })
    .unwrap();
    assert!(
        out.results[0] < 1e-3,
        "eager sender blocked: {}",
        out.results[0]
    );
    assert!(out.results[1] >= 5e-3);
}

#[test]
fn isend_irecv_overlap_on_one_rank() {
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let r1 = w.isend(1, 1, Payload::from_f64s(&[1.0]));
            let r2 = w.irecv(1, 2);
            w.wait(&r1);
            w.wait(&r2).to_f64s()[0]
        } else {
            let r1 = w.irecv(0, 1);
            let r2 = w.isend(0, 2, Payload::from_f64s(&[2.0]));
            w.wait(&r2);
            w.wait(&r1).to_f64s()[0]
        }
    })
    .unwrap();
    assert_eq!(out.results, vec![2.0, 1.0]);
}

// ---------------------------------------------------------------------
// Collectives: correctness on many communicator sizes.
// ---------------------------------------------------------------------

fn bcast_case(p: usize, root: usize, n_elems: usize) {
    let data: Vec<f64> = (0..n_elems).map(|i| (i as f64) * 0.5 - 3.0).collect();
    let expect = data.clone();
    let out = run(cfg(p, 2), move |rc: RankCtx| {
        let w = rc.world();
        let payload = (rc.rank() == root).then(|| Payload::from_f64s(&data));
        w.bcast(root, payload, n_elems * 8).to_f64s() == expect
    })
    .unwrap();
    assert!(
        out.results.iter().all(|&ok| ok),
        "bcast p={p} root={root} n={n_elems}"
    );
}

#[test]
fn bcast_small_various_sizes_and_roots() {
    for p in [1, 2, 3, 4, 5, 7, 8] {
        bcast_case(p, 0, 16);
        if p > 2 {
            bcast_case(p, p - 1, 16);
            bcast_case(p, 1, 3);
        }
    }
}

#[test]
fn bcast_large_uses_scatter_allgather_and_is_correct() {
    // > 32 KB triggers the van de Geijn path.
    for p in [2, 3, 4, 6, 8] {
        bcast_case(p, 0, 16 * 1024);
        bcast_case(p, p / 2, 8 * 1024 + 3);
    }
}

fn reduce_case(p: usize, root: usize, n_elems: usize) {
    let out = run(cfg(p, 2), move |rc: RankCtx| {
        let w = rc.world();
        let mine: Vec<f64> = (0..n_elems)
            .map(|i| (rc.rank() + 1) as f64 * (i + 1) as f64)
            .collect();
        w.reduce(root, Payload::from_f64s(&mine))
            .map(|r| r.to_f64s())
    })
    .unwrap();
    let total_rank_factor: f64 = (1..=p).map(|r| r as f64).sum();
    for (r, res) in out.results.iter().enumerate() {
        if r == root {
            let res = res.as_ref().expect("root gets the result");
            for (i, &x) in res.iter().enumerate() {
                let want = total_rank_factor * (i + 1) as f64;
                assert!(
                    (x - want).abs() < 1e-9,
                    "reduce p={p} root={root} elem {i}: {x} != {want}"
                );
            }
        } else {
            assert!(res.is_none(), "non-root {r} must get None");
        }
    }
}

#[test]
fn reduce_small_binomial_various() {
    for p in [1, 2, 3, 4, 5, 6, 7, 8] {
        reduce_case(p, 0, 8);
    }
    reduce_case(5, 3, 8);
    reduce_case(8, 7, 8);
}

#[test]
fn reduce_large_rabenseifner_various() {
    for p in [2, 3, 4, 5, 7, 8] {
        reduce_case(p, 0, 8 * 1024); // 64 KB > threshold
    }
    reduce_case(6, 4, 8 * 1024);
    reduce_case(12, 5, 6 * 1024);
}

fn allreduce_case(p: usize, n_elems: usize) {
    let out = run(cfg(p, 2), move |rc: RankCtx| {
        let w = rc.world();
        let mine: Vec<f64> = (0..n_elems)
            .map(|i| (rc.rank() * n_elems + i) as f64)
            .collect();
        w.allreduce(Payload::from_f64s(&mine)).to_f64s()
    })
    .unwrap();
    for i in 0..n_elems {
        let want: f64 = (0..p).map(|r| (r * n_elems + i) as f64).sum();
        for r in 0..p {
            assert!(
                (out.results[r][i] - want).abs() < 1e-9,
                "allreduce p={p} rank {r} elem {i}"
            );
        }
    }
}

#[test]
fn allreduce_small_and_large() {
    for p in [1, 2, 3, 4, 5, 8] {
        allreduce_case(p, 4);
    }
    for p in [2, 3, 4, 6, 8] {
        allreduce_case(p, 8 * 1024);
    }
}

#[test]
fn scatter_gather_roundtrip() {
    for p in [2, 3, 4, 5, 8] {
        let n = 64 * p;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect = data.clone();
        let out = run(cfg(p, 2), move |rc: RankCtx| {
            let w = rc.world();
            let payload = (rc.rank() == 0).then(|| Payload::from_f64s(&data));
            let chunk = w.scatter(0, payload, n * 8);
            let back = w.gather(0, chunk, n * 8);
            match back {
                Some(b) => b.to_f64s() == expect,
                None => true,
            }
        })
        .unwrap();
        assert!(out.results.iter().all(|&ok| ok), "scatter/gather p={p}");
    }
}

#[test]
fn allgather_assembles_in_order() {
    for p in [2, 3, 4, 7] {
        let out = run(cfg(p, 2), move |rc: RankCtx| {
            let w = rc.world();
            // chunk_bounds(8p, p): each rank owns one f64.
            let mine = Payload::from_f64s(&[rc.rank() as f64]);
            w.allgather(mine, p * 8).to_f64s()
        })
        .unwrap();
        let want: Vec<f64> = (0..p).map(|i| i as f64).collect();
        for r in 0..p {
            assert_eq!(out.results[r], want, "allgather p={p} rank {r}");
        }
    }
}

#[test]
fn barrier_synchronizes_clocks() {
    let out = run(cfg(4, 2), |rc: RankCtx| {
        let w = rc.world();
        // Rank 2 is late.
        if rc.rank() == 2 {
            rc.advance(ovcomm_simnet::SimDur::from_millis(3));
        }
        w.barrier();
        rc.now().as_secs_f64()
    })
    .unwrap();
    for r in 0..4 {
        assert!(
            out.results[r] >= 3e-3,
            "rank {r} left the barrier at {} before the straggler arrived",
            out.results[r]
        );
    }
}

// ---------------------------------------------------------------------
// Nonblocking collectives.
// ---------------------------------------------------------------------

#[test]
fn ibcast_and_ireduce_complete_with_correct_data() {
    let out = run(cfg(4, 2), |rc: RankCtx| {
        let w = rc.world();
        let data = (rc.rank() == 0).then(|| Payload::from_f64s(&[5.0, 6.0]));
        let rb = w.ibcast(0, data, 16);
        let got = w.wait(&rb).to_f64s();
        let rr = w.ireduce(0, Payload::from_f64s(&[rc.rank() as f64]));
        let red = w.wait(&rr).map(|p| p.to_f64s());
        (got, red)
    })
    .unwrap();
    for r in 0..4 {
        assert_eq!(out.results[r].0, vec![5.0, 6.0]);
    }
    assert_eq!(out.results[0].1.as_ref().unwrap(), &vec![6.0]);
    assert!(out.results[1].1.is_none());
}

#[test]
fn nonblocking_overlap_beats_blocking_bcast() {
    // The paper's Fig. 5 comparison on the calibrated profile: broadcasting
    // n bytes as one blocking call vs. N_DUP=4 pipelined ibcasts of n/4 on
    // duplicated communicators. Overlap must win in the bandwidth-bound
    // regime.
    let n = 8 << 20; // 8 MB, the paper's Fig. 6 size
    let profile = || MachineProfile::stampede2_skylake();
    let blocking = run(SimConfig::natural(4, 1, profile()), move |rc: RankCtx| {
        let w = rc.world();
        let data = (rc.rank() == 0).then_some(Payload::Phantom(n));
        let _ = w.bcast(0, data, n);
    })
    .unwrap()
    .makespan;
    let overlapped = run(SimConfig::natural(4, 1, profile()), move |rc: RankCtx| {
        let w = rc.world();
        let comms = w.dup_n(4);
        let chunk = n / 4;
        let reqs: Vec<_> = comms
            .iter()
            .map(|c| {
                c.ibcast(
                    0,
                    (rc.rank() == 0).then_some(Payload::Phantom(chunk)),
                    chunk,
                )
            })
            .collect();
        for (c, r) in comms.iter().zip(&reqs) {
            let _ = c.wait(r);
        }
    })
    .unwrap()
    .makespan;
    assert!(
        overlapped < blocking,
        "N_DUP=4 pipelined ibcasts ({overlapped}) should beat one blocking bcast ({blocking})"
    );
}

#[test]
fn nonblocking_overlap_beats_blocking_reduce() {
    // Same comparison for the reduction (the paper's slowest collective:
    // blocking 8 MB reduce ≈ 4x slower than broadcast).
    let n = 8 << 20;
    let profile = || MachineProfile::stampede2_skylake();
    let blocking = run(SimConfig::natural(4, 1, profile()), move |rc: RankCtx| {
        let w = rc.world();
        let _ = w.reduce(0, Payload::Phantom(n));
    })
    .unwrap()
    .makespan;
    let overlapped = run(SimConfig::natural(4, 1, profile()), move |rc: RankCtx| {
        let w = rc.world();
        let comms = w.dup_n(4);
        let chunk = n / 4;
        let reqs: Vec<_> = comms
            .iter()
            .map(|c| c.ireduce(0, Payload::Phantom(chunk)))
            .collect();
        for (c, r) in comms.iter().zip(&reqs) {
            let _ = c.wait(r);
        }
    })
    .unwrap()
    .makespan;
    assert!(
        overlapped < blocking,
        "N_DUP=4 pipelined ireduces ({overlapped}) should beat one blocking reduce ({blocking})"
    );
}

#[test]
fn ibarrier_with_test_and_sleep_poll() {
    // The paper's PPN sleep mechanism: a rank polls an ibarrier with
    // usleep(10ms) while the others delay entering it.
    let out = run(cfg(3, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let req = w.ibarrier();
            let mut polls = 0;
            while !w.test(&req) {
                rc.sleep(ovcomm_simnet::SimDur::from_millis(10));
                polls += 1;
                assert!(polls < 100_000, "ibarrier never completed");
            }
            w.wait(&req);
            polls
        } else {
            rc.advance(ovcomm_simnet::SimDur::from_millis(35));
            let req = w.ibarrier();
            w.wait(&req);
            0
        }
    })
    .unwrap();
    // Rank 0 must have polled ~3-4 times (35ms / 10ms).
    assert!(
        (3..=5).contains(&out.results[0]),
        "polls = {}",
        out.results[0]
    );
}

// ---------------------------------------------------------------------
// Communicator management.
// ---------------------------------------------------------------------

#[test]
fn split_builds_row_and_column_communicators() {
    // 2x3 mesh: rows {0,1,2},{3,4,5}; cols {0,3},{1,4},{2,5}.
    let out = run(cfg(6, 2), |rc: RankCtx| {
        let w = rc.world();
        let me = rc.rank();
        let (row, col) = (me / 3, me % 3);
        let row_comm = w.split(row as i64, col as u64).unwrap();
        let col_comm = w.split(col as i64, row as u64).unwrap();
        // Row-wise allreduce of rank → sum of world ranks in my row.
        let rsum = row_comm
            .allreduce(Payload::from_f64s(&[me as f64]))
            .to_f64s()[0];
        let csum = col_comm
            .allreduce(Payload::from_f64s(&[me as f64]))
            .to_f64s()[0];
        (row_comm.size(), col_comm.size(), rsum, csum)
    })
    .unwrap();
    for me in 0..6 {
        let (rs, cs, rsum, csum) = out.results[me];
        assert_eq!(rs, 3);
        assert_eq!(cs, 2);
        let row = me / 3;
        let want_r: f64 = (0..3).map(|c| (row * 3 + c) as f64).sum();
        let want_c = (me % 3) as f64 * 2.0 + 3.0; // col + (col+3)
        assert_eq!(rsum, want_r, "rank {me} row sum");
        assert_eq!(csum, want_c, "rank {me} col sum");
    }
}

#[test]
fn split_negative_color_excludes() {
    let out = run(cfg(4, 2), |rc: RankCtx| {
        let w = rc.world();
        let color = if rc.rank() < 2 { 0 } else { -1 };
        let sub = w.split(color, rc.rank() as u64);
        match sub {
            Some(c) => {
                // The included half can still communicate.
                c.barrier();
                c.size() as i64
            }
            None => -1,
        }
    })
    .unwrap();
    assert_eq!(out.results, vec![2, 2, -1, -1]);
}

#[test]
fn dup_creates_independent_context() {
    // Same-tag traffic on parent and dup must not cross-match.
    let out = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let d = w.dup();
        if rc.rank() == 0 {
            w.send(1, 0, Payload::from_f64s(&[1.0]));
            d.send(1, 0, Payload::from_f64s(&[2.0]));
            (0.0, 0.0)
        } else {
            // Receive dup first.
            let on_dup = d.recv(0, 0).to_f64s()[0];
            let on_parent = w.recv(0, 0).to_f64s()[0];
            (on_parent, on_dup)
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (1.0, 2.0));
}

// ---------------------------------------------------------------------
// Failure modes and determinism.
// ---------------------------------------------------------------------

#[test]
fn mismatched_recv_deadlocks_cleanly() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 1 {
            let _ = w.recv(0, 99); // nobody sends tag 99
        }
    });
    match result {
        Err(SimError::Deadlock { .. }) => {}
        other => panic!(
            "expected deadlock, got {:?}",
            other.map(|o| o.makespan).map_err(|e| e.to_string())
        ),
    }
}

#[test]
fn runs_are_deterministic() {
    let go = || {
        run(cfg(8, 4), |rc: RankCtx| {
            let w = rc.world();
            // A mix of traffic: collective + p2p ring.
            let s = w
                .allreduce(Payload::from_f64s(&[rc.rank() as f64]))
                .to_f64s()[0];
            let right = (rc.rank() + 1) % rc.nranks();
            let left = (rc.rank() + rc.nranks() - 1) % rc.nranks();
            let got = w.sendrecv(right, left, 3, Payload::from_f64s(&[s]));
            let req = w.ibcast(
                0,
                (rc.rank() == 0).then_some(Payload::Phantom(1 << 20)),
                1 << 20,
            );
            let _ = w.wait(&req);
            (rc.now().as_nanos(), got.len())
        })
        .unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.makespan, b.makespan, "makespans differ between runs");
    for r in 0..8 {
        assert_eq!(a.results[r], b.results[r], "rank {r} differs");
        assert_eq!(a.end_times[r], b.end_times[r]);
    }
    assert_eq!(a.inter_node_bytes, b.inter_node_bytes);
    assert_eq!(a.messages, b.messages);
}

#[test]
fn traffic_statistics_distinguish_intra_and_inter() {
    // 2 ranks on one node: all traffic intra. 2 ranks on two nodes: inter.
    let intra = run(cfg(2, 2), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 0, Payload::Phantom(1000));
        } else {
            let _ = w.recv(0, 0);
        }
    })
    .unwrap();
    assert_eq!(intra.intra_node_bytes, 1000);
    assert_eq!(intra.inter_node_bytes, 0);
    let inter = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            w.send(1, 0, Payload::Phantom(1000));
        } else {
            let _ = w.recv(0, 0);
        }
    })
    .unwrap();
    assert_eq!(inter.inter_node_bytes, 1000);
    assert_eq!(inter.intra_node_bytes, 0);
}

#[test]
fn phantom_and_real_payloads_take_identical_virtual_time() {
    let go = |phantom: bool| {
        run(cfg(4, 1), move |rc: RankCtx| {
            let w = rc.world();
            let n = 256 * 1024usize;
            let data = (rc.rank() == 0).then(|| {
                if phantom {
                    Payload::Phantom(n)
                } else {
                    Payload::from_f64s(&vec![1.0; n / 8])
                }
            });
            let _ = w.bcast(0, data, n);
            // A reduction too (phantom reduction is free arithmetic but the
            // same modeled time).
            let contrib = if phantom {
                Payload::Phantom(n)
            } else {
                Payload::from_f64s(&vec![2.0; n / 8])
            };
            let _ = w.reduce(0, contrib);
            rc.now().as_nanos()
        })
        .unwrap()
    };
    let real = go(false);
    let phantom = go(true);
    assert_eq!(real.makespan, phantom.makespan);
    for r in 0..4 {
        assert_eq!(real.end_times[r], phantom.end_times[r], "rank {r}");
    }
}
