//! Cross-algorithm equivalence property tests for the compiled collective
//! plans: every `CollPlan` builder, forced through the selector, must
//! produce exactly the reference result for random communicator sizes
//! (including non-powers-of-two), roots and real payloads — and every
//! compiled plan shape must be statically lint-clean. The runs use the
//! default Strict dynamic verification, so a dynamic finding fails the
//! `run(...)` itself.

use proptest::prelude::*;

use ovcomm_simmpi::plan::{self, chunk_bounds, CollAlgo};
use ovcomm_simmpi::{run, CollKind, CollSelector, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn cfg(p: usize, algo: CollAlgo) -> SimConfig {
    SimConfig::natural(p, 2, MachineProfile::test_profile())
        .with_coll_select(CollSelector::default().force(algo))
}

/// Compile the plans for one shape and require zero static-lint findings.
fn assert_lint_clean(kind: CollKind, algo: CollAlgo, p: usize, n: usize, root: usize) {
    let plans = plan::build_all(kind, algo, p, n, root);
    let findings = plan::lint_plans(&plans);
    assert!(
        findings.is_empty(),
        "{algo} p={p} n={n} root={root}: {findings:?}"
    );
}

/// Deterministic pseudo-random byte payload.
fn test_bytes(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 251) as u8)
        .collect()
}

proptest! {
    // Each case runs one simulation per algorithm of the collective;
    // keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_all_algorithms_deliver_exact_data(
        p in 1usize..9,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 7, 600, 4097, 9000]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Bcast) {
            assert_lint_clean(CollKind::Bcast, algo, p, n, root);
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let payload = (rc.rank() == root).then(|| Payload::from_vec(data.clone()));
                w.bcast(root, payload, n) == expect
            }).unwrap();
            prop_assert!(out.results.iter().all(|&ok| ok), "{algo} p={p} n={n} root={root}");
        }
    }

    #[test]
    fn reduce_all_algorithms_sum_exactly(
        p in 1usize..9,
        root_pick in 0usize..64,
        n_elems in prop::sample::select(vec![1usize, 65, 513, 1200]),
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Reduce) {
            assert_lint_clean(CollKind::Reduce, algo, p, n_elems * 8, root);
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let mine: Vec<f64> = (0..n_elems)
                    .map(|i| (rc.rank() + 1) as f64 * 0.5 + i as f64)
                    .collect();
                w.reduce(root, Payload::from_f64s(&mine)).map(|r| r.to_f64s())
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                if r == root {
                    let res = res.as_ref().unwrap();
                    prop_assert_eq!(res.len(), n_elems);
                    for (i, &x) in res.iter().enumerate() {
                        let want: f64 = (1..=p).map(|k| k as f64 * 0.5 + i as f64).sum();
                        prop_assert!(
                            (x - want).abs() < 1e-9,
                            "{} p={} root={} elem {}: {} vs {}", algo, p, root, i, x, want
                        );
                    }
                } else {
                    prop_assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn allreduce_all_algorithms_sum_exactly(
        p in 1usize..9,
        n_elems in prop::sample::select(vec![1usize, 63, 800, 1111]),
    ) {
        for algo in CollAlgo::for_kind(CollKind::Allreduce) {
            assert_lint_clean(CollKind::Allreduce, algo, p, n_elems * 8, 0);
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let mine: Vec<f64> = (0..n_elems)
                    .map(|i| rc.rank() as f64 - i as f64 * 0.25)
                    .collect();
                w.allreduce(Payload::from_f64s(&mine)).to_f64s()
            }).unwrap();
            for res in &out.results {
                prop_assert_eq!(res.len(), n_elems);
                for (i, &x) in res.iter().enumerate() {
                    let want: f64 = (0..p).map(|k| k as f64 - i as f64 * 0.25).sum();
                    prop_assert!(
                        (x - want).abs() < 1e-9,
                        "{} p={} elem {}: {} vs {}", algo, p, i, x, want
                    );
                }
            }
        }
    }

    #[test]
    fn gather_all_algorithms_collect_in_rank_order(
        p in 1usize..9,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 9, 1000, 4097]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Gather) {
            assert_lint_clean(CollKind::Gather, algo, p, n, root);
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let b = chunk_bounds(n, p);
                // Chunks are owned in root-relative virtual-rank order.
                let v = (rc.rank() + p - root) % p;
                let mine = Payload::from_vec(data[b[v]..b[v + 1]].to_vec());
                w.gather(root, mine, n)
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                if r == root {
                    prop_assert_eq!(res.as_ref(), Some(&expect), "{} p={} n={} root={}", algo, p, n, root);
                } else {
                    prop_assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_rank_chunks(
        p in 1usize..9,
        root_pick in 0usize..64,
        n in prop::sample::select(vec![1usize, 9, 1000, 4097]),
        seed in 0u64..1000,
    ) {
        let root = root_pick % p;
        for algo in CollAlgo::for_kind(CollKind::Scatter) {
            assert_lint_clean(CollKind::Scatter, algo, p, n, root);
            let data = test_bytes(n, seed);
            let reference = data.clone();
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let payload = (rc.rank() == root).then(|| Payload::from_vec(data.clone()));
                w.scatter(root, payload, n)
            }).unwrap();
            let b = chunk_bounds(n, p);
            for (r, res) in out.results.iter().enumerate() {
                // Rank r receives the chunk of its root-relative virtual rank.
                let v = (r + p - root) % p;
                let want = Payload::from_vec(reference[b[v]..b[v + 1]].to_vec());
                prop_assert_eq!(res, &want, "{} p={} n={} root={} rank {}", algo, p, n, root, r);
            }
        }
    }

    #[test]
    fn allgather_delivers_full_data_everywhere(
        p in 1usize..9,
        n in prop::sample::select(vec![1usize, 9, 1000, 4097]),
        seed in 0u64..1000,
    ) {
        for algo in CollAlgo::for_kind(CollKind::Allgather) {
            assert_lint_clean(CollKind::Allgather, algo, p, n, 0);
            let data = test_bytes(n, seed);
            let expect = Payload::from_vec(data.clone());
            let out = run(cfg(p, algo), move |rc: RankCtx| {
                let w = rc.world();
                let b = chunk_bounds(n, p);
                let me = rc.rank();
                let mine = Payload::from_vec(data[b[me]..b[me + 1]].to_vec());
                w.allgather(mine, n)
            }).unwrap();
            for (r, res) in out.results.iter().enumerate() {
                prop_assert_eq!(res, &expect, "{} p={} n={} rank {}", algo, p, n, r);
            }
        }
    }

    #[test]
    fn barrier_is_lint_clean_and_verifier_clean(p in 1usize..9) {
        for algo in CollAlgo::for_kind(CollKind::Barrier) {
            assert_lint_clean(CollKind::Barrier, algo, p, 0, 0);
            let out = run(cfg(p, algo), |rc: RankCtx| {
                rc.world().barrier();
            }).unwrap();
            prop_assert_eq!(out.verify.errors(), 0);
        }
    }
}
