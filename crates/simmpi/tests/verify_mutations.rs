//! Mutation suite for the communication-correctness verifier: each test
//! seeds one MPI-usage bug into an otherwise-legal program and asserts the
//! verifier catches it in `Strict` mode with a diagnostic that names the
//! offending rank, communicator, and operation.

use ovcomm_simmpi::{run, Finding, Payload, RankCtx, SimConfig, SimError, SimOutput, VerifyMode};
use ovcomm_simnet::{MachineProfile, SimDur};

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

/// The run must fail verification; returns the rendered findings.
fn expect_findings<T>(result: Result<SimOutput<T>, SimError>) -> String {
    match result {
        Err(SimError::Verification { findings }) => render(&findings),
        Ok(_) => panic!("run passed verification; expected findings"),
        Err(other) => panic!("expected a verification failure, got: {other}"),
    }
}

fn render(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// Bug class 1: collective root mismatch
// ---------------------------------------------------------------------

#[test]
fn mutation_root_mismatch_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        // Mutation: every rank believes it is the broadcast root. The
        // payload is small enough to complete eagerly, so the run itself
        // succeeds — only the verifier sees the divergence.
        let root = rc.rank();
        let _ = w.bcast(root, Some(Payload::Phantom(64)), 64);
    });
    let msg = expect_findings(result);
    assert!(msg.contains("coll-mismatch"), "{msg}");
    assert!(msg.contains("root=0") && msg.contains("root=1"), "{msg}");
    assert!(msg.contains("rank 0") && msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("comm 0"), "{msg}");
}

// ---------------------------------------------------------------------
// Bug class 2: receive request dropped without wait
// ---------------------------------------------------------------------

#[test]
fn mutation_leaked_recv_request_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let r = w.isend(1, 5, Payload::Phantom(64));
            w.wait(&r);
        } else {
            // Mutation: the receive is posted and matched but the request
            // handle is dropped without MPI_Wait/MPI_Test — the payload is
            // lost.
            let _dropped = w.irecv(0, 5);
        }
        w.barrier();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("request-leak"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(
        msg.contains("MPI_Irecv(from rank 0, tag=5) on comm 0"),
        "{msg}"
    );
}

// ---------------------------------------------------------------------
// Bug class 3: reordered collectives on duplicated communicators
// ---------------------------------------------------------------------

#[test]
fn mutation_reordered_collectives_on_dup_comms() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let a = w.dup();
        let b = w.dup();
        let data = |rank: usize| (rank == 0).then_some(Payload::Phantom(64));
        if rc.rank() == 0 {
            let _ = a.bcast(0, data(0), 64);
            let _ = b.bcast(0, data(0), 64);
        } else {
            // Mutation: rank 1 issues the same collectives in the opposite
            // communicator order. Both payloads are eager, so the run
            // completes — on a rendezvous path this interleave deadlocks.
            let _ = b.bcast(0, data(1), 64);
            let _ = a.bcast(0, data(1), 64);
        }
    });
    let msg = expect_findings(result);
    assert!(msg.contains("cross-comm-order"), "{msg}");
    assert!(msg.contains("rank 0") && msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("MPI_Bcast"), "{msg}");
}

// ---------------------------------------------------------------------
// Bug class 4: point-to-point tag mismatch (deadlock diagnosis)
// ---------------------------------------------------------------------

#[test]
fn mutation_tag_mismatch_yields_deadlock_report() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            let r = w.isend(1, 7, Payload::Phantom(64));
            w.wait(&r);
        } else {
            // Mutation: expects tag 8, but the sender used tag 7.
            let _ = w.recv(0, 8);
        }
    });
    match result {
        Err(SimError::Deadlock { report }) => {
            let msg = report.to_string();
            assert!(msg.contains("rank 1"), "{msg}");
            assert!(msg.contains("tag=8"), "{msg}");
            assert!(msg.contains("comm 0"), "{msg}");
        }
        Ok(_) => panic!("tag mismatch must deadlock"),
        Err(other) => panic!("expected a deadlock report, got: {other}"),
    }
}

// ---------------------------------------------------------------------
// Bug class 5: send request dropped (buffer reused without wait)
// ---------------------------------------------------------------------

#[test]
fn mutation_dropped_send_request_is_flagged() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 0 {
            // Mutation: the send buffer is handed back to the application
            // without waiting for the request — legal-looking because the
            // eager protocol buffers it, still an MPI usage error.
            let _dropped = w.isend(1, 3, Payload::Phantom(64));
        } else {
            let _ = w.recv(0, 3);
        }
        w.barrier();
    });
    let msg = expect_findings(result);
    assert!(msg.contains("request-leak"), "{msg}");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(
        msg.contains("MPI_Isend(64B to rank 1, tag=3) on comm 0"),
        "{msg}"
    );
}

// ---------------------------------------------------------------------
// Bug class 6: a rank skips a collective (multiple-PPN sleep bug)
// ---------------------------------------------------------------------

#[test]
fn mutation_rank_skipping_collective_is_flagged() {
    let result = run(cfg(3, 3), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() == 2 {
            // Mutation: this rank "sleeps" through the broadcast — the
            // failure mode of the paper's multiple-PPN sleep mechanism when
            // a sleeping rank is left out of a collective.
            rc.advance(SimDur::from_micros(50));
        } else {
            let data = (rc.rank() == 0).then_some(Payload::Phantom(64));
            let _ = w.bcast(0, data, 64);
        }
    });
    let msg = expect_findings(result);
    assert!(msg.contains("coll-count"), "{msg}");
    assert!(msg.contains("rank 2"), "{msg}");
    assert!(msg.contains("comm 0"), "{msg}");
}

// ---------------------------------------------------------------------
// Deadlock cycle extraction
// ---------------------------------------------------------------------

#[test]
fn forced_deadlock_reports_wait_for_cycle() {
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        // Classic head-to-head: each rank receives first.
        let other = 1 - rc.rank();
        let _ = w.recv(other, 0);
    });
    match result {
        Err(SimError::Deadlock { report }) => {
            let msg = report.to_string();
            assert!(msg.contains("wait-for cycle"), "{msg}");
            assert!(
                msg.contains("rank 0 -> rank 1 -> rank 0")
                    || msg.contains("rank 1 -> rank 0 -> rank 1"),
                "{msg}"
            );
            assert!(msg.contains("MPI_Irecv"), "{msg}");
        }
        Ok(_) => panic!("mutual receives must deadlock"),
        Err(other) => panic!("expected a deadlock report, got: {other}"),
    }
}

// ---------------------------------------------------------------------
// Mode semantics
// ---------------------------------------------------------------------

#[test]
fn warn_mode_reports_but_does_not_fail() {
    let result = run(cfg(2, 1).with_verify(VerifyMode::Warn), |rc: RankCtx| {
        let w = rc.world();
        let root = rc.rank();
        let _ = w.bcast(root, Some(Payload::Phantom(64)), 64);
    });
    let out = result.expect("Warn mode must not fail the run");
    assert!(
        out.verify.errors() > 0,
        "the root mismatch must still be reported in the output"
    );
}

#[test]
fn off_mode_records_nothing() {
    let result = run(cfg(2, 1).with_verify(VerifyMode::Off), |rc: RankCtx| {
        let w = rc.world();
        let root = rc.rank();
        let _ = w.bcast(root, Some(Payload::Phantom(64)), 64);
    });
    let out = result.expect("Off mode must not fail the run");
    assert!(out.verify.findings.is_empty());
}
