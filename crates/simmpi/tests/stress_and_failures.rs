//! Stress and failure-mode tests: many ranks, deep nonblocking pipelines,
//! mixed traffic, mismatched collectives, and scheduling-independent
//! determinism under load.

use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig, SimError};
use ovcomm_simnet::{MachineProfile, SimDur};

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

#[test]
fn many_ranks_all_to_all_ring_traffic() {
    // 96 ranks exchanging around a ring with staggered compute.
    let n = 96;
    let out = run(cfg(n, 8), move |rc: RankCtx| {
        let w = rc.world();
        let me = rc.rank();
        rc.advance(SimDur::from_micros((me as u64 % 7) * 3));
        let mut acc = me as f64;
        for step in 0..4 {
            let right = (me + 1 + step) % n;
            let left = (me + n - 1 - step) % n;
            let got = w.sendrecv(right, left, step as u32, Payload::from_f64s(&[acc]));
            acc += got.to_f64s()[0];
        }
        acc
    })
    .unwrap();
    assert_eq!(out.results.len(), n);
    // Conservation: the sum of all accumulators is deterministic and
    // exceeds the initial sum (every rank added four contributions).
    let total: f64 = out.results.iter().sum();
    assert!(total > (0..n).map(|r| r as f64).sum::<f64>());
}

#[test]
fn deep_nonblocking_pipeline_completes() {
    // 64 outstanding ibcasts on 64 duplicated communicators at once.
    let out = run(cfg(8, 4), |rc: RankCtx| {
        let w = rc.world();
        let comms = w.dup_n(64);
        let reqs: Vec<_> = comms
            .iter()
            .enumerate()
            .map(|(c, comm)| {
                let data = (rc.rank() == c % 8).then(|| Payload::from_f64s(&[c as f64]));
                comm.ibcast(c % 8, data, 8)
            })
            .collect();
        let mut sum = 0.0;
        for (c, r) in reqs.iter().enumerate() {
            sum += comms[c].wait(r).to_f64s()[0];
        }
        sum
    })
    .unwrap();
    let want: f64 = (0..64).map(|c| c as f64).sum();
    for s in &out.results {
        assert_eq!(*s, want);
    }
}

#[test]
fn mixed_collective_and_p2p_traffic_under_load() {
    let out = run(cfg(27, 3), |rc: RankCtx| {
        let w = rc.world();
        let me = rc.rank();
        // Interleave: barrier, allreduce, a p2p shift, an ibcast.
        w.barrier();
        let s = w.allreduce(Payload::from_f64s(&[me as f64])).to_f64s()[0];
        let got = w.sendrecv((me + 1) % 27, (me + 26) % 27, 9, Payload::from_f64s(&[s]));
        let req = w.ibcast(3, (me == 3).then(|| Payload::from_f64s(&[7.0])), 8);
        let b = w.wait(&req).to_f64s()[0];
        got.to_f64s()[0] + b
    })
    .unwrap();
    let total: f64 = (0..27).map(|r| r as f64).sum();
    for s in &out.results {
        assert_eq!(*s, total + 7.0);
    }
}

#[test]
fn mismatched_bcast_roots_deadlock_cleanly() {
    // Rank 0 broadcasts as root 0; rank 1 expects root 1: classic user
    // error → deadlock, not a hang.
    let result = run(cfg(2, 1), |rc: RankCtx| {
        let w = rc.world();
        let root = rc.rank(); // everyone thinks they're the root
        let data = Some(Payload::Phantom(1 << 20));
        let _ = w.bcast(root, data, 1 << 20);
    });
    assert!(matches!(result, Err(SimError::Deadlock { .. })));
}

#[test]
fn missing_collective_participant_deadlocks_cleanly() {
    let result = run(cfg(3, 1), |rc: RankCtx| {
        let w = rc.world();
        if rc.rank() != 2 {
            // Rank 2 never joins the barrier.
            w.barrier();
        }
    });
    assert!(matches!(result, Err(SimError::Deadlock { .. })));
}

#[test]
fn rank_panic_is_reported_with_rank_and_message() {
    let result = run(cfg(4, 2), |rc: RankCtx| {
        if rc.rank() == 2 {
            panic!("synthetic failure in rank code");
        }
        // Other ranks deadlock waiting for rank 2.
        rc.world().barrier();
    });
    match result {
        Err(SimError::RankPanic { rank, message }) => {
            assert_eq!(rank, 2);
            assert!(message.contains("synthetic failure"), "message: {message}");
        }
        Err(SimError::Deadlock { .. }) => {
            // Acceptable alternative: the deadlock can be detected first,
            // but the panic should normally win because it is collected
            // before the deadlock scan of join results.
            panic!("panic should be reported in preference to the induced deadlock");
        }
        Err(other) => panic!("unexpected error kind: {other}"),
        Ok(_) => panic!("run must not succeed"),
    }
}

#[test]
fn determinism_under_heavy_oversubscription() {
    // 128 ranks on 4 nodes: heavy thread oversubscription of the host —
    // virtual results must not care.
    let go = || {
        run(cfg(128, 32), |rc: RankCtx| {
            let w = rc.world();
            let s = w
                .allreduce(Payload::from_f64s(&[rc.rank() as f64]))
                .to_f64s()[0];
            let req = w.ibarrier();
            w.wait(&req);
            (s, rc.now().as_nanos())
        })
        .unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn zero_byte_collectives_work() {
    let out = run(cfg(5, 1), |rc: RankCtx| {
        let w = rc.world();
        let b = w.bcast(0, (rc.rank() == 0).then(|| Payload::from_f64s(&[])), 0);
        let r = w.reduce(0, Payload::from_f64s(&[]));
        let a = w.allreduce(Payload::from_f64s(&[]));
        (b.len(), r.map(|p| p.len()), a.len())
    })
    .unwrap();
    for (r, res) in out.results.iter().enumerate() {
        assert_eq!(res.0, 0);
        assert_eq!(res.1, (r == 0).then_some(0));
        assert_eq!(res.2, 0);
    }
}

#[test]
fn single_rank_universe_is_trivial_but_valid() {
    let out = run(cfg(1, 1), |rc: RankCtx| {
        let w = rc.world();
        let b = w.bcast(0, Some(Payload::from_f64s(&[3.0])), 8);
        let r = w.reduce(0, Payload::from_f64s(&[4.0])).unwrap();
        w.barrier();
        b.to_f64s()[0] + r.to_f64s()[0]
    })
    .unwrap();
    assert_eq!(out.results[0], 7.0);
}
