//! Differential tests between the two execution modes: the event-driven
//! fiber scheduler (default) and the legacy thread-per-rank mode must
//! produce *bit-identical* simulations — same per-rank results, same
//! virtual end times, same message counts, same verification findings.
//! Both run under the same serialized engine and release actors in the
//! same `(time, id)` order, so any divergence is a scheduler bug.
//!
//! Also hosts the large-scale smoke test: a 10,000-rank broadcast +
//! allreduce under `VerifyMode::Strict`, which only the fiber mode can
//! run (10k OS threads would exhaust the host).

use std::sync::Arc;

use ovcomm_simmpi::{run, ExecMode, Payload, RankCtx, SimConfig, SimOutput, VerifyMode};
use ovcomm_simnet::MachineProfile;

/// Run the same program in both modes and assert the outputs match bit
/// for bit.
fn assert_modes_identical<T, F>(mk_cfg: impl Fn() -> SimConfig, body: F) -> SimOutput<T>
where
    T: Send + PartialEq + std::fmt::Debug + 'static,
    F: Fn(RankCtx) -> T + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let run_mode = |exec: ExecMode| {
        let b = body.clone();
        run(mk_cfg().with_exec(exec), move |rc: RankCtx| b(rc))
            .unwrap_or_else(|e| panic!("{exec:?} run failed: {e}"))
    };
    let ev = run_mode(ExecMode::EventDriven);
    let th = run_mode(ExecMode::Threads);
    assert_eq!(ev.results, th.results, "per-rank results diverge");
    assert_eq!(ev.end_times, th.end_times, "virtual end times diverge");
    assert_eq!(ev.makespan, th.makespan, "makespan diverges");
    assert_eq!(ev.messages, th.messages, "message counts diverge");
    assert_eq!(
        ev.inter_node_bytes, th.inter_node_bytes,
        "inter-node bytes diverge"
    );
    assert_eq!(
        ev.intra_node_bytes, th.intra_node_bytes,
        "intra-node bytes diverge"
    );
    let render = |o: &SimOutput<T>| -> Vec<String> {
        o.verify.findings.iter().map(|f| f.to_string()).collect()
    };
    assert_eq!(render(&ev), render(&th), "verify findings diverge");
    ev
}

fn cfg(nranks: usize, ppn: usize) -> SimConfig {
    SimConfig::natural(nranks, ppn, MachineProfile::test_profile())
}

/// Deterministic per-rank payload whose reduction is exactly
/// representable, so sums are bit-stable regardless of order anyway; the
/// tests still compare raw bits.
fn contrib(rank: usize, len: usize) -> Payload {
    Payload::from_f64s(
        &(0..len)
            .map(|i| (rank * len + i) as f64)
            .collect::<Vec<_>>(),
    )
}

#[test]
fn p2p_ring_is_bit_identical_across_modes() {
    assert_modes_identical(
        || cfg(6, 2),
        |rc: RankCtx| {
            let w = rc.world();
            let p = rc.nranks();
            let next = (rc.rank() + 1) % p;
            let prev = (rc.rank() + p - 1) % p;
            let got = w.sendrecv(next, prev, 7, contrib(rc.rank(), 64));
            (
                got.to_f64s()
                    .iter()
                    .fold(0u64, |a, x| a.wrapping_add(x.to_bits())),
                rc.now(),
            )
        },
    );
}

#[test]
fn blocking_collectives_are_bit_identical_across_modes() {
    assert_modes_identical(
        || cfg(8, 2),
        |rc: RankCtx| {
            let w = rc.world();
            let me = rc.rank();
            let data = (me == 0).then(|| contrib(1, 32));
            let b = w.bcast(0, data, 32 * 8);
            let red = w.reduce(2, contrib(me, 16));
            let all = w.allreduce(contrib(me, 16));
            w.barrier();
            let sc = w.scatter(
                1,
                (me == 1).then(|| contrib(3, 8 * rc.nranks())),
                8 * 8 * rc.nranks(),
            );
            let ga = w.gather(0, contrib(me, 8), 8 * 8 * rc.nranks());
            let ag = w.allgather(contrib(me, 4), 4 * 8 * rc.nranks());
            let bits = |p: &Payload| {
                p.to_f64s()
                    .iter()
                    .fold(0u64, |a, x| a.wrapping_add(x.to_bits()))
            };
            (
                bits(&b)
                    .wrapping_add(red.as_ref().map_or(0, bits))
                    .wrapping_add(bits(&all))
                    .wrapping_add(bits(&sc))
                    .wrapping_add(ga.as_ref().map_or(0, bits))
                    .wrapping_add(bits(&ag)),
                rc.now(),
            )
        },
    );
}

#[test]
fn nonblocking_collectives_are_bit_identical_across_modes() {
    assert_modes_identical(
        || cfg(8, 4),
        |rc: RankCtx| {
            let w = rc.world();
            let me = rc.rank();
            // Two overlapping nonblocking collectives on dup'd comms plus
            // an ibarrier: exercises op actors in both modes.
            let c1 = w.dup();
            let c2 = w.dup();
            let r1 = c1.ibcast(0, (me == 0).then(|| contrib(2, 1024)), 1024 * 8);
            let r2 = c2.iallreduce(contrib(me, 512));
            let rb = w.ibarrier();
            let a = c1.wait(&r1);
            let b = c2.wait(&r2);
            w.wait(&rb);
            let bits = |p: &Payload| {
                p.to_f64s()
                    .iter()
                    .fold(0u64, |a, x| a.wrapping_add(x.to_bits()))
            };
            (bits(&a).wrapping_add(bits(&b)), rc.now())
        },
    );
}

#[test]
fn split_grid_traffic_is_bit_identical_across_modes() {
    assert_modes_identical(
        || cfg(9, 3),
        |rc: RankCtx| {
            let w = rc.world();
            let me = rc.rank();
            let (row, col) = (me / 3, me % 3);
            let rcomm = w.split(row as i64, col as u64).expect("row comm");
            let ccomm = w.split(3 + col as i64, row as u64).expect("col comm");
            let rsum = rcomm.allreduce(contrib(me, 32));
            let croot = ccomm.reduce(0, rsum);
            let out = ccomm.bcast(0, croot, 32 * 8);
            (
                out.to_f64s()
                    .iter()
                    .fold(0u64, |a, x| a.wrapping_add(x.to_bits())),
                rc.now(),
            )
        },
    );
}

#[test]
fn mixed_p2p_and_nonblocking_under_warn_mode_matches() {
    // Warn mode exercises the verifier event log in both modes without
    // aborting; findings (if any) must render identically.
    assert_modes_identical(
        || cfg(6, 3).with_verify(VerifyMode::Warn),
        |rc: RankCtx| {
            let w = rc.world();
            let me = rc.rank();
            let p = rc.nranks();
            let r = w.ireduce(0, contrib(me, 128));
            let got = w.sendrecv((me + 1) % p, (me + p - 1) % p, 1, contrib(me, 16));
            let red = w.wait(&r);
            let bits = |p: &Payload| {
                p.to_f64s()
                    .iter()
                    .fold(0u64, |a, x| a.wrapping_add(x.to_bits()))
            };
            (
                bits(&got).wrapping_add(red.as_ref().map_or(0, bits)),
                rc.now(),
            )
        },
    );
}

/// The tentpole's scale target: 10,000 ranks in one process, broadcast +
/// allreduce under strict verification (static lint + dynamic recorder;
/// the per-shape model check and the vector-clock race pass gate
/// themselves off at this size). Thread mode cannot run this at all.
#[test]
fn ten_thousand_rank_bcast_allreduce_strict_smoke() {
    let p = 10_000;
    let out = run(
        SimConfig::natural(p, 4, MachineProfile::test_profile())
            .with_verify(VerifyMode::Strict)
            // 256 KiB of stack per fiber keeps the footprint modest.
            .with_fiber_stack(256 << 10),
        move |rc: RankCtx| {
            let w = rc.world();
            let data = (rc.rank() == 0).then(|| Payload::from_f64s(&[42.0; 8]));
            let b = w.bcast(0, data, 8 * 8);
            let s = w.allreduce(Payload::from_f64s(&[1.0]));
            (b.to_f64s()[0], s.to_f64s()[0])
        },
    )
    .expect("10k-rank smoke run");
    assert_eq!(out.results.len(), p);
    for (b, s) in &out.results {
        assert_eq!(*b, 42.0);
        assert_eq!(*s, p as f64);
    }
    assert!(out.makespan.as_nanos() > 0);
}
