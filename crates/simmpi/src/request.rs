//! Nonblocking-operation request handles (the analogue of `MPI_Request`).

use std::sync::Arc;

use parking_lot::Mutex;

use ovcomm_simnet::{ParkCell, SimTime};
use ovcomm_verify::{ReqId, Verifier};

/// Verification bookkeeping attached to a tracked request: the shared
/// recorder and this request's log id. Present only when the run's
/// `VerifyMode` is not `Off`.
///
/// Exposed (hidden) for the `ovcomm-rt` wall-clock backend, which shares
/// the request type so kernels produce identical handles on both backends.
#[doc(hidden)]
pub struct ReqMeta {
    /// The run's shared event recorder.
    pub verifier: Arc<Verifier>,
    /// This request's log id.
    pub id: ReqId,
}

struct ReqInner<T> {
    result: Option<T>,
    completed_at: Option<SimTime>,
    taken: bool,
    waiters: Vec<Arc<ParkCell>>,
    meta: Option<ReqMeta>,
}

impl<T> Drop for ReqInner<T> {
    fn drop(&mut self) {
        // Drop-time leak check: the last handle to this request is gone.
        // Feed the verifier's counters (and the event log) so requests
        // that were never completed, or completed but never taken, don't
        // silently vanish.
        if let Some(m) = &self.meta {
            m.verifier
                .req_dropped(m.id, self.completed_at.is_some(), self.taken);
        }
    }
}

/// A handle to an in-flight nonblocking operation producing a `T`
/// (`Payload` for receives/collectives, `()` for sends and barriers).
///
/// Waiting is done through the owning rank/agent (`Agent::wait`), which
/// advances the rank's virtual clock to the completion time — mirroring
/// `MPI_Wait`.
pub struct Request<T> {
    inner: Arc<Mutex<ReqInner<T>>>,
}

impl<T> Clone for Request<T> {
    fn clone(&self) -> Self {
        Request {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Default for Request<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Request<T> {
    /// A fresh, incomplete request.
    pub fn new() -> Request<T> {
        Request {
            inner: Arc::new(Mutex::new(ReqInner {
                result: None,
                completed_at: None,
                taken: false,
                waiters: Vec::new(),
                meta: None,
            })),
        }
    }

    /// A fresh, incomplete request tracked by the verifier.
    #[doc(hidden)]
    pub fn new_tracked(meta: ReqMeta) -> Request<T> {
        Request {
            inner: Arc::new(Mutex::new(ReqInner {
                result: None,
                completed_at: None,
                taken: false,
                waiters: Vec::new(),
                meta: Some(meta),
            })),
        }
    }

    /// An already-completed request (for degenerate cases, e.g. self-sends
    /// of zero ranks or single-rank collectives).
    pub fn ready(value: T, at: SimTime) -> Request<T> {
        Request {
            inner: Arc::new(Mutex::new(ReqInner {
                result: Some(value),
                completed_at: Some(at),
                taken: false,
                waiters: Vec::new(),
                meta: None,
            })),
        }
    }

    /// The verifier log id, if this request is tracked.
    #[doc(hidden)]
    pub fn verify_id(&self) -> Option<ReqId> {
        self.inner.lock().meta.as_ref().map(|m| m.id)
    }

    /// Mark complete with `value` at virtual time `at`, returning the park
    /// cells of any waiters (the caller must wake them via the engine).
    /// Panics if completed twice.
    #[doc(hidden)]
    pub fn complete(&self, value: T, at: SimTime) -> Vec<Arc<ParkCell>> {
        let mut inner = self.inner.lock();
        assert!(inner.completed_at.is_none(), "request completed twice");
        inner.result = Some(value);
        inner.completed_at = Some(at);
        std::mem::take(&mut inner.waiters)
    }

    /// Nonblocking completion check (the analogue of `MPI_Test`). Under the
    /// engine's quiescence rule, every completion event with a virtual time
    /// at or before the caller's clock has already been processed whenever a
    /// rank thread is running, so a plain flag check is exact.
    pub fn is_complete(&self) -> bool {
        self.inner.lock().completed_at.is_some()
    }

    /// If complete and not yet consumed, take `(value, completion_time)`.
    #[doc(hidden)]
    pub fn try_take(&self) -> Option<(T, SimTime)> {
        let mut inner = self.inner.lock();
        if inner.taken {
            panic!("request waited on twice");
        }
        match (inner.result.take(), inner.completed_at) {
            (Some(v), Some(t)) => {
                inner.taken = true;
                Some((v, t))
            }
            _ => None,
        }
    }

    /// Completion time, if complete (does not consume the result).
    pub fn completed_at(&self) -> Option<SimTime> {
        self.inner.lock().completed_at
    }

    /// Register a waiter cell to be woken on completion. Returns `false`
    /// (and does not register) if the request is already complete.
    #[doc(hidden)]
    pub fn add_waiter(&self, cell: &Arc<ParkCell>) -> bool {
        let mut inner = self.inner.lock();
        if inner.completed_at.is_some() {
            return false;
        }
        if !inner.waiters.iter().any(|w| Arc::ptr_eq(w, cell)) {
            inner.waiters.push(cell.clone());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_take() {
        let r: Request<u32> = Request::new();
        assert!(!r.is_complete());
        assert!(r.try_take().is_none());
        let waiters = r.complete(7, SimTime(100));
        assert!(waiters.is_empty());
        assert!(r.is_complete());
        let (v, t) = r.try_take().unwrap();
        assert_eq!(v, 7);
        assert_eq!(t, SimTime(100));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let r: Request<()> = Request::new();
        r.complete((), SimTime(1));
        r.complete((), SimTime(2));
    }

    #[test]
    #[should_panic(expected = "waited on twice")]
    fn double_take_panics() {
        let r: Request<()> = Request::new();
        r.complete((), SimTime(1));
        r.try_take();
        r.try_take();
    }

    #[test]
    fn waiters_returned_on_complete_and_rejected_after() {
        let r: Request<()> = Request::new();
        let cell = Arc::new(ParkCell::new());
        assert!(r.add_waiter(&cell));
        assert!(r.add_waiter(&cell), "re-arming same cell is idempotent");
        let waiters = r.complete((), SimTime(5));
        assert_eq!(waiters.len(), 1, "duplicate waiter must not be stored");
        assert!(!r.add_waiter(&cell), "late waiter sees completion");
    }

    #[test]
    fn ready_request_is_immediately_takeable() {
        let r = Request::ready(42u8, SimTime(3));
        assert_eq!(r.try_take().unwrap(), (42, SimTime(3)));
    }

    #[test]
    fn dropping_tracked_request_feeds_leak_counters() {
        let v = Arc::new(Verifier::new());

        // Never completed.
        let r: Request<()> = Request::new_tracked(ReqMeta {
            verifier: v.clone(),
            id: v.next_req_id(),
        });
        assert!(r.verify_id().is_some());
        drop(r);
        assert_eq!(v.drop_counters(), (1, 0));

        // Completed but never taken.
        let r: Request<u8> = Request::new_tracked(ReqMeta {
            verifier: v.clone(),
            id: v.next_req_id(),
        });
        r.complete(9, SimTime(1));
        drop(r);
        assert_eq!(v.drop_counters(), (1, 1));

        // Completed and taken: clean.
        let r: Request<u8> = Request::new_tracked(ReqMeta {
            verifier: v.clone(),
            id: v.next_req_id(),
        });
        r.complete(9, SimTime(1));
        r.try_take();
        drop(r);
        assert_eq!(v.drop_counters(), (1, 1));
    }
}
