//! Broadcast: binomial tree (short) and van de Geijn scatter + ring
//! allgather (long messages).

// Collective algorithms are invariant-dense: `expect`s here assert
// tree/ring bookkeeping that cannot fail unless the algorithm itself
// is wrong, and root-data contracts whose violation must crash.
#![allow(clippy::expect_used)]

use crate::coll::{chunk_bounds, CollCtx, COLL_LARGE};
use crate::payload::Payload;

/// Run a broadcast. `data` must be `Some` on the root (with `data.len() ==
//  len`) and is ignored elsewhere; every rank receives the full payload.
pub(crate) fn run(ctx: &CollCtx<'_>, root: usize, data: Option<Payload>, len: usize) -> Payload {
    let p = ctx.p();
    assert!(root < p, "bcast root {root} out of range (p={p})");
    if ctx.me() == root {
        let d = data.as_ref().expect("bcast root must supply data");
        assert_eq!(d.len(), len, "bcast root data length mismatch");
    }
    if p == 1 {
        return data.expect("bcast root must supply data");
    }
    if len <= COLL_LARGE {
        binomial(ctx, root, data, 0)
    } else {
        let chunk = scatter_tree(ctx, root, data, len, 0);
        allgather_ring(ctx, root, chunk, len, 1000)
    }
}

/// Binomial-tree broadcast (MPICH-style). `step_base` offsets internal tags
/// so callers can compose it with other phases.
pub(crate) fn binomial(
    ctx: &CollCtx<'_>,
    root: usize,
    data: Option<Payload>,
    step_base: u32,
) -> Payload {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let mut buf = data;

    // Receive once from the parent.
    let mut mask = 1usize;
    let mut recv_round = 0u32;
    while mask < p {
        if vrank & mask != 0 {
            let src = from_v(vrank - mask);
            ctx.slack();
            buf = Some(ctx.recv(src, step_base + recv_round));
            break;
        }
        mask <<= 1;
        recv_round += 1;
    }
    // Forward to children, highest subtree first. After the receive scan,
    // `mask` is the lowest set bit of vrank (or ≥ p for the root); children
    // are vrank + m for every power of two m below it.
    let buf = buf.expect("binomial bcast rank received nothing");
    let mut mask = if vrank == 0 {
        let mut m = 1usize;
        while m < p {
            m <<= 1;
        }
        m >> 1
    } else {
        mask >> 1
    };
    while mask > 0 {
        if vrank + mask < p {
            let dst = from_v(vrank + mask);
            ctx.slack();
            // The child receives at the round matching its own lowest set
            // bit, i.e. round log2(mask).
            ctx.send(dst, step_base + mask.trailing_zeros(), buf.clone());
        }
        mask >>= 1;
    }
    buf
}

/// Scatter phase of the long-message broadcast: after it, the rank with
/// virtual rank `v` (relative to root) holds byte range
/// `bounds[v]..bounds[v+1]` of the payload.
pub(crate) fn scatter_tree(
    ctx: &CollCtx<'_>,
    root: usize,
    data: Option<Payload>,
    len: usize,
    step_base: u32,
) -> Payload {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let bounds = chunk_bounds(len, p);

    // Range-halving tree over virtual ranks [lo, hi); the owner of a range
    // is its lowest virtual rank and holds data for the entire range.
    let mut lo = 0usize;
    let mut hi = p;
    // Root starts owning everything; others own nothing yet.
    let mut buf: Option<Payload> = if vrank == 0 { data } else { None };
    let mut step = step_base;
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        if vrank < mid {
            // I stay in the low half; if I own the range, hand the high
            // half's bytes to its new owner.
            if vrank == lo {
                let owned = buf.as_ref().expect("range owner without data");
                // My buffer covers bytes bounds[lo]..bounds[hi].
                let cut = bounds[mid] - bounds[lo];
                let (keep, give) = owned.split_at(cut);
                ctx.slack();
                ctx.send(from_v(mid), step, give);
                buf = Some(keep);
            }
            hi = mid;
        } else {
            if vrank == mid {
                ctx.slack();
                buf = Some(ctx.recv(from_v(lo), step));
            }
            lo = mid;
        }
        step += 1;
    }
    buf.expect("scatter leaf without data")
}

/// Ring allgather: rank with virtual rank `v` contributes chunk `v`; all
/// ranks end with the full payload in original byte order.
pub(crate) fn allgather_ring(
    ctx: &CollCtx<'_>,
    root: usize,
    my_chunk: Payload,
    len: usize,
    step_base: u32,
) -> Payload {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let bounds = chunk_bounds(len, p);

    let mut chunks: Vec<Option<Payload>> = vec![None; p];
    assert_eq!(
        my_chunk.len(),
        bounds[vrank + 1] - bounds[vrank],
        "allgather contribution size mismatch"
    );
    chunks[vrank] = Some(my_chunk);
    let right = from_v((vrank + 1) % p);
    let left = from_v((vrank + p - 1) % p);
    for s in 0..p - 1 {
        let send_idx = (vrank + p - s) % p;
        let recv_idx = (vrank + p - s - 1) % p;
        ctx.slack();
        // Send chunk `send_idx` rightward, receive `recv_idx` from the
        // left; per-step tags disambiguate.
        let incoming = ctx.exchange(
            right,
            left,
            step_base + s as u32,
            chunks[send_idx].clone().expect("ring chunk missing"),
        );
        assert_eq!(incoming.len(), bounds[recv_idx + 1] - bounds[recv_idx]);
        chunks[recv_idx] = Some(incoming);
    }
    let parts: Vec<Payload> = chunks
        .into_iter()
        .map(|c| c.expect("ring ended with missing chunk"))
        .collect();
    Payload::concat(&parts)
}
