//! Dissemination barrier: ceil(log2 p) rounds of zero-byte token exchange.
//! Used both for `barrier`/`ibarrier` and as the wake-up signal of the
//! paper's multiple-PPN sleep/poll mechanism (§III-B).

use crate::coll::CollCtx;
use crate::payload::Payload;

/// Run the barrier; returns when every rank has entered it.
pub(crate) fn run(ctx: &CollCtx<'_>) {
    let p = ctx.p();
    if p == 1 {
        return;
    }
    let me = ctx.me();
    let mut dist = 1usize;
    let mut step = 0u32;
    while dist < p {
        let to = (me + dist) % p;
        let from = (me + p - dist) % p;
        ctx.slack();
        let _ = ctx.exchange(to, from, step, Payload::from_vec(Vec::new()));
        dist <<= 1;
        step += 1;
    }
}
