//! Scatter, gather and allgather as standalone collectives.
//!
//! Scatter/gather reuse the binomial range-halving trees; allgather is the
//! ring. Chunking follows [`crate::coll::chunk_bounds`]: rank `i` (in
//! root-relative virtual order) owns byte range `bounds[i]..bounds[i+1]`.

// Collective algorithms are invariant-dense: `expect`s here assert
// tree/ring bookkeeping that cannot fail unless the algorithm itself
// is wrong, and root-data contracts whose violation must crash.
#![allow(clippy::expect_used)]

use crate::coll::bcast::{allgather_ring, scatter_tree};
use crate::coll::{chunk_bounds, CollCtx};
use crate::payload::Payload;

/// Scatter `data` (present on `root`, `len` bytes) so that the rank with
/// virtual rank `v` receives chunk `v`. Returns this rank's chunk.
pub(crate) fn scatter(
    ctx: &CollCtx<'_>,
    root: usize,
    data: Option<Payload>,
    len: usize,
) -> Payload {
    let p = ctx.p();
    assert!(root < p);
    if ctx.me() == root {
        let d = data.as_ref().expect("scatter root must supply data");
        assert_eq!(d.len(), len);
    }
    if p == 1 {
        return data.expect("scatter root must supply data");
    }
    scatter_tree(ctx, root, data, len, 0)
}

/// Gather each rank's chunk to `root` (inverse of [`scatter`]); `len` is the
/// total size. Returns the assembled payload on the root, `None` elsewhere.
pub(crate) fn gather(
    ctx: &CollCtx<'_>,
    root: usize,
    my_chunk: Payload,
    len: usize,
) -> Option<Payload> {
    let p = ctx.p();
    assert!(root < p);
    if p == 1 {
        return Some(my_chunk);
    }
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let bounds = chunk_bounds(len, p);
    assert_eq!(my_chunk.len(), bounds[vrank + 1] - bounds[vrank]);

    // Binomial gather over the halving tree: at each mask, ranks with the
    // bit set forward their accumulated contiguous block downward.
    let mut buf = my_chunk;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            ctx.slack();
            ctx.send(from_v(vrank - mask), mask.trailing_zeros(), buf);
            return None;
        }
        let src = vrank + mask;
        if src < p {
            ctx.slack();
            let high = ctx.recv(from_v(src), mask.trailing_zeros());
            buf = Payload::concat(&[buf, high]);
        }
        mask <<= 1;
    }
    Some(buf)
}

/// Allgather: every rank contributes chunk `vrank` and ends with the full
/// payload. Root parameter fixes the chunk↔rank correspondence (use 0 for
/// the plain MPI semantics).
pub(crate) fn allgather(ctx: &CollCtx<'_>, my_chunk: Payload, len: usize) -> Payload {
    if ctx.p() == 1 {
        return my_chunk;
    }
    allgather_ring(ctx, 0, my_chunk, len, 0)
}
