//! Reduction (sum): binomial tree (short) and Rabenseifner's algorithm
//! (long): recursive-halving reduce-scatter followed by a binomial gather to
//! the root. The reduce-scatter core is shared with large allreduce.

use crate::coll::{chunk_bounds, CollCtx, COLL_LARGE};
use crate::payload::Payload;

/// Run a sum-reduction of `contrib` (same length on every rank) to `root`.
/// Returns `Some(result)` on the root, `None` elsewhere.
pub(crate) fn run(ctx: &CollCtx<'_>, root: usize, contrib: Payload) -> Option<Payload> {
    let p = ctx.p();
    assert!(root < p, "reduce root {root} out of range (p={p})");
    if p == 1 {
        return Some(contrib);
    }
    if contrib.len() <= COLL_LARGE {
        binomial(ctx, root, contrib, 0)
    } else if p.is_power_of_two() {
        rabenseifner(ctx, root, contrib)
    } else {
        // Rabenseifner's pre-fold puts an extra half-vector transfer and
        // reduction on the critical path for non-power-of-two sizes; a ring
        // reduce-scatter + gather is bandwidth-optimal for any p, which is
        // what production MPIs switch to in this regime.
        ring(ctx, root, contrib)
    }
}

/// Ring reduce for arbitrary p: a ring reduce-scatter (p−1 steps of n/p
/// chunks, each step receiving, reducing and forwarding), after which
/// virtual rank v owns the fully reduced chunk (v+1) mod p, followed by
/// direct gathers to the root.
pub(crate) fn ring(ctx: &CollCtx<'_>, root: usize, contrib: Payload) -> Option<Payload> {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let n = contrib.len();
    let bounds = chunk_bounds(n, p);
    let mut acc: Vec<Payload> = (0..p)
        .map(|c| contrib.slice(bounds[c], bounds[c + 1]))
        .collect();

    let right = from_v((vrank + 1) % p);
    let left = from_v((vrank + p - 1) % p);
    for s in 0..p - 1 {
        let send_idx = (vrank + p - s) % p;
        let recv_idx = (vrank + p - s - 1) % p;
        ctx.slack();
        let incoming = ctx.exchange(right, left, s as u32, acc[send_idx].clone());
        ctx.reduce_charge(incoming.len());
        acc[recv_idx] = acc[recv_idx].reduce_sum_f64(&incoming);
    }
    // vrank v now owns reduced chunk (v+1) mod p; hand everything to the
    // root (chunk c comes from vrank (c−1) mod p).
    let owned = (vrank + 1) % p;
    const GATHER: u32 = 500;
    if vrank == 0 {
        let mut chunks: Vec<Option<Payload>> = vec![None; p];
        chunks[owned] = Some(acc[owned].clone());
        for (c, slot) in chunks.iter_mut().enumerate() {
            if slot.is_none() {
                let owner_v = (c + p - 1) % p;
                ctx.slack();
                *slot = Some(ctx.recv(from_v(owner_v), GATHER + c as u32));
            }
        }
        let parts: Vec<Payload> = chunks.into_iter().map(Option::unwrap).collect();
        Some(Payload::concat(&parts))
    } else {
        ctx.slack();
        ctx.send(from_v(0), GATHER + owned as u32, acc[owned].clone());
        None
    }
}

/// Binomial-tree reduction: leaves send up; interior ranks receive from
/// each child, fold, and forward to the parent.
pub(crate) fn binomial(
    ctx: &CollCtx<'_>,
    root: usize,
    contrib: Payload,
    step_base: u32,
) -> Option<Payload> {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let n = contrib.len();
    let mut acc = contrib;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            let src_v = vrank + mask;
            if src_v < p {
                ctx.slack();
                let data = ctx.recv(from_v(src_v), step_base + mask.trailing_zeros());
                ctx.reduce_charge(n);
                acc = acc.reduce_sum_f64(&data);
            }
            mask <<= 1;
        } else {
            let dst_v = vrank - mask;
            ctx.slack();
            ctx.send(from_v(dst_v), step_base + mask.trailing_zeros(), acc);
            return None;
        }
    }
    debug_assert_eq!(vrank, 0);
    Some(acc)
}

/// Role of a rank after the non-power-of-two pre-fold.
enum CoreRole {
    /// Out of the core: contributed to a neighbour and is done.
    Retired,
    /// In the core with the given core rank (0..m).
    Core(usize),
}

/// Fold the `p - 2^k` surplus ranks into their even neighbours so the main
/// phases run on a power-of-two core, using the MPICH *half-vector* fold:
/// the pair exchanges opposite halves, each reduces one half in parallel,
/// and the retiring (odd) rank hands its reduced half back — halving both
/// the transfer on the critical path and the reduction compute compared to
/// the naive full-vector fold. Returns the (possibly folded) contribution
/// and the role.
fn fold_into_core(
    ctx: &CollCtx<'_>,
    vrank: usize,
    from_v: &dyn Fn(usize) -> usize,
    contrib: Payload,
    step_base: u32,
) -> (Payload, CoreRole, usize) {
    let p = ctx.p();
    let mut m = 1usize;
    while m * 2 <= p {
        m *= 2;
    }
    let r = p - m;
    let n = contrib.len();
    if vrank < 2 * r {
        let half = chunk_bounds(n, 2)[1];
        let (lo, hi) = contrib.split_at(half);
        if vrank % 2 == 1 {
            // Send my low half to the even partner, receive its high half,
            // reduce the high half, hand it back, retire.
            let partner = from_v(vrank - 1);
            ctx.slack();
            let their_hi = ctx.exchange(partner, partner, step_base, lo);
            ctx.reduce_charge(hi.len());
            let reduced_hi = hi.reduce_sum_f64(&their_hi);
            ctx.send(partner, step_base + 1, reduced_hi);
            (contrib, CoreRole::Retired, m)
        } else {
            // Send my high half, receive the partner's low half, reduce the
            // low half, then receive the partner's reduced high half.
            let partner = from_v(vrank + 1);
            ctx.slack();
            let their_lo = ctx.exchange(partner, partner, step_base, hi);
            ctx.reduce_charge(lo.len());
            let reduced_lo = lo.reduce_sum_f64(&their_lo);
            let reduced_hi = ctx.recv(partner, step_base + 1);
            (
                Payload::concat(&[reduced_lo, reduced_hi]),
                CoreRole::Core(vrank / 2),
                m,
            )
        }
    } else {
        (contrib, CoreRole::Core(vrank - r), m)
    }
}

/// Recursive-halving reduce-scatter over a power-of-two core of `m` ranks.
/// On return, core rank `cv` holds the fully reduced chunk `cv` (byte range
/// `bounds[cv]..bounds[cv+1]`).
///
/// `core_to_comm` maps core ranks back to communicator indices.
pub(crate) fn reduce_scatter_halving(
    ctx: &CollCtx<'_>,
    cv: usize,
    m: usize,
    core_to_comm: &dyn Fn(usize) -> usize,
    contrib: Payload,
    bounds: &[usize],
    step_base: u32,
) -> Payload {
    debug_assert!(m.is_power_of_two());
    let mut lo = 0usize;
    let mut hi = m;
    let mut buf = contrib; // covers chunks [lo, hi)
    let mut step = step_base;
    while hi - lo > 1 {
        let half = (hi - lo) / 2;
        let mid = lo + half;
        // Byte offset of the split inside my current buffer.
        let cut = bounds[mid] - bounds[lo];
        let (low_part, high_part) = buf.split_at(cut);
        let (keep, give, partner) = if cv < mid {
            (low_part, high_part, cv + half)
        } else {
            (high_part, low_part, cv - half)
        };
        ctx.slack();
        let incoming = ctx.exchange(core_to_comm(partner), core_to_comm(partner), step, give);
        ctx.reduce_charge(keep.len());
        buf = keep.reduce_sum_f64(&incoming);
        if cv < mid {
            hi = mid;
        } else {
            lo = mid;
        }
        step += 1;
    }
    debug_assert_eq!(lo, cv);
    buf
}

/// Binomial gather of the scattered chunks to core rank 0. Returns the full
/// result on core rank 0, `None` elsewhere.
pub(crate) fn gather_to_zero(
    ctx: &CollCtx<'_>,
    cv: usize,
    m: usize,
    core_to_comm: &dyn Fn(usize) -> usize,
    my_chunk: Payload,
    step_base: u32,
) -> Option<Payload> {
    let mut buf = my_chunk; // chunks [cv, cv + extent)
    let mut mask = 1usize;
    while mask < m {
        if cv & mask != 0 {
            ctx.slack();
            ctx.send(
                core_to_comm(cv - mask),
                step_base + mask.trailing_zeros(),
                buf,
            );
            return None;
        }
        // cv has the bit clear: receive the adjacent higher chunk block.
        let src = cv + mask;
        if src < m {
            ctx.slack();
            let high = ctx.recv(core_to_comm(src), step_base + mask.trailing_zeros());
            buf = Payload::concat(&[buf, high]);
        }
        mask <<= 1;
    }
    Some(buf)
}

/// Rabenseifner's reduction for long messages.
fn rabenseifner(ctx: &CollCtx<'_>, root: usize, contrib: Payload) -> Option<Payload> {
    let p = ctx.p();
    let vrank = (ctx.me() + p - root) % p;
    let from_v = |v: usize| (v + root) % p;
    let n = contrib.len();

    let (folded, role, m) = fold_into_core(ctx, vrank, &from_v, contrib, 0);
    let cv = match role {
        CoreRole::Retired => return None,
        CoreRole::Core(cv) => cv,
    };
    let r = p - m;
    // Map a core rank back to a communicator index.
    let core_to_comm = |c: usize| -> usize {
        let v = if c < r { 2 * c } else { c + r };
        from_v(v)
    };
    let bounds = chunk_bounds(n, m);
    let chunk = reduce_scatter_halving(ctx, cv, m, &core_to_comm, folded, &bounds, 10);
    // Core rank 0 is virtual rank 0 is the root.
    gather_to_zero(ctx, cv, m, &core_to_comm, chunk, 100)
}
