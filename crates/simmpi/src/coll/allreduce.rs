//! Allreduce (sum): recursive doubling (short) and reduce-scatter +
//! allgather (long), both with the standard non-power-of-two pre/post fold.

// Collective algorithms are invariant-dense: `expect`s here assert
// tree/ring bookkeeping that cannot fail unless the algorithm itself
// is wrong, and root-data contracts whose violation must crash.
#![allow(clippy::expect_used)]

use crate::coll::{chunk_bounds, reduce, CollCtx, COLL_LARGE};
use crate::payload::Payload;

/// Run a sum-allreduce; every rank returns the full result.
pub(crate) fn run(ctx: &CollCtx<'_>, contrib: Payload) -> Payload {
    let p = ctx.p();
    if p == 1 {
        return contrib;
    }
    if contrib.len() <= COLL_LARGE {
        recursive_doubling(ctx, contrib)
    } else if p.is_power_of_two() {
        rsag(ctx, contrib)
    } else {
        // Ring allreduce: bandwidth-optimal for any p, no pre/post fold.
        ring_allreduce(ctx, contrib)
    }
}

/// Ring reduce-scatter (after which rank r owns reduced chunk (r+1) mod p)
/// followed by a ring allgather.
fn ring_allreduce(ctx: &CollCtx<'_>, contrib: Payload) -> Payload {
    let p = ctx.p();
    let me = ctx.me();
    let n = contrib.len();
    let bounds = chunk_bounds(n, p);
    let mut acc: Vec<Payload> = (0..p)
        .map(|c| contrib.slice(bounds[c], bounds[c + 1]))
        .collect();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + p - s - 1) % p;
        ctx.slack();
        let incoming = ctx.exchange(right, left, s as u32, acc[send_idx].clone());
        ctx.reduce_charge(incoming.len());
        acc[recv_idx] = acc[recv_idx].reduce_sum_f64(&incoming);
    }
    let owned = (me + 1) % p;
    // Rank `me` owns chunk `me+1`: that is the chunk↔rank correspondence of
    // `allgather_ring` with root = p−1 (virtual rank me+1 owns chunk me+1).
    crate::coll::bcast::allgather_ring(ctx, p - 1, acc[owned].clone(), n, 500)
}

/// Core-rank bookkeeping for non-power-of-two sizes (no root here, so
/// virtual rank = communicator rank).
struct Core {
    m: usize,
    r: usize,
}

impl Core {
    fn new(p: usize) -> Core {
        let mut m = 1usize;
        while m * 2 <= p {
            m *= 2;
        }
        Core { m, r: p - m }
    }

    /// Communicator rank of core rank `c`.
    fn comm_of(&self, c: usize) -> usize {
        if c < self.r {
            2 * c
        } else {
            c + self.r
        }
    }
}

/// Pre-fold: odd ranks under `2r` contribute to their even neighbour using
/// the half-vector exchange (each side reduces one half in parallel, the
/// odd rank hands its half back and retires until the post-fold).
fn pre_fold(
    ctx: &CollCtx<'_>,
    core: &Core,
    contrib: Payload,
    step: u32,
) -> (Payload, Option<usize>) {
    let me = ctx.me();
    let n = contrib.len();
    if me < 2 * core.r {
        let half = chunk_bounds(n, 2)[1];
        let (lo, hi) = contrib.split_at(half);
        if me % 2 == 1 {
            let partner = me - 1;
            ctx.slack();
            let their_hi = ctx.exchange(partner, partner, step, lo);
            ctx.reduce_charge(hi.len());
            let reduced_hi = hi.reduce_sum_f64(&their_hi);
            ctx.send(partner, step + 1, reduced_hi);
            (contrib, None)
        } else {
            let partner = me + 1;
            ctx.slack();
            let their_lo = ctx.exchange(partner, partner, step, hi);
            ctx.reduce_charge(lo.len());
            let reduced_lo = lo.reduce_sum_f64(&their_lo);
            let reduced_hi = ctx.recv(partner, step + 1);
            (Payload::concat(&[reduced_lo, reduced_hi]), Some(me / 2))
        }
    } else {
        (contrib, Some(me - core.r))
    }
}

/// Post-fold: even ranks under `2r` push the final result to their odd
/// neighbour.
fn post_fold(ctx: &CollCtx<'_>, core: &Core, result: Option<Payload>, step: u32) -> Payload {
    let me = ctx.me();
    if me < 2 * core.r {
        if me % 2 == 1 {
            ctx.slack();
            ctx.recv(me - 1, step)
        } else {
            let result = result.expect("core rank without result");
            ctx.slack();
            ctx.send(me + 1, step, result.clone());
            result
        }
    } else {
        result.expect("core rank without result")
    }
}

/// Recursive-doubling allreduce over the power-of-two core.
fn recursive_doubling(ctx: &CollCtx<'_>, contrib: Payload) -> Payload {
    let core = Core::new(ctx.p());
    let n = contrib.len();
    let (mut acc, cv) = pre_fold(ctx, &core, contrib, 0);
    if let Some(cv) = cv {
        let mut mask = 1usize;
        let mut step = 10u32;
        while mask < core.m {
            let partner = core.comm_of(cv ^ mask);
            ctx.slack();
            let other = ctx.exchange(partner, partner, step, acc.clone());
            ctx.reduce_charge(n);
            acc = acc.reduce_sum_f64(&other);
            mask <<= 1;
            step += 1;
        }
        post_fold(ctx, &core, Some(acc), 100)
    } else {
        post_fold(ctx, &core, None, 100)
    }
}

/// Reduce-scatter + ring allgather for long messages.
fn rsag(ctx: &CollCtx<'_>, contrib: Payload) -> Payload {
    let core = Core::new(ctx.p());
    let n = contrib.len();
    let (folded, cv) = pre_fold(ctx, &core, contrib, 0);
    let result = if let Some(cv) = cv {
        let bounds = chunk_bounds(n, core.m);
        let comm_of = |c: usize| core.comm_of(c);
        let chunk = reduce::reduce_scatter_halving(ctx, cv, core.m, &comm_of, folded, &bounds, 10);
        // Ring allgather over the core: chunk `i` lives at core rank `i`.
        let mut chunks: Vec<Option<Payload>> = vec![None; core.m];
        chunks[cv] = Some(chunk);
        let right = comm_of((cv + 1) % core.m);
        let left = comm_of((cv + core.m - 1) % core.m);
        for s in 0..core.m - 1 {
            let send_idx = (cv + core.m - s) % core.m;
            let recv_idx = (cv + core.m - s - 1) % core.m;
            ctx.slack();
            let incoming = ctx.exchange(
                right,
                left,
                100 + s as u32,
                chunks[send_idx].clone().expect("ring chunk missing"),
            );
            chunks[recv_idx] = Some(incoming);
        }
        let parts: Vec<Payload> = chunks
            .into_iter()
            .map(|c| c.expect("allgather missing chunk"))
            .collect();
        Some(Payload::concat(&parts))
    } else {
        None
    };
    post_fold(ctx, &core, result, 1000)
}
