//! Collective algorithms, written once in blocking style.
//!
//! Blocking collectives run these functions inline on the rank thread;
//! nonblocking collectives run the *same* functions on a progress actor
//! whose clock starts at the post time — this is how the simulation gives
//! MPI-3 nonblocking collectives genuine asynchronous progress, and it is
//! what makes the paper's "nonblocking overlap" technique (N_DUP pipelined
//! collectives on duplicated communicators) actually overlap.
//!
//! Algorithms match what production MPIs choose for each regime:
//!
//! * broadcast — binomial tree (short), van de Geijn scatter + ring
//!   allgather (long; volume `2(p−1)n/p`, the paper's §V-A model);
//! * reduce — binomial tree (short), Rabenseifner recursive-halving
//!   reduce-scatter + binomial gather (long; volume `2(p−1)n/p`);
//! * allreduce — recursive doubling (short), reduce-scatter + ring
//!   allgather (long);
//! * barrier — dissemination.
//!
//! Every communication round charges `coll_round_slack` of software
//! overhead and local reductions charge `n / gamma_reduce_bw`; those are the
//! NIC-idle gaps that overlapped collectives fill in the paper.

pub(crate) mod allreduce;
pub(crate) mod barrier;
pub(crate) mod bcast;
pub(crate) mod gather;
pub(crate) mod reduce;

use crate::agent::Agent;
use crate::comm::CommInfo;
use crate::p2p::{irecv_raw, isend_raw};
use crate::payload::Payload;
use crate::request::Request;

/// Message-size threshold between short- and long-message algorithms.
pub(crate) const COLL_LARGE: usize = 32 * 1024;

/// Per-instance context handed to collective algorithms.
pub(crate) struct CollCtx<'a> {
    pub agent: &'a Agent,
    pub info: &'a CommInfo,
    /// Per-communicator collective sequence number (identical on all ranks
    /// because collectives are called in the same order).
    pub seq: u64,
}

impl CollCtx<'_> {
    /// Communicator size.
    pub fn p(&self) -> usize {
        self.info.ranks.len()
    }

    /// My index within the communicator.
    pub fn me(&self) -> usize {
        self.info.me
    }

    /// Internal tag for communication step `step` of this instance.
    fn tag(&self, step: u32) -> u64 {
        assert!(
            self.seq < (1 << 24),
            "too many collectives on one communicator"
        );
        (1 << 63) | (self.seq << 24) | step as u64
    }

    /// World rank of communicator index `idx`.
    fn world(&self, idx: usize) -> u32 {
        self.info.ranks[idx]
    }

    /// Nonblocking internal send to communicator index `dst`.
    pub fn isend(&self, dst: usize, step: u32, payload: Payload) -> Request<()> {
        isend_raw(
            self.agent,
            self.info.ctx,
            self.world(dst),
            self.tag(step),
            payload,
        )
    }

    /// Nonblocking internal receive from communicator index `src`.
    pub fn irecv(&self, src: usize, step: u32) -> Request<Payload> {
        irecv_raw(self.agent, self.info.ctx, self.world(src), self.tag(step))
    }

    /// Blocking internal send.
    pub fn send(&self, dst: usize, step: u32, payload: Payload) {
        let r = self.isend(dst, step, payload);
        self.agent.wait(&r);
    }

    /// Blocking internal receive.
    pub fn recv(&self, src: usize, step: u32) -> Payload {
        let r = self.irecv(src, step);
        self.agent.wait(&r)
    }

    /// Concurrent send-to/receive-from (possibly different peers) — the
    /// pairwise-exchange building block of recursive halving/doubling and
    /// rings.
    pub fn exchange(
        &self,
        send_to: usize,
        recv_from: usize,
        step: u32,
        payload: Payload,
    ) -> Payload {
        let rr = self.irecv(recv_from, step);
        let sr = self.isend(send_to, step, payload);
        self.agent.wait(&sr);
        self.agent.wait(&rr)
    }

    /// Per-round software slack.
    pub fn slack(&self) {
        self.agent.advance(self.agent.uni.profile.coll_round_slack);
    }

    /// Charge the local reduction of an `n`-byte operand (and the caller
    /// performs the actual arithmetic via `Payload::reduce_sum_f64`). The
    /// time is paid through the rank's shared reduction-CPU resource, so
    /// concurrent collectives on one rank contend for it.
    pub fn reduce_charge(&self, n: usize) {
        self.agent.reduce_compute(n);
    }
}

/// Contiguous, 8-byte-aligned partition of `n` bytes into `parts` chunks:
/// returns `parts + 1` offsets (monotone, first 0, last `n`). All chunks are
/// multiples of 8 except possibly the last, so `f64` data never splits
/// mid-element.
pub(crate) fn chunk_bounds(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1);
    let quantum = 8usize;
    let elems = n / quantum; // full 8-byte elements
    let rem = n - elems * quantum; // trailing ragged bytes go to the last chunk
    let base = elems / parts;
    let extra = elems % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut off = 0;
    for i in 0..parts {
        let e = base + usize::from(i < extra);
        off += e * quantum;
        bounds.push(off);
    }
    if let Some(last) = bounds.last_mut() {
        *last += rem;
    }
    debug_assert_eq!(bounds.last().copied(), Some(n));
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partitions_exactly() {
        let b = chunk_bounds(100, 4);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&100));
        assert_eq!(b.len(), 5);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All but the last boundary 8-aligned.
        for &x in &b[..b.len() - 1] {
            assert_eq!(x % 8, 0);
        }
    }

    #[test]
    fn chunk_bounds_more_parts_than_elements() {
        let b = chunk_bounds(16, 5);
        assert_eq!(b, vec![0, 8, 16, 16, 16, 16]);
    }

    #[test]
    fn chunk_bounds_zero_bytes() {
        assert_eq!(chunk_bounds(0, 3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn chunk_bounds_single_part() {
        assert_eq!(chunk_bounds(24, 1), vec![0, 24]);
    }
}
