//! Collective execution: compiled schedules run by one shared executor.
//!
//! Collectives are no longer hand-written blocking functions — each
//! instance is compiled (and cached) as a per-rank [`CollPlan`]
//! (`ovcomm_verify::plan`) by a pure algorithm builder chosen by the
//! run's [`CollSelector`](crate::collsel::CollSelector), statically
//! linted, then interpreted by the backend-neutral
//! [plan executor](crate::planexec). Blocking
//! collectives run the executor inline on the rank thread; nonblocking
//! collectives run it on a progress actor whose clock starts at the post
//! time — this is how the simulation gives MPI-3 nonblocking collectives
//! genuine asynchronous progress, and it is what makes the paper's
//! "nonblocking overlap" technique (N_DUP pipelined collectives on
//! duplicated communicators) actually overlap.
//!
//! Every communication round charges `coll_round_slack` of software
//! overhead and local reductions charge `n / gamma_reduce_bw`; those are
//! the NIC-idle gaps that overlapped collectives fill in the paper.

use ovcomm_simnet::{SimTime, SpanKind};

use crate::agent::Agent;
use crate::comm::CommInfo;
use crate::p2p::{irecv_raw, isend_raw};
use crate::payload::Payload;
use crate::planexec::PlanIo;
use crate::request::Request;

/// Per-instance context handed to the plan executor: the executing agent
/// plus the communicator and instance identity that scope its tags.
pub(crate) struct CollCtx<'a> {
    pub agent: &'a Agent,
    pub info: &'a CommInfo,
    /// Per-communicator collective sequence number (identical on all ranks
    /// because collectives are called in the same order).
    pub seq: u64,
}

impl CollCtx<'_> {
    /// Internal tag for communication step `step` of this instance.
    fn tag(&self, step: u32) -> u64 {
        assert!(
            self.seq < (1 << 24),
            "too many collectives on one communicator"
        );
        (1 << 63) | (self.seq << 24) | step as u64
    }

    /// World rank of communicator index `idx`.
    fn world(&self, idx: usize) -> u32 {
        self.info.ranks[idx]
    }
}

/// The simulator's side of the executor's I/O surface: internal p2p over
/// the flow network, virtual-time slack, and γ-reduce charging through the
/// rank's shared reduction-CPU resource (so concurrent collectives on one
/// rank contend for it).
impl PlanIo for CollCtx<'_> {
    fn p(&self) -> usize {
        self.info.ranks.len()
    }

    fn me(&self) -> usize {
        self.info.me
    }

    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        isend_raw(
            self.agent,
            self.info.ctx,
            self.world(dst),
            self.tag(tag),
            payload,
        )
    }

    fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        irecv_raw(self.agent, self.info.ctx, self.world(src), self.tag(tag))
    }

    fn wait_unit(&self, r: &Request<()>) {
        self.agent.wait(r);
    }

    fn wait_payload(&self, r: &Request<Payload>) -> Payload {
        self.agent.wait(r)
    }

    fn slack(&self) {
        self.agent.advance(self.agent.uni.profile.coll_round_slack);
    }

    fn reduce_charge(&self, n: usize) {
        self.agent.reduce_compute(n);
    }

    fn now(&self) -> SimTime {
        self.agent.now()
    }

    fn step_span(&self, t0: SimTime, label: impl FnOnce() -> String) {
        self.agent
            .trace_span(SpanKind::CollStep, t0, self.agent.now(), label);
    }
}
