//! # ovcomm-simmpi
//!
//! An in-process MPI-like message-passing library running over the
//! `ovcomm-simnet` virtual-time network simulator. Every rank is a
//! stackful fiber (or, for differential testing, an OS thread — see
//! [`ExecMode`]) that blocks inside communication calls — rank code reads
//! exactly like MPI code — while virtual time is accounted by the
//! simulator. The fiber mode runs tens of thousands of ranks in one
//! process on one scheduler thread.
//!
//! Implemented surface (what the paper's algorithms need, §III–§IV):
//!
//! * communicators: world, `dup` (the N_DUP bundles of the nonblocking
//!   overlap technique), `split` (row/column/grid communicators of process
//!   meshes);
//! * point-to-point: `send`/`recv`/`isend`/`irecv`/`sendrecv` with eager and
//!   rendezvous protocols;
//! * blocking collectives: `bcast`, `reduce`, `allreduce`, `barrier`,
//!   `scatter`, `gather`, `allgather` — each compiled to a per-rank
//!   [`CollPlan`](plan::CollPlan) schedule (binomial, recursive
//!   doubling/halving, Rabenseifner, ring, …) chosen by a tunable
//!   [`CollSelector`](collsel::CollSelector), statically linted, and run
//!   by one shared plan executor;
//! * MPI-3 nonblocking collectives: `ibcast`, `ireduce`, `iallreduce`,
//!   `ibarrier` — each runs on its own progress actor, so posted operations
//!   make *asynchronous* progress and genuinely overlap;
//! * requests with `wait`/`test`, deterministic virtual timing, traffic
//!   statistics and Fig-6-style span tracing.
//!
//! Known deviations from MPI, documented by design: no wildcard
//! receives (`MPI_ANY_SOURCE`/`ANY_TAG`), reductions are `f64` sums
//! (`MPI_SUM` over `MPI_DOUBLE` — the only operator the paper's kernels
//! use), `dup` is bookkeeping-only (no synchronization), and receives
//! return owned payloads instead of writing into caller buffers.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod agent;
mod coll;
mod metrics;
mod p2p;
mod progress;
mod state;

pub mod rma;

pub mod collsel;
pub mod comm;
pub mod payload;
pub mod planexec;
pub mod request;
pub mod universe;

pub use collsel::CollSelector;
pub use comm::Comm;
pub use planexec::{execute_plan, PlanIo};

// Hidden exports for the `ovcomm-rt` wall-clock backend, which shares the
// simulator's request type, plan compilation, split grouping, progress
// pool, and metric shapes so both backends present one surface.
#[doc(hidden)]
pub use comm::compile_plans;
#[doc(hidden)]
pub use metrics::{OpKind, SimMetrics};
pub use ovcomm_verify::plan;
pub use ovcomm_verify::plan::CollAlgo;
pub use ovcomm_verify::{CollKind, DeadlockReport, Finding, Severity, VerifyMode, VerifyReport};
pub use payload::Payload;
#[doc(hidden)]
pub use progress::{Job, Pool};
pub use request::Request;
pub use rma::SimWin;
#[doc(hidden)]
pub use state::SplitResult;
pub use universe::{actor_name, run, ExecMode, RankCtx, SimConfig, SimError, SimOutput};
