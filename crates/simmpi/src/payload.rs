//! Message payloads.
//!
//! A payload is either **real** bytes (`bytes::Bytes`, so chunking for the
//! N_DUP pipelines of the paper is zero-copy) or a **phantom** byte count.
//! Phantom payloads let paper-scale benchmarks (multi-GB matrices on 64–512
//! simulated ranks) run in bounded memory: the communication schedule and all
//! modeled times are byte-for-byte identical, only the data is absent.
//! Correctness of the algorithms is established separately at test scale with
//! real payloads.

use bytes::Bytes;

/// Data carried by a message: real bytes or a modeled byte count.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Actual data; transfers move (reference-counted) bytes end to end.
    Real(Bytes),
    /// Size-only stand-in for paper-scale benchmarks.
    Phantom(usize),
}

impl Payload {
    /// A real payload over a `Vec<u8>`.
    pub fn from_vec(v: Vec<u8>) -> Payload {
        Payload::Real(Bytes::from(v))
    }

    /// A real payload holding `f64` values in native byte order.
    pub fn from_f64s(v: &[f64]) -> Payload {
        let mut bytes = Vec::with_capacity(v.len() * 8);
        for x in v {
            bytes.extend_from_slice(&x.to_ne_bytes());
        }
        Payload::Real(Bytes::from(bytes))
    }

    /// Interpret a real payload as `f64` values. Panics on phantom payloads
    /// or lengths that are not a multiple of 8.
    // `chunks_exact(8)` yields exactly-8-byte slices; the conversion
    // cannot fail.
    #[allow(clippy::unwrap_used)]
    pub fn to_f64s(&self) -> Vec<f64> {
        match self {
            Payload::Real(b) => {
                assert!(
                    b.len() % 8 == 0,
                    "payload length {} not f64-aligned",
                    b.len()
                );
                b.chunks_exact(8)
                    .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
                    .collect()
            }
            Payload::Phantom(_) => panic!("cannot read data out of a phantom payload"),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        match self {
            Payload::Real(b) => b.len(),
            Payload::Phantom(n) => *n,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a phantom payload.
    pub fn is_phantom(&self) -> bool {
        matches!(self, Payload::Phantom(_))
    }

    /// Zero-copy split: returns `(self[..at], self[at..])`. `at` must be
    /// ≤ `len`. For `f64` data keep `at` a multiple of 8.
    pub fn split_at(&self, at: usize) -> (Payload, Payload) {
        assert!(
            at <= self.len(),
            "split_at {at} beyond length {}",
            self.len()
        );
        match self {
            Payload::Real(b) => (Payload::Real(b.slice(..at)), Payload::Real(b.slice(at..))),
            Payload::Phantom(n) => (Payload::Phantom(at), Payload::Phantom(n - at)),
        }
    }

    /// Zero-copy sub-range `self[start..end]`.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= self.len(),
            "bad slice {start}..{end}"
        );
        match self {
            Payload::Real(b) => Payload::Real(b.slice(start..end)),
            Payload::Phantom(_) => Payload::Phantom(end - start),
        }
    }

    /// Concatenate (copies real data; phantom is free). Both operands must
    /// have the same representation.
    pub fn concat(parts: &[Payload]) -> Payload {
        assert!(!parts.is_empty(), "concat of no parts");
        if parts.iter().any(Payload::is_phantom) {
            assert!(
                parts.iter().all(Payload::is_phantom),
                "cannot mix real and phantom payloads"
            );
            return Payload::Phantom(parts.iter().map(Payload::len).sum());
        }
        let mut out = Vec::with_capacity(parts.iter().map(Payload::len).sum());
        for p in parts {
            match p {
                Payload::Real(b) => out.extend_from_slice(b),
                Payload::Phantom(_) => unreachable!(),
            }
        }
        Payload::from_vec(out)
    }

    /// Element-wise `f64` sum of two payloads of equal length (the reduction
    /// operator used throughout the paper's kernels). Phantom + phantom is
    /// free; mixing representations panics.
    // `chunks_exact(8)` yields exactly-8-byte slices; the conversions
    // cannot fail.
    #[allow(clippy::unwrap_used)]
    pub fn reduce_sum_f64(&self, other: &Payload) -> Payload {
        assert_eq!(
            self.len(),
            other.len(),
            "reduce of unequal payloads ({} vs {})",
            self.len(),
            other.len()
        );
        match (self, other) {
            (Payload::Phantom(n), Payload::Phantom(_)) => Payload::Phantom(*n),
            (Payload::Real(a), Payload::Real(b)) => {
                assert!(a.len() % 8 == 0, "reduce of non-f64-aligned payload");
                let mut out = Vec::with_capacity(a.len());
                for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
                    let x = f64::from_ne_bytes(ca.try_into().unwrap())
                        + f64::from_ne_bytes(cb.try_into().unwrap());
                    out.extend_from_slice(&x.to_ne_bytes());
                }
                Payload::from_vec(out)
            }
            _ => panic!("cannot reduce a real payload with a phantom one"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, 1e300];
        let p = Payload::from_f64s(&v);
        assert_eq!(p.len(), 32);
        assert_eq!(p.to_f64s(), v);
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let p = Payload::from_f64s(&[1.0, 2.0, 3.0, 4.0]);
        let (a, b) = p.split_at(16);
        assert_eq!(a.to_f64s(), vec![1.0, 2.0]);
        assert_eq!(b.to_f64s(), vec![3.0, 4.0]);
        let back = Payload::concat(&[a, b]);
        assert_eq!(back.to_f64s(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn phantom_split_concat() {
        let p = Payload::Phantom(100);
        let (a, b) = p.split_at(30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 70);
        assert_eq!(Payload::concat(&[a, b]).len(), 100);
    }

    #[test]
    fn reduce_sums_elementwise() {
        let a = Payload::from_f64s(&[1.0, 2.0]);
        let b = Payload::from_f64s(&[10.0, 20.0]);
        assert_eq!(a.reduce_sum_f64(&b).to_f64s(), vec![11.0, 22.0]);
    }

    #[test]
    fn reduce_phantom_is_free() {
        let a = Payload::Phantom(64);
        let b = Payload::Phantom(64);
        assert_eq!(a.reduce_sum_f64(&b), Payload::Phantom(64));
    }

    #[test]
    #[should_panic(expected = "cannot reduce a real payload with a phantom")]
    fn reduce_mixed_panics() {
        let a = Payload::from_f64s(&[1.0]);
        let b = Payload::Phantom(8);
        a.reduce_sum_f64(&b);
    }

    #[test]
    #[should_panic(expected = "unequal payloads")]
    fn reduce_unequal_panics() {
        Payload::from_f64s(&[1.0]).reduce_sum_f64(&Payload::from_f64s(&[1.0, 2.0]));
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let p = Payload::from_f64s(&[1.0, 2.0, 3.0]);
        let s = p.slice(8, 24);
        assert_eq!(s.to_f64s(), vec![2.0, 3.0]);
    }
}
