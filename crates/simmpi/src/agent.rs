//! Agents: the execution identities that post events and block on requests.
//!
//! Every rank thread owns an agent, and every in-flight nonblocking
//! collective runs on its own *operation agent* (a progress-pool worker with
//! a deterministic actor id and its own virtual clock starting at the post
//! time) — this is how MPI-3 nonblocking collectives make asynchronous
//! progress in the simulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ovcomm_simnet::{Action, EventKey, ParkCell, SimDur, SimTime, SpanKind, TraceSpan};

use crate::request::Request;
use crate::universe::UniShared;

/// Event class for p2p injection events.
pub(crate) const CLASS_P2P: u8 = 10;
/// Event class for generic timers (sleep, deferred starts).
pub(crate) const CLASS_TIMER: u8 = 20;

/// An execution identity: actor id, world rank it acts for, its own virtual
/// clock, and its park cell. Clones share the clock (used by `Comm` handles
/// and the end-time bookkeeping).
#[derive(Clone)]
pub(crate) struct Agent {
    /// Engine actor id (equals `rank` for rank agents; high-bit-tagged for
    /// operation agents).
    pub id: u32,
    /// World rank this agent acts on behalf of (decides node placement).
    pub rank: u32,
    clock: Arc<AtomicU64>,
    seq: Arc<AtomicU64>,
    /// Counter of nonblocking operations posted by this rank (used to mint
    /// deterministic operation-actor ids). Only rank agents use it.
    pub op_counter: Arc<AtomicU64>,
    pub cell: Arc<ParkCell>,
    pub uni: Arc<UniShared>,
}

impl Agent {
    /// Agent for a rank thread.
    pub fn new_rank(rank: u32, cell: Arc<ParkCell>, uni: Arc<UniShared>) -> Agent {
        Agent {
            id: rank,
            rank,
            clock: Arc::new(AtomicU64::new(0)),
            seq: Arc::new(AtomicU64::new(0)),
            op_counter: Arc::new(AtomicU64::new(0)),
            cell,
            uni,
        }
    }

    /// Agent for an operation (progress) actor starting at `start`.
    pub fn new_op(
        id: u32,
        rank: u32,
        start: SimTime,
        cell: Arc<ParkCell>,
        uni: Arc<UniShared>,
    ) -> Agent {
        Agent {
            id,
            rank,
            clock: Arc::new(AtomicU64::new(start.as_nanos())),
            seq: Arc::new(AtomicU64::new(0)),
            op_counter: Arc::new(AtomicU64::new(0)),
            cell,
            uni,
        }
    }

    /// Current local virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.clock.load(Ordering::Relaxed))
    }

    /// Move the local clock forward by `d`.
    pub fn advance(&self, d: SimDur) {
        let now = self.now();
        self.clock.store((now + d).as_nanos(), Ordering::Relaxed);
    }

    /// Clamp the local clock up to `t` (no-op if already past it).
    pub fn advance_to(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            self.clock.store(t.as_nanos(), Ordering::Relaxed);
        }
    }

    /// Mint a unique event key at time `t` for this agent.
    pub fn event_key(&self, t: SimTime, class: u8) -> EventKey {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        EventKey {
            time: t,
            class,
            origin: self.id,
            seq,
        }
    }

    /// Schedule `action` at this agent's current clock (or later).
    pub fn schedule(&self, at: SimTime, class: u8, action: Action) {
        debug_assert!(at >= self.now() || self.now() == at);
        self.uni.engine.schedule(self.event_key(at, class), action);
    }

    /// Block until `req` completes; returns its value and advances the
    /// clock to `max(local clock, completion time)` — `MPI_Wait`.
    pub fn wait<T>(&self, req: &Request<T>) -> T {
        // Tell the verifier what we are blocked on: if the run deadlocks
        // while we are parked below, this entry becomes our line of the
        // wait-for diagnosis; on success it records the wait edge.
        let vid = if self.uni.verify.is_some() {
            req.verify_id()
        } else {
            None
        };
        if let (Some(v), Some(id)) = (self.uni.verify.as_ref(), vid) {
            v.wait_begin(self.id, id);
        }
        let out = loop {
            if let Some((v, t)) = req.try_take() {
                // A wake may still be pending if the completion raced with
                // our check; consume it so the engine's runnable count stays
                // balanced.
                if let Some(tw) = self.uni.engine.consume_pending(&self.cell) {
                    self.advance_to(tw);
                }
                self.advance_to(t);
                break v;
            }
            if req.add_waiter(&self.cell) {
                let tw = self.uni.engine.park(&self.cell);
                self.advance_to(tw);
            }
        };
        if let (Some(v), Some(id)) = (self.uni.verify.as_ref(), vid) {
            v.wait_end(self.id);
            v.record(ovcomm_verify::Event::WaitDone {
                agent: self.id,
                req: id,
            });
        }
        out
    }

    /// Nonblocking completion probe — `MPI_Test`. True only once the
    /// completion time is at or before this agent's clock (an agent cannot
    /// observe the future).
    pub fn test<T>(&self, req: &Request<T>) -> bool {
        match req.completed_at() {
            Some(t) => t <= self.now(),
            None => false,
        }
    }

    /// Perform `bytes` of local reduction compute through this rank's
    /// shared reduction-CPU resource: the time depends on how many other
    /// operations of the same rank are reducing concurrently (max-min
    /// sharing at `gamma_reduce_bw` per stream, `reduce_parallel x` total).
    /// Blocks the calling agent until the work completes.
    pub fn reduce_compute(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let res = self.uni.cpu[self.rank as usize];
        let cap = self.uni.profile.gamma_reduce_bw;
        let cell = self.cell.clone();
        let at = self.now();
        let uni = self.uni.clone();
        self.schedule(
            at,
            CLASS_TIMER,
            Box::new(move |e| {
                let cell2 = cell.clone();
                let _ = &uni;
                e.start_flow(
                    vec![res],
                    cap,
                    bytes as f64,
                    Box::new(move |e2| {
                        e2.wake(&cell2, e2.now());
                    }),
                );
            }),
        );
        let t = self.uni.engine.park(&self.cell);
        self.advance_to(t);
    }

    /// Sleep for `d` of virtual time.
    pub fn sleep(&self, d: SimDur) {
        let wake_at = self.now() + d;
        let cell = self.cell.clone();
        self.schedule(
            wake_at,
            CLASS_TIMER,
            Box::new(move |e| {
                e.wake(&cell, wake_at);
            }),
        );
        let t = self.uni.engine.park(&self.cell);
        self.advance_to(t);
    }

    /// Record a trace span if tracing is on (label built lazily).
    pub fn trace_span(
        &self,
        kind: SpanKind,
        start: SimTime,
        end: SimTime,
        label: impl FnOnce() -> String,
    ) {
        self.trace_span_chunk(kind, None, start, end, label);
    }

    /// Record a trace span carrying a pipeline chunk index.
    pub fn trace_span_chunk(
        &self,
        kind: SpanKind,
        chunk: Option<u32>,
        start: SimTime,
        end: SimTime,
        label: impl FnOnce() -> String,
    ) {
        if self.uni.tracing {
            self.uni.engine.record_span(TraceSpan {
                actor: self.id,
                kind,
                label: label(),
                chunk,
                start,
                end,
            });
        }
    }
}
