//! Communicators and the user-facing MPI-like API.
//!
//! A [`Comm`] is a per-rank handle (like `MPI_Comm`): it knows the global
//! context id, the member world ranks, and this rank's index. `dup` creates
//! an independent context over the same group — the building block of the
//! paper's nonblocking-overlap technique, which issues each data chunk on
//! its own duplicated communicator. `split` creates row/column/grid
//! communicators of process meshes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ovcomm_simnet::{ParkCell, SimTime, SpanKind};
use ovcomm_verify::plan::{self, CollPlan};
use ovcomm_verify::{CollKind, Event as VEvent, ReqId, Site, VerifyMode};

use crate::agent::Agent;
use crate::coll::CollCtx;
use crate::collsel::CollSelector;
use crate::metrics::OpKind;
use crate::p2p::{irecv_raw, isend_raw};
use crate::payload::Payload;
use crate::planexec::execute_plan;
use crate::request::{ReqMeta, Request};
use crate::state::SplitGather;
use crate::universe::{op_actor_id, PlanCache, UniShared};

/// Largest communicator size whose compiled schedules are model-checked
/// under `Strict`. The check explores receive-match interleavings across
/// eager/rendezvous cutpoints, which grows far faster than the schedule
/// itself; beyond this size the state budget would only ever truncate, so
/// large shapes keep the (linear) lint pass and skip the model check.
pub const MODEL_CHECK_MAX_P: usize = 128;

/// Compile (or fetch from `cache`) the per-rank plans for one collective
/// shape, selecting the algorithm via `sel` and statically analyzing
/// fresh plans per verification level `mode`: `Warn` lints and prints
/// findings, `Strict` additionally model-checks the schedule (every
/// receive-match interleaving at every eager/rendezvous cutpoint, for
/// communicators up to [`MODEL_CHECK_MAX_P`] ranks) and panics on any
/// finding. Analysis results are memoized in the cache, so
/// each shape is analyzed — and its findings rendered — exactly once per
/// run. Backend-neutral: both the simulator and the `ovcomm-rt`
/// wall-clock backend compile collectives through this exact path, so the
/// `CollSelector` and the static-analysis wall behave identically on
/// either.
pub fn compile_plans(
    cache: &parking_lot::Mutex<PlanCache>,
    sel: &CollSelector,
    mode: VerifyMode,
    p: usize,
    kind: CollKind,
    n: usize,
    root: usize,
) -> Arc<Vec<CollPlan>> {
    let algo = sel.select(kind, n, p);
    let key = (kind, algo, p, n, root);
    let mut cache = cache.lock();
    if let Some(cached) = cache.get(&key) {
        // Memoized: findings (if any) were already rendered at first
        // compile — never re-print on a hit.
        return cached.plans.clone();
    }
    let plans = plan::build_all(kind, algo, p, n, root);
    let mut findings: Vec<String> = Vec::new();
    if mode != VerifyMode::Off {
        findings.extend(plan::lint_plans(&plans).iter().map(|f| f.to_string()));
        if mode == VerifyMode::Strict && p <= MODEL_CHECK_MAX_P {
            let report = plan::model_check_single(&plans, &plan::McConfig::default());
            findings.extend(report.findings.iter().map(|f| f.to_string()));
            if report.truncated {
                findings.push(format!(
                    "error[mc-truncated]: model check exhausted its state budget \
                     ({} states explored)",
                    report.states
                ));
            }
        }
        findings.dedup();
        if !findings.is_empty() {
            if mode == VerifyMode::Warn {
                for f in &findings {
                    eprintln!("ovcomm-verify(plan): {f}");
                }
            } else {
                use std::fmt::Write as _;
                let mut msg =
                    format!("static plan analysis failed for {algo} p={p} n={n} root={root}:");
                for f in findings.iter().take(8) {
                    let _ = write!(msg, "\n  {f}");
                }
                if findings.len() > 8 {
                    let _ = write!(msg, "\n  ... and {} more finding(s)", findings.len() - 8);
                }
                panic!("{msg}");
            }
        }
    }
    let cached = crate::universe::CachedPlans {
        plans: Arc::new(plans),
        findings: Arc::new(findings),
    };
    cache.insert(key, cached.clone());
    cached.plans
}

/// `compile_plans` against the simulator universe's cache and selector.
fn plans_for(
    uni: &UniShared,
    p: usize,
    kind: CollKind,
    n: usize,
    root: usize,
) -> Arc<Vec<CollPlan>> {
    compile_plans(
        &uni.plan_cache,
        &uni.coll_select,
        uni.verify_mode,
        p,
        kind,
        n,
        root,
    )
}

/// Unwrap a collective result that the plan contract guarantees exists.
fn expect_out(out: Option<Payload>, what: &str) -> Payload {
    match out {
        Some(v) => v,
        None => panic!("{what} plan produced no output"),
    }
}

/// Group/topology info shared by all clones of a communicator handle.
#[derive(Clone)]
pub(crate) struct CommInfo {
    /// Global context id (matching namespace).
    pub ctx: u32,
    /// Member world ranks, in communicator order.
    pub ranks: Arc<Vec<u32>>,
    /// This rank's index within `ranks`.
    pub me: usize,
}

/// A communicator handle for one rank.
#[derive(Clone)]
pub struct Comm {
    pub(crate) info: CommInfo,
    pub(crate) agent: Agent,
    dup_seq: Arc<AtomicU64>,
    split_seq: Arc<AtomicU64>,
    coll_seq: Arc<AtomicU64>,
    /// Per-rank window-creation counter (all members call `win_create` in
    /// the same order, so the values agree across ranks). Consumed by
    /// `Comm::win_create` in the `rma` module.
    pub(crate) win_seq: Arc<AtomicU64>,
}

impl Comm {
    pub(crate) fn new(info: CommInfo, agent: Agent) -> Comm {
        if let Some(v) = agent.uni.verify.as_ref() {
            // Every rank records the (identical) declaration; the analyzer
            // keys on the context id, so duplicates are harmless.
            v.record(VEvent::CommDecl {
                ctx: info.ctx,
                members: info.ranks.clone(),
            });
        }
        Comm {
            info,
            agent,
            dup_seq: Arc::new(AtomicU64::new(0)),
            split_seq: Arc::new(AtomicU64::new(0)),
            coll_seq: Arc::new(AtomicU64::new(0)),
            win_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Log a collective call on this communicator into the verifier's
    /// per-agent event stream (no-op when verification is off).
    fn record_coll(
        &self,
        kind: CollKind,
        root: Option<u32>,
        len: usize,
        blocking: bool,
        site: Site,
    ) {
        if let Some(v) = self.agent.uni.verify.as_ref() {
            v.record(VEvent::Coll {
                agent: self.agent.id,
                rank: self.agent.rank,
                ctx: self.info.ctx,
                kind,
                root,
                len,
                blocking,
                req: None,
                op_agent: None,
                site: Some(site),
            });
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.info.ranks.len()
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.info.me
    }

    /// World rank of communicator index `idx`.
    pub fn world_rank(&self, idx: usize) -> usize {
        self.info.ranks[idx] as usize
    }

    fn coll_seq_next(&self) -> u64 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn cctx<'a>(&'a self, seq: u64) -> CollCtx<'a> {
        CollCtx {
            agent: &self.agent,
            info: &self.info,
            seq,
        }
    }

    /// This communicator's compiled plans for one collective shape.
    fn plans(&self, kind: CollKind, n: usize, root: usize) -> Arc<Vec<CollPlan>> {
        plans_for(&self.agent.uni, self.size(), kind, n, root)
    }

    // ---------------------------------------------------------------
    // Communicator management
    // ---------------------------------------------------------------

    /// Duplicate: a new context over the same group. All ranks must call in
    /// the same order (as in MPI). Used to create the `N_DUP` communicator
    /// copies of the nonblocking-overlap technique.
    #[track_caller]
    pub fn dup(&self) -> Comm {
        self.record_coll(
            CollKind::Dup,
            None,
            0,
            false,
            std::panic::Location::caller(),
        );
        let seq = self.dup_seq.fetch_add(1, Ordering::Relaxed);
        self.agent
            .uni
            .metrics
            .comm_dup(self.agent.rank, self.info.ctx);
        let ctx = self.agent.uni.state.lock().child_ctx(self.info.ctx, seq);
        Comm::new(
            CommInfo {
                ctx,
                ranks: self.info.ranks.clone(),
                me: self.info.me,
            },
            self.agent.clone(),
        )
    }

    /// `n` duplicates (convenience for building N_DUP bundles).
    #[track_caller]
    pub fn dup_n(&self, n: usize) -> Vec<Comm> {
        (0..n).map(|_| self.dup()).collect()
    }

    /// Split by color/key (like `MPI_Comm_split`). Ranks passing a negative
    /// color get `None`. Synchronizes all members of this communicator.
    // The `expect`s below assert split-rendezvous bookkeeping shared by all
    // members; `position` must succeed because this rank deposited itself.
    #[allow(clippy::expect_used, clippy::unwrap_used)]
    #[track_caller]
    pub fn split(&self, color: i64, key: u64) -> Option<Comm> {
        self.record_coll(
            CollKind::Split,
            None,
            0,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        let uni = self.agent.uni.clone();
        let gather_key = (self.info.ctx, seq);
        let expected = self.size();
        let me = self.rank();
        let now = self.agent.now();

        let to_wake = {
            let mut st = uni.state.lock();
            let entry = st.splits.entry(gather_key).or_insert_with(|| SplitGather {
                entries: Vec::new(),
                expected,
                latest: SimTime::ZERO,
                waiters: Vec::new(),
                result: None,
            });
            entry.entries.push((me, color, key));
            entry.latest = entry.latest.max(now);
            entry.waiters.push(self.agent.cell.clone());
            if entry.entries.len() == expected {
                // Last depositor: compute groups, allocate child contexts
                // through the registry (so every rank agrees), publish.
                let mut sg = st.splits.remove(&gather_key).expect("split entry");
                let latest = sg.latest;
                let parent = self.info.ctx;
                let mut res = crate::state::SplitResult::compute(&sg.entries, latest, || 0);
                for (gi, g) in res.groups.iter_mut().enumerate() {
                    g.1 = st.child_ctx(parent, (1 << 32) | (seq << 8) | gi as u64);
                }
                sg.result = Some(Arc::new(res));
                let waiters = std::mem::take(&mut sg.waiters);
                st.splits.insert(gather_key, sg);
                Some((waiters, latest))
            } else {
                None
            }
        };
        // The last depositor wakes everyone, including itself; its own
        // stray wake is consumed below.
        if let Some((waiters, latest)) = to_wake {
            for cell in &waiters {
                uni.engine.wake(cell, latest);
            }
        }

        // Wait until the result is available. Register the block with the
        // verifier so a rank missing from the split shows up in a deadlock
        // diagnosis as "blocked in MPI_Comm_split".
        if let Some(v) = uni.verify.as_ref() {
            v.wait_begin_split(self.agent.id, self.info.ctx);
        }
        let result = loop {
            {
                let mut st = uni.state.lock();
                let entry = st
                    .splits
                    .get_mut(&gather_key)
                    .expect("split entry vanished");
                if let Some(res) = entry.result.clone() {
                    // Last reader cleans up.
                    entry.expected -= 1;
                    if entry.expected == 0 {
                        st.splits.remove(&gather_key);
                    }
                    break res;
                }
            }
            let t = uni.engine.park(&self.agent.cell);
            self.agent.advance_to(t);
        };
        if let Some(v) = uni.verify.as_ref() {
            v.wait_end(self.agent.id);
        }
        if let Some(t) = uni.engine.consume_pending(&self.agent.cell) {
            self.agent.advance_to(t);
        }
        self.agent.advance_to(result.at);

        if color < 0 {
            return None;
        }
        let (ctx, members) = result
            .group_of(me)
            .expect("non-negative color must produce a group");
        let my_index = members.iter().position(|&r| r == me).unwrap();
        let world_ranks: Vec<u32> = members.iter().map(|&r| self.info.ranks[r]).collect();
        Some(Comm::new(
            CommInfo {
                ctx,
                ranks: Arc::new(world_ranks),
                me: my_index,
            },
            self.agent.clone(),
        ))
    }

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Nonblocking send to communicator rank `dst` with a user tag.
    #[track_caller]
    pub fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()> {
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Isend, payload.len());
        isend_raw(
            &self.agent,
            self.info.ctx,
            self.info.ranks[dst],
            tag as u64,
            payload,
        )
    }

    /// Nonblocking receive from communicator rank `src`.
    #[track_caller]
    pub fn irecv(&self, src: usize, tag: u32) -> Request<Payload> {
        self.agent.uni.metrics.op(self.agent.rank, OpKind::Irecv, 0);
        irecv_raw(&self.agent, self.info.ctx, self.info.ranks[src], tag as u64)
    }

    /// Blocking send.
    #[track_caller]
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        let t0 = self.agent.now();
        let n = payload.len();
        self.agent.uni.metrics.op(self.agent.rank, OpKind::Send, n);
        let r = self.isend(dst, tag, payload);
        self.wait(&r);
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                format!("MPI_Send {n}B -> {dst}")
            });
    }

    /// Blocking receive; returns the payload.
    #[track_caller]
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        let t0 = self.agent.now();
        let r = self.irecv(src, tag);
        let p = self.wait(&r);
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Recv, p.len());
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                format!("MPI_Recv {}B <- {src}", p.len())
            });
        p
    }

    /// Record the virtual duration of a blocking call that started at `t0`.
    fn blocking_done(&self, t0: SimTime) {
        let d = self.agent.now().saturating_since(t0);
        self.agent
            .uni
            .metrics
            .blocking_duration(self.agent.rank, d.as_nanos());
    }

    /// Blocking concurrent send+receive (`MPI_Sendrecv`).
    #[track_caller]
    pub fn sendrecv(&self, dst: usize, src: usize, tag: u32, payload: Payload) -> Payload {
        let rr = self.irecv(src, tag);
        let sr = self.isend(dst, tag, payload);
        self.wait(&sr);
        self.wait(&rr)
    }

    /// Wait for a request (`MPI_Wait`): blocks, returns the value, advances
    /// this rank's clock to the completion time.
    pub fn wait<T>(&self, req: &Request<T>) -> T {
        let t0 = self.agent.now();
        let v = self.agent.wait(req);
        let d = self.agent.now().saturating_since(t0);
        self.agent
            .uni
            .metrics
            .wait_duration(self.agent.rank, d.as_nanos());
        v
    }

    /// Wait for a request, recording a `Wait` trace span with `label`.
    pub fn wait_traced<T>(&self, req: &Request<T>, label: &str) -> T {
        self.wait_traced_impl(req, label, None)
    }

    /// Wait for a request, recording a `Wait` trace span tagged with the
    /// pipeline chunk index the request belongs to.
    pub fn wait_traced_chunk<T>(&self, req: &Request<T>, label: &str, chunk: u32) -> T {
        self.wait_traced_impl(req, label, Some(chunk))
    }

    fn wait_traced_impl<T>(&self, req: &Request<T>, label: &str, chunk: Option<u32>) -> T {
        let t0 = self.agent.now();
        let v = self.wait(req);
        let owned = label.to_string();
        self.agent
            .trace_span_chunk(SpanKind::Wait, chunk, t0, self.agent.now(), move || owned);
        v
    }

    /// Nonblocking completion probe (`MPI_Test`).
    pub fn test<T>(&self, req: &Request<T>) -> bool {
        self.agent.uni.metrics.test_probe(self.agent.rank);
        let done = self.agent.test(req);
        if done {
            // Only successful probes are logged: they prove the rank
            // observed completion (a request retired via `test` is not a
            // leak), and recording failed polls would flood the log.
            if let (Some(v), Some(id)) = (self.agent.uni.verify.as_ref(), req.verify_id()) {
                v.record(VEvent::TestObserved {
                    agent: self.agent.id,
                    req: id,
                });
            }
        }
        done
    }

    /// Wait for all requests in order (`MPI_Waitall` for sends).
    pub fn wait_all(&self, reqs: &[Request<()>]) {
        self.wait_all_payloads(reqs);
    }

    /// Wait for all requests in order and return their values
    /// (`MPI_Waitall` for receives and collectives).
    pub fn wait_all_payloads<T>(&self, reqs: &[Request<T>]) -> Vec<T> {
        reqs.iter().map(|r| self.wait(r)).collect()
    }

    // ---------------------------------------------------------------
    // Blocking collectives (run inline on the rank thread)
    // ---------------------------------------------------------------

    /// Blocking broadcast from `root`. `data` must be `Some` at the root;
    /// `len` is the payload size every rank expects.
    #[track_caller]
    pub fn bcast(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        self.record_coll(
            CollKind::Bcast,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "bcast root data length mismatch"),
                None => panic!("bcast root must supply data"),
            }
        }
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Bcast, len);
        let plans = self.plans(CollKind::Bcast, len, root);
        let input = if self.info.me == root { data } else { None };
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], input),
            "bcast",
        );
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                format!("MPI_Bcast {len}B root={root}")
            });
        out
    }

    /// Blocking sum-reduction to `root`; returns `Some` at the root.
    #[track_caller]
    pub fn reduce(&self, root: usize, contrib: Payload) -> Option<Payload> {
        self.record_coll(
            CollKind::Reduce,
            Some(root as u32),
            contrib.len(),
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range (p={p})");
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Reduce, n);
        let plans = self.plans(CollKind::Reduce, n, root);
        let out = execute_plan(&self.cctx(seq), &plans[self.info.me], Some(contrib));
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                format!("MPI_Reduce {n}B root={root}")
            });
        out
    }

    /// Blocking sum-allreduce.
    #[track_caller]
    pub fn allreduce(&self, contrib: Payload) -> Payload {
        self.record_coll(
            CollKind::Allreduce,
            None,
            contrib.len(),
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Allreduce, n);
        let plans = self.plans(CollKind::Allreduce, n, 0);
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], Some(contrib)),
            "allreduce",
        );
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                format!("MPI_Allreduce {n}B")
            });
        out
    }

    /// Blocking barrier.
    #[track_caller]
    pub fn barrier(&self) {
        self.record_coll(
            CollKind::Barrier,
            None,
            0,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Barrier, 0);
        let plans = self.plans(CollKind::Barrier, 0, 0);
        execute_plan(&self.cctx(seq), &plans[self.info.me], None);
        self.blocking_done(t0);
        self.agent
            .trace_span(SpanKind::BlockingCall, t0, self.agent.now(), || {
                "MPI_Barrier".to_string()
            });
    }

    /// Blocking scatter of `len` bytes from `root`; returns this rank's
    /// chunk (`chunk_bounds` partitioning in root-relative order).
    #[track_caller]
    pub fn scatter(&self, root: usize, data: Option<Payload>, len: usize) -> Payload {
        self.record_coll(
            CollKind::Scatter,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "scatter root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "scatter root data length mismatch"),
                None => panic!("scatter root must supply data"),
            }
        }
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Scatter, len);
        let plans = self.plans(CollKind::Scatter, len, root);
        let input = if self.info.me == root { data } else { None };
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], input),
            "scatter",
        );
        self.blocking_done(t0);
        out
    }

    /// Blocking gather (inverse of scatter); returns `Some` at the root.
    #[track_caller]
    pub fn gather(&self, root: usize, chunk: Payload, len: usize) -> Option<Payload> {
        self.record_coll(
            CollKind::Gather,
            Some(root as u32),
            len,
            true,
            std::panic::Location::caller(),
        );
        let p = self.size();
        assert!(root < p, "gather root {root} out of range (p={p})");
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Gather, len);
        let plans = self.plans(CollKind::Gather, len, root);
        let out = execute_plan(&self.cctx(seq), &plans[self.info.me], Some(chunk));
        self.blocking_done(t0);
        out
    }

    /// Blocking allgather; `len` is the assembled size.
    #[track_caller]
    pub fn allgather(&self, chunk: Payload, len: usize) -> Payload {
        self.record_coll(
            CollKind::Allgather,
            None,
            len,
            true,
            std::panic::Location::caller(),
        );
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent
            .uni
            .metrics
            .op(self.agent.rank, OpKind::Allgather, len);
        let plans = self.plans(CollKind::Allgather, len, 0);
        let out = expect_out(
            execute_plan(&self.cctx(seq), &plans[self.info.me], Some(chunk)),
            "allgather",
        );
        self.blocking_done(t0);
        out
    }

    // ---------------------------------------------------------------
    // Nonblocking collectives (run on a progress actor)
    // ---------------------------------------------------------------

    /// Nonblocking broadcast (`MPI_Ibcast`). Posting costs `post_base` only:
    /// the paper's Fig. 6 shows Ibcast posts take "very little time" (the
    /// payload is handed to the progress engine zero-copy), in contrast to
    /// `MPI_Ireduce`, whose posts cost a full buffer copy.
    #[track_caller]
    pub fn ibcast(&self, root: usize, data: Option<Payload>, len: usize) -> Request<Payload> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        let cost = self.agent.uni.profile.post_base;
        self.agent.advance(cost);
        self.post_done(t0, OpKind::Ibcast, len);
        self.agent
            .trace_span(SpanKind::Post, t0, self.agent.now(), || {
                format!("MPI_Ibcast post {len}B root={root}")
            });
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range (p={p})");
        if self.info.me == root {
            match data.as_ref() {
                Some(d) => assert_eq!(d.len(), len, "bcast root data length mismatch"),
                None => panic!("bcast root must supply data"),
            }
        }
        let plans = self.plans(CollKind::Bcast, len, root);
        let input = if self.info.me == root { data } else { None };
        let info = self.info.clone();
        self.dispatch(
            CollKind::Bcast,
            Some(root as u32),
            len,
            site,
            move |agent| {
                let cctx = CollCtx {
                    agent,
                    info: &info,
                    seq,
                };
                expect_out(execute_plan(&cctx, &plans[info.me], input), "bcast")
            },
        )
    }

    /// Nonblocking reduction (`MPI_Ireduce`); every rank pays the buffer
    /// copy at post time. Root's request yields `Some(result)`.
    #[track_caller]
    pub fn ireduce(&self, root: usize, contrib: Payload) -> Request<Option<Payload>> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.now();
        let cost = self.agent.uni.profile.post_base + self.agent.uni.profile.copy_time(n);
        self.agent.advance(cost);
        self.post_done(t0, OpKind::Ireduce, n);
        self.agent
            .trace_span(SpanKind::Post, t0, self.agent.now(), || {
                format!("MPI_Ireduce post {n}B root={root}")
            });
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range (p={p})");
        let plans = self.plans(CollKind::Reduce, n, root);
        let info = self.info.clone();
        self.dispatch(CollKind::Reduce, Some(root as u32), n, site, move |agent| {
            let cctx = CollCtx {
                agent,
                info: &info,
                seq,
            };
            execute_plan(&cctx, &plans[info.me], Some(contrib))
        })
    }

    /// Nonblocking allreduce (`MPI_Iallreduce`).
    #[track_caller]
    pub fn iallreduce(&self, contrib: Payload) -> Request<Payload> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let n = contrib.len();
        let t0 = self.agent.now();
        let cost = self.agent.uni.profile.post_base + self.agent.uni.profile.copy_time(n);
        self.agent.advance(cost);
        self.post_done(t0, OpKind::Iallreduce, n);
        self.agent
            .trace_span(SpanKind::Post, t0, self.agent.now(), || {
                format!("MPI_Iallreduce post {n}B")
            });
        let plans = self.plans(CollKind::Allreduce, n, 0);
        let info = self.info.clone();
        self.dispatch(CollKind::Allreduce, None, n, site, move |agent| {
            let cctx = CollCtx {
                agent,
                info: &info,
                seq,
            };
            expect_out(
                execute_plan(&cctx, &plans[info.me], Some(contrib)),
                "allreduce",
            )
        })
    }

    /// Nonblocking barrier (`MPI_Ibarrier`) — the wake-up signal of the
    /// multiple-PPN sleep mechanism.
    #[track_caller]
    pub fn ibarrier(&self) -> Request<()> {
        let site = std::panic::Location::caller();
        let seq = self.coll_seq_next();
        let t0 = self.agent.now();
        self.agent.advance(self.agent.uni.profile.post_base);
        self.post_done(t0, OpKind::Ibarrier, 0);
        let plans = self.plans(CollKind::Barrier, 0, 0);
        let info = self.info.clone();
        self.dispatch(CollKind::Barrier, None, 0, site, move |agent| {
            let cctx = CollCtx {
                agent,
                info: &info,
                seq,
            };
            execute_plan(&cctx, &plans[info.me], None);
        })
    }

    /// Record a nonblocking post: the op counters plus the post-duration
    /// histogram.
    fn post_done(&self, t0: SimTime, kind: OpKind, bytes: usize) {
        let m = &self.agent.uni.metrics;
        m.op(self.agent.rank, kind, bytes);
        m.post_duration(
            self.agent.rank,
            self.agent.now().saturating_since(t0).as_nanos(),
        );
    }

    /// Run `f` on a fresh progress actor whose clock starts at this rank's
    /// current time; the returned request completes with `f`'s value at the
    /// actor's final time. `kind`/`root`/`len`/`site` describe the
    /// collective for the verifier's event log.
    fn dispatch<T, F>(
        &self,
        kind: CollKind,
        root: Option<u32>,
        len: usize,
        site: Site,
        f: F,
    ) -> Request<T>
    where
        T: Send + 'static,
        F: FnOnce(&Agent) -> T + Send + 'static,
    {
        let uni = self.agent.uni.clone();
        let rank = self.agent.rank;
        let op_idx = self.agent.op_counter.fetch_add(1, Ordering::Relaxed);
        let id = op_actor_id(rank, op_idx);
        let cell = Arc::new(ParkCell::new());
        let start = self.agent.now();
        let (req, vid): (Request<T>, Option<ReqId>) = match uni.verify.as_ref() {
            Some(v) => {
                let rid = v.next_req_id();
                v.record(VEvent::Coll {
                    agent: self.agent.id,
                    rank,
                    ctx: self.info.ctx,
                    kind,
                    root,
                    len,
                    blocking: false,
                    req: Some(rid),
                    op_agent: Some(id),
                    site: Some(site),
                });
                (
                    Request::new_tracked(ReqMeta {
                        verifier: v.clone(),
                        id: rid,
                    }),
                    Some(rid),
                )
            }
            None => (Request::new(), None),
        };
        let req2 = req.clone();
        let uni2 = uni.clone();
        let cell2 = cell.clone();
        uni.metrics.pool_occupancy.inc();
        // The op body is mode-agnostic: `await_release` blocks a pool
        // thread or consumes the fiber's deposited release time, and the
        // engine releases the op at its post time `start` either way.
        let body: Box<dyn FnOnce() + Send> = Box::new(move || {
            struct Finish {
                uni: Arc<crate::universe::UniShared>,
                id: u32,
            }
            impl Drop for Finish {
                fn drop(&mut self) {
                    self.uni.engine.actor_finished(self.id);
                }
            }
            let _guard = Finish {
                uni: uni2.clone(),
                id,
            };
            struct Occupied(Arc<crate::universe::UniShared>);
            impl Drop for Occupied {
                fn drop(&mut self) {
                    self.0.metrics.pool_occupancy.dec();
                }
            }
            let _occupied = Occupied(uni2.clone());
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                uni2.engine.await_release(&cell2);
                let agent = Agent::new_op(id, rank, start, cell2.clone(), uni2.clone());
                (f(&agent), agent)
            }));
            match out {
                Ok((v, agent)) => {
                    // Log completion before completing the request, so an
                    // analysis scanning forward from a matched wait always
                    // finds the collective's completion snapshot.
                    if let (Some(vf), Some(rid)) = (uni2.verify.as_ref(), vid) {
                        vf.record(VEvent::CollDone {
                            req: rid,
                            op_agent: id,
                        });
                    }
                    let done = agent.now();
                    uni2.edge(ovcomm_simnet::EdgeKind::PostWait, id, done, rank, done);
                    uni2.complete(&req2, v, done)
                }
                Err(e) => {
                    // Fiber cancellation keeps unwinding; deadlock unwinds
                    // land here; other panics are recorded for the
                    // universe to surface.
                    if e.downcast_ref::<ovcomm_simnet::ForcedUnwind>().is_some() {
                        std::panic::resume_unwind(e);
                    }
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<op actor panic>".to_string());
                    uni2.record_op_panic(rank, msg);
                }
            }
        });
        // Register before returning so the engine cannot advance past the
        // post time before the op actor starts. The op becomes ready at
        // its post time, which keeps the release order — and therefore the
        // whole simulation — identical across execution modes.
        match uni.exec {
            crate::universe::ExecMode::EventDriven => {
                let fiber = ovcomm_simnet::Fiber::new(uni.fiber_stack, body);
                uni.engine.register_fiber_at(id, fiber, cell, start);
            }
            crate::universe::ExecMode::Threads => {
                uni.engine.register_actor_at(id, cell, start);
                uni.pool.submit(body);
            }
        }
        req
    }
}
