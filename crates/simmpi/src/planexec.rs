//! The backend-neutral collective plan executor.
//!
//! Interprets a [`CollPlan`] on behalf of one rank: posts the plan's
//! sends and receives through the backend's p2p layer, charges per-round
//! slack and reduction compute, materializes buffers (zero-copy slices of
//! the rank's input or received payloads), and drains completions in the
//! order the builder recorded — reproducing the blocking-wait behavior of
//! the hand-written algorithms this replaced. Local payload manipulation
//! (slice / concat / reduce arithmetic) costs no modeled time; only
//! `Slack`, `Reduce` charging, and message transport do.
//!
//! The executor is generic over [`PlanIo`], the narrow I/O surface a
//! backend must provide. The virtual-time simulator implements it on its
//! internal `CollCtx` (progress-actor clocks, flow-network transport); the
//! `ovcomm-rt` wall-clock backend implements it on real shared-memory
//! mailboxes. Both run this exact code, so all 13 plan builders, the
//! static linter, and the `CollSelector` behave identically on either
//! backend.

use ovcomm_simnet::SimTime;
use ovcomm_verify::plan::{BufId, CollPlan, StepOp};

use crate::payload::Payload;
use crate::request::Request;

/// The per-instance I/O surface a backend hands the plan executor: tagged
/// internal p2p, request waiting, per-round slack, reduction-compute
/// charging, and (optional) per-step span tracing.
pub trait PlanIo {
    /// Communicator size (must equal the plan's `p`).
    fn p(&self) -> usize;
    /// This rank's index within the communicator (must equal the plan's
    /// `me`).
    fn me(&self) -> usize;
    /// Nonblocking internal send of `payload` to communicator index `dst`
    /// with plan-assigned step tag `tag`.
    fn isend(&self, dst: usize, tag: u32, payload: Payload) -> Request<()>;
    /// Nonblocking internal receive from communicator index `src` with
    /// plan-assigned step tag `tag`.
    fn irecv(&self, src: usize, tag: u32) -> Request<Payload>;
    /// Block until a send request completes.
    fn wait_unit(&self, r: &Request<()>);
    /// Block until a receive request completes; returns its payload.
    fn wait_payload(&self, r: &Request<Payload>) -> Payload;
    /// Charge one communication round of software slack.
    fn slack(&self);
    /// Charge the local reduction of an `n`-byte operand (the executor
    /// performs the actual arithmetic via `Payload::reduce_sum_f64`).
    fn reduce_charge(&self, n: usize);
    /// Current time on this backend's clock (virtual or wall).
    fn now(&self) -> SimTime;
    /// Record a `CollStep` span from `t0` to now (label built lazily; no-op
    /// when tracing is off).
    fn step_span(&self, t0: SimTime, label: impl FnOnce() -> String);
}

/// An outstanding nonblocking step posted by the executor.
enum Pending {
    Send(Request<()>),
    Recv(Request<Payload>, BufId),
}

/// Wait for step `idx` if it is still outstanding, storing a receive's
/// payload into its destination buffer.
fn drain<C: PlanIo>(
    ctx: &C,
    pending: &mut [Option<Pending>],
    vals: &mut [Option<Payload>],
    idx: usize,
) {
    match pending[idx].take() {
        Some(Pending::Send(r)) => ctx.wait_unit(&r),
        Some(Pending::Recv(r, into)) => {
            let v = ctx.wait_payload(&r);
            vals[into.0 as usize] = Some(v);
        }
        None => {}
    }
}

/// Materialize buffer `b`: an already-produced value, a still-pending
/// receive (drained here — only reachable when the builder fenced it for
/// an earlier reader, so no extra wait is introduced), a slice of the
/// rank's input contribution, or the zero-length literal.
fn ensure<C: PlanIo>(
    ctx: &C,
    plan: &CollPlan,
    vals: &mut [Option<Payload>],
    pending: &mut [Option<Pending>],
    producer: &[Option<usize>],
    input: Option<&Payload>,
    b: BufId,
) -> Payload {
    if let Some(v) = &vals[b.0 as usize] {
        return v.clone();
    }
    if let Some(idx) = producer[b.0 as usize] {
        drain(ctx, pending, vals, idx);
        if let Some(v) = &vals[b.0 as usize] {
            return v.clone();
        }
    }
    let buf = &plan.bufs[b.0 as usize];
    if let Some(off) = buf.input_off {
        match input {
            Some(p) => return p.slice(off, off + buf.len),
            None => panic!("plan reads input buffer b{} but rank has no input", b.0),
        }
    }
    assert_eq!(buf.len, 0, "buffer b{} read before being produced", b.0);
    Payload::from_vec(Vec::new())
}

/// One-line label for the `CollStep` trace span of step `i`.
fn step_label(plan: &CollPlan, i: usize) -> String {
    let algo = plan.algo;
    match &plan.steps[i].op {
        StepOp::Slack => format!("{algo} s{i} slack"),
        StepOp::Send { peer, buf, .. } => {
            format!("{algo} s{i} send {}B -> {peer}", plan.buf_len(*buf))
        }
        StepOp::Recv { peer, into, .. } => {
            format!("{algo} s{i} recv {}B <- {peer}", plan.buf_len(*into))
        }
        StepOp::Reduce { into, .. } => {
            format!("{algo} s{i} reduce {}B", plan.buf_len(*into))
        }
        StepOp::Copy { into, .. } => {
            format!("{algo} s{i} copy {}B", plan.buf_len(*into))
        }
    }
}

/// Execute `plan` for this rank on backend `ctx`. `input` is the rank's
/// local contribution (present iff `plan.input` is) and the return value is
/// the rank's result (present iff `plan.output` is).
pub fn execute_plan<C: PlanIo>(
    ctx: &C,
    plan: &CollPlan,
    input: Option<Payload>,
) -> Option<Payload> {
    debug_assert_eq!(plan.p, ctx.p());
    debug_assert_eq!(plan.me, ctx.me());
    if let (Some((_, len)), Some(p)) = (plan.input, input.as_ref()) {
        assert_eq!(
            p.len(),
            len,
            "input payload length does not match the plan's input range"
        );
    }

    let mut vals: Vec<Option<Payload>> = vec![None; plan.bufs.len()];
    let mut pending: Vec<Option<Pending>> = (0..plan.steps.len()).map(|_| None).collect();
    // Which step receives into each buffer, for `ensure`'s fallback drain.
    let mut producer: Vec<Option<usize>> = vec![None; plan.bufs.len()];
    for (i, s) in plan.steps.iter().enumerate() {
        if let StepOp::Recv { into, .. } = &s.op {
            producer[into.0 as usize] = Some(i);
        }
    }

    for (i, step) in plan.steps.iter().enumerate() {
        let t0 = ctx.now();
        // Complete dependencies in the order the builder recorded them —
        // the blocking-wait order of the original algorithm.
        for d in &step.deps {
            drain(ctx, &mut pending, &mut vals, d.0 as usize);
        }
        match &step.op {
            StepOp::Slack => ctx.slack(),
            StepOp::Send { peer, buf, tag } => {
                let payload = ensure(
                    ctx,
                    plan,
                    &mut vals,
                    &mut pending,
                    &producer,
                    input.as_ref(),
                    *buf,
                );
                pending[i] = Some(Pending::Send(ctx.isend(*peer, *tag, payload)));
            }
            StepOp::Recv { peer, into, tag } => {
                pending[i] = Some(Pending::Recv(ctx.irecv(*peer, *tag), *into));
            }
            StepOp::Reduce { a, b, into } => {
                let pa = ensure(
                    ctx,
                    plan,
                    &mut vals,
                    &mut pending,
                    &producer,
                    input.as_ref(),
                    *a,
                );
                let pb = ensure(
                    ctx,
                    plan,
                    &mut vals,
                    &mut pending,
                    &producer,
                    input.as_ref(),
                    *b,
                );
                ctx.reduce_charge(pa.len());
                vals[into.0 as usize] = Some(pa.reduce_sum_f64(&pb));
            }
            StepOp::Copy { parts, into } => {
                let views: Vec<Payload> = parts
                    .iter()
                    .map(|part| {
                        ensure(
                            ctx,
                            plan,
                            &mut vals,
                            &mut pending,
                            &producer,
                            input.as_ref(),
                            part.buf,
                        )
                        .slice(part.off, part.off + part.len)
                    })
                    .collect();
                let out = match <[Payload; 1]>::try_from(views) {
                    Ok([single]) => single, // zero-copy view
                    Err(views) => Payload::concat(&views),
                };
                vals[into.0 as usize] = Some(out);
            }
        }
        ctx.step_span(t0, || step_label(plan, i));
    }

    // Drain everything still outstanding, in post order — the builder's
    // trailing fence.
    for i in 0..plan.steps.len() {
        drain(ctx, &mut pending, &mut vals, i);
    }

    // `ensure` rather than a direct lookup: single-rank trivial plans set
    // the output to the untouched input buffer.
    plan.output.map(|b| {
        ensure(
            ctx,
            plan,
            &mut vals,
            &mut pending,
            &producer,
            input.as_ref(),
            b,
        )
    })
}
