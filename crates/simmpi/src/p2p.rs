//! Point-to-point transport: eager and rendezvous protocols over the flow
//! network.
//!
//! Timing model (constants from [`ovcomm_simnet::MachineProfile`]):
//!
//! * **Posting** a send costs `small_post`, plus an internal buffer copy
//!   (`n / copy_bw`) for eager messages; posting a receive costs
//!   `small_post`.
//! * **Eager** (`n < eager_limit`): the sender's request completes at post
//!   time (buffered); data is injected after the one-way latency α and
//!   flows to the destination regardless of whether the receive is posted;
//!   the receive completes one unpack copy after both the data has arrived
//!   and the receive was posted.
//! * **Rendezvous** (`n ≥ eager_limit`): the transfer starts only when both
//!   sides have posted, after α plus a handshake round-trip; sender and
//!   receiver requests complete together when the last byte arrives. This
//!   synchronization delay is one of the idle-NIC gaps that the paper's
//!   overlap techniques fill.
//!
//! Flows are capped per-stream at `stream_cap(n)` (inter-node) or
//! `shm_stream_bw` (intra-node) and share NIC/memory resources max–min
//! fairly with every other concurrent transfer — so overlapping operations
//! genuinely raises achieved bandwidth in the model, rather than being
//! assumed to.

use std::sync::Arc;

use ovcomm_simnet::{EdgeKind, SimDur, SimTime};
use ovcomm_verify::{Event, ReqId, INTERNAL_TAG_BIT};

use crate::agent::{Agent, CLASS_P2P};
use crate::payload::Payload;
use crate::request::{ReqMeta, Request};
use crate::state::{MatchKey, MsgId, SendSlot, SlotState};
use crate::universe::UniShared;

/// Record a send/recv pairing decided by the matching layer. Always called
/// before either request completes, so analyses can rely on log order.
fn record_match(uni: &UniShared, send: Option<ReqId>, recv: Option<ReqId>) {
    if let (Some(v), Some(s), Some(r)) = (uni.verify.as_ref(), send, recv) {
        v.record(Event::Match { send: s, recv: r });
    }
}

/// Transfer path parameters: resources, per-stream cap, latency, rendezvous
/// handshake extra.
pub(crate) struct Path {
    pub(crate) resources: Vec<ovcomm_simnet::ResourceId>,
    pub(crate) cap: f64,
    pub(crate) alpha: SimDur,
    pub(crate) rdv_extra: SimDur,
}

pub(crate) fn path_params(uni: &UniShared, src: u32, dst: u32, n: usize) -> Path {
    let (src_node, dst_node) = (uni.node_of(src), uni.node_of(dst));
    let (resources, intra) = uni.resources.path(src_node, dst_node);
    let p = &uni.profile;
    if intra {
        Path {
            resources,
            cap: p.shm_stream_bw,
            alpha: p.alpha_intra,
            rdv_extra: SimDur(2 * p.alpha_intra.as_nanos()),
        }
    } else {
        Path {
            resources,
            cap: p.stream_cap(n),
            alpha: p.alpha_inter,
            rdv_extra: p.rendezvous_rtt,
        }
    }
}

/// Post a nonblocking send from `agent`'s rank to world rank `dst`.
#[track_caller]
pub(crate) fn isend_raw(
    agent: &Agent,
    ctx: u32,
    dst: u32,
    tag: u64,
    payload: Payload,
) -> Request<()> {
    let site = std::panic::Location::caller();
    let uni = agent.uni.clone();
    let n = payload.len();
    let eager = n < uni.profile.eager_limit;
    let mut cost = uni.profile.small_post;
    if eager {
        cost += uni.profile.copy_time(n);
    }
    agent.advance(cost);
    let req = match uni.verify.as_ref() {
        Some(v) => {
            let id = v.next_req_id();
            v.record(Event::SendPost {
                agent: agent.id,
                rank: agent.rank,
                ctx,
                dst,
                tag,
                bytes: n,
                internal: tag & INTERNAL_TAG_BIT != 0,
                req: id,
                site: Some(site),
            });
            Request::<()>::new_tracked(ReqMeta {
                verifier: v.clone(),
                id,
            })
        }
        None => Request::<()>::new(),
    };
    if eager {
        // Buffered: the sender may reuse its buffer immediately.
        let none = req.complete((), agent.now());
        debug_assert!(none.is_empty());
    }
    let key = MatchKey {
        ctx,
        src: agent.rank,
        dst,
        tag,
    };
    let req2 = req.clone();
    let ts = agent.now();
    agent.schedule(
        ts,
        CLASS_P2P,
        Box::new(move |_| {
            inject_send(&uni, key, payload, eager, req2, ts);
        }),
    );
    req
}

/// Post a nonblocking receive at `agent`'s rank from world rank `src`.
#[track_caller]
pub(crate) fn irecv_raw(agent: &Agent, ctx: u32, src: u32, tag: u64) -> Request<Payload> {
    let site = std::panic::Location::caller();
    let uni = agent.uni.clone();
    agent.advance(uni.profile.small_post);
    let req = match uni.verify.as_ref() {
        Some(v) => {
            let id = v.next_req_id();
            v.record(Event::RecvPost {
                agent: agent.id,
                rank: agent.rank,
                ctx,
                src,
                tag,
                internal: tag & INTERNAL_TAG_BIT != 0,
                req: id,
                site: Some(site),
            });
            Request::<Payload>::new_tracked(ReqMeta {
                verifier: v.clone(),
                id,
            })
        }
        None => Request::<Payload>::new(),
    };
    let key = MatchKey {
        ctx,
        src,
        dst: agent.rank,
        tag,
    };
    let req2 = req.clone();
    let tr = agent.now();
    agent.schedule(
        tr,
        CLASS_P2P,
        Box::new(move |_| {
            inject_recv(&uni, key, req2, tr);
        }),
    );
    req
}

/// Engine callback: a send reaches the matching layer at time `ts`.
fn inject_send(
    uni: &Arc<UniShared>,
    key: MatchKey,
    payload: Payload,
    eager: bool,
    sender_req: Request<()>,
    ts: SimTime,
) {
    let n = payload.len();
    let sender_vid = sender_req.verify_id();
    let msg_id;
    let matched_recv;
    {
        let mut st = uni.state.lock();
        st.messages += 1;
        if uni.node_of(key.src) == uni.node_of(key.dst) {
            st.intra_bytes += n as u64;
        } else {
            st.inter_bytes += n as u64;
        }
        msg_id = st.alloc_msg_id();
        matched_recv = st.recv_q.get_mut(&key).and_then(|q| q.pop_front());
        let slot = SendSlot {
            state: if eager {
                SlotState::EagerInFlight
            } else {
                SlotState::Rendezvous
            },
            payload,
            sender_req,
            // An eager message binds a waiting receive immediately; the
            // receive completes when the data lands.
            bound_recv: if eager { matched_recv.clone() } else { None },
        };
        st.slots.insert(msg_id, slot);
        if matched_recv.is_none() {
            st.send_q.entry(key).or_default().push_back(msg_id);
        }
    }
    if let Some(recv) = &matched_recv {
        record_match(uni, sender_vid, recv.verify_id());
    }
    if eager {
        launch_eager_flow(uni, key, msg_id, n, ts);
    } else if let Some(recv) = matched_recv {
        start_rendezvous(uni, key, msg_id, n, recv, ts);
    }
}

/// Engine callback: a receive reaches the matching layer at time `tr`.
// Slot-table `expect`s assert matcher bookkeeping: a queued message id
// always has a live slot.
#[allow(clippy::expect_used, clippy::unwrap_used)]
fn inject_recv(uni: &Arc<UniShared>, key: MatchKey, req: Request<Payload>, tr: SimTime) {
    enum Outcome {
        Queued,
        Bound(Option<ReqId>),
        DeliverNow(Payload, usize, Option<ReqId>),
        Rendezvous(MsgId, usize, Option<ReqId>),
    }
    let outcome = {
        let mut st = uni.state.lock();
        let head = st.send_q.get_mut(&key).and_then(|q| q.pop_front());
        match head {
            None => {
                st.recv_q.entry(key).or_default().push_back(req.clone());
                Outcome::Queued
            }
            Some(id) => {
                let slot = st.slots.get_mut(&id).expect("send slot missing");
                match slot.state {
                    SlotState::EagerInFlight => {
                        let svid = slot.sender_req.verify_id();
                        slot.bound_recv = Some(req.clone());
                        Outcome::Bound(svid)
                    }
                    SlotState::EagerArrived => {
                        let slot = st.slots.remove(&id).unwrap();
                        let n = slot.payload.len();
                        Outcome::DeliverNow(slot.payload, n, slot.sender_req.verify_id())
                    }
                    SlotState::Rendezvous => {
                        let n = slot.payload.len();
                        Outcome::Rendezvous(id, n, slot.sender_req.verify_id())
                    }
                }
            }
        }
    };
    match outcome {
        Outcome::Queued => {}
        Outcome::Bound(svid) => {
            record_match(uni, svid, req.verify_id());
        }
        Outcome::DeliverNow(payload, n, svid) => {
            record_match(uni, svid, req.verify_id());
            // Data already sits in the receiver's internal buffer: one
            // unpack copy from now.
            let done = tr + uni.profile.copy_time(n);
            uni.edge(EdgeKind::SendRecv, key.src, tr, key.dst, done);
            uni.complete(&req, payload, done);
        }
        Outcome::Rendezvous(id, n, svid) => {
            record_match(uni, svid, req.verify_id());
            start_rendezvous(uni, key, id, n, req, tr);
        }
    }
}

/// Launch the network flow of an eager message at `ts` (post-injection
/// time); on arrival, deliver to the bound/waiting receive or park the data
/// as "unexpected".
#[allow(clippy::expect_used, clippy::unwrap_used)]
fn launch_eager_flow(uni: &Arc<UniShared>, key: MatchKey, msg_id: MsgId, n: usize, ts: SimTime) {
    let path = path_params(uni, key.src, key.dst, n);
    let uni2 = uni.clone();
    let start_at = ts + path.alpha;
    uni.engine.schedule_engine(
        start_at,
        CLASS_P2P,
        Box::new(move |e| {
            let uni3 = uni2.clone();
            e.start_flow(
                path.resources,
                path.cap,
                n as f64,
                Box::new(move |e2| {
                    let ta = e2.now();
                    let deliver = {
                        let mut st = uni3.state.lock();
                        let slot = st.slots.get_mut(&msg_id).expect("slot vanished");
                        match slot.bound_recv.take() {
                            Some(recv) => {
                                let slot = st.slots.remove(&msg_id).unwrap();
                                Some((recv, slot.payload))
                            }
                            None => {
                                slot.state = SlotState::EagerArrived;
                                None
                            }
                        }
                    };
                    if let Some((recv, payload)) = deliver {
                        let done = ta + uni3.profile.copy_time(n);
                        uni3.edge(EdgeKind::SendRecv, key.src, ta, key.dst, done);
                        uni3.complete(&recv, payload, done);
                    }
                }),
            );
        }),
    );
}

/// Both sides of a rendezvous message are present at `tp`: run the
/// handshake, then the flow; complete both requests when it lands.
#[allow(clippy::expect_used)]
fn start_rendezvous(
    uni: &Arc<UniShared>,
    key: MatchKey,
    msg_id: MsgId,
    n: usize,
    recv: Request<Payload>,
    tp: SimTime,
) {
    let path = path_params(uni, key.src, key.dst, n);
    let start_at = tp + path.alpha + path.rdv_extra;
    let uni2 = uni.clone();
    uni.engine.schedule_engine(
        start_at,
        CLASS_P2P,
        Box::new(move |e| {
            let uni3 = uni2.clone();
            e.start_flow(
                path.resources,
                path.cap,
                n as f64,
                Box::new(move |e2| {
                    let ta = e2.now();
                    let slot = uni3
                        .state
                        .lock()
                        .slots
                        .remove(&msg_id)
                        .expect("rendezvous slot vanished");
                    uni3.edge(EdgeKind::SendRecv, key.src, ta, key.dst, ta);
                    uni3.complete(&slot.sender_req, (), ta);
                    uni3.complete(&recv, slot.payload, ta);
                }),
            );
        }),
    );
}
