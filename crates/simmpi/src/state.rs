//! Shared MPI library state: message matching, communicator-context and
//! split registries, and traffic statistics.
//!
//! All mutations happen either under the single state lock from engine
//! callbacks (message injection, arrival, pairing) or from rank threads
//! (context allocation, split deposits). Matching follows MPI's
//! non-overtaking rule per `(context, source, destination, tag)` key:
//! entries are FIFO queues, so two messages on the same envelope can never
//! pass each other.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ovcomm_simnet::{ParkCell, SimTime};

use crate::payload::Payload;
use crate::request::Request;

/// Envelope key used for matching sends with receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct MatchKey {
    /// Communicator context id.
    pub ctx: u32,
    /// Sender world rank.
    pub src: u32,
    /// Receiver world rank.
    pub dst: u32,
    /// Full 64-bit tag (user tags live in the low 32 bits; internal
    /// collective tags set bit 63).
    pub tag: u64,
}

/// Unique id for an in-flight message (send side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct MsgId(pub u64);

/// Send-side protocol state of a message slot.
pub(crate) enum SlotState {
    /// Eager message whose data flow is still in the network.
    EagerInFlight,
    /// Eager message fully arrived in the receiver's internal buffer.
    EagerArrived,
    /// Rendezvous send posted and waiting for the matching receive.
    Rendezvous,
}

/// One posted send awaiting (or bound to) a matching receive.
pub(crate) struct SendSlot {
    pub state: SlotState,
    pub payload: Payload,
    /// Sender's request — already complete for eager sends (buffered),
    /// completed at transfer end for rendezvous.
    pub sender_req: Request<()>,
    /// Receive request bound to this slot by the matcher, when the data has
    /// not yet arrived (eager) or not yet been transferred (rendezvous).
    pub bound_recv: Option<Request<Payload>>,
}

/// The global (per-Universe) MPI state.
#[derive(Default)]
pub(crate) struct MpiState {
    /// FIFO of unmatched send slots per envelope.
    pub send_q: HashMap<MatchKey, VecDeque<MsgId>>,
    /// FIFO of unmatched receives per envelope.
    pub recv_q: HashMap<MatchKey, VecDeque<Request<Payload>>>,
    /// All live send slots.
    pub slots: HashMap<MsgId, SendSlot>,
    pub next_msg_id: u64,
    /// Communicator context allocation: (parent ctx, per-rank dup/split
    /// sequence) → child ctx. All ranks of a communicator call dup/split in
    /// the same order, so the key is rank-independent.
    pub ctx_registry: HashMap<(u32, u64), u32>,
    pub next_ctx: u32,
    /// In-progress `split` rendezvous, keyed by (parent ctx, split seq).
    pub splits: HashMap<(u32, u64), SplitGather>,
    /// Live one-sided windows, keyed by (creating ctx, per-comm window
    /// seq). All members call `win_create` in the same order, so the key
    /// is rank-independent; the last `free` removes the entry.
    pub windows: HashMap<(u32, u64), Arc<parking_lot::Mutex<crate::rma::WinData>>>,
    /// Inter-node bytes injected into the network.
    pub inter_bytes: u64,
    /// Intra-node (shared-memory) bytes.
    pub intra_bytes: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Final virtual clock of each rank, recorded as rank closures return.
    pub rank_end_times: Vec<SimTime>,
}

/// Accumulates `split` participants until the whole communicator has called.
pub(crate) struct SplitGather {
    /// (comm rank, color, key) triples deposited so far.
    pub entries: Vec<(usize, i64, u64)>,
    /// Comm size: how many deposits to expect.
    pub expected: usize,
    /// Latest deposit clock — the virtual completion time of the split.
    pub latest: SimTime,
    /// Cells of ranks already parked waiting for the result.
    pub waiters: Vec<Arc<ParkCell>>,
    /// Computed result: for each comm rank, (child ctx, members' comm ranks
    /// in child order) — `None` until the last deposit.
    pub result: Option<Arc<SplitResult>>,
}

/// Outcome of a completed split, shared by all participants.
///
/// Exposed (hidden) for the `ovcomm-rt` wall-clock backend, whose split
/// rendezvous reuses this grouping logic so both backends agree on group
/// ordering and membership.
#[doc(hidden)]
pub struct SplitResult {
    /// For each color (in ascending order): assigned child ctx id and the
    /// parent-comm ranks that belong to it, ordered by (key, parent rank).
    pub groups: Vec<(i64, u32, Vec<usize>)>,
    /// Virtual time at which the split completed.
    pub at: SimTime,
}

impl MpiState {
    pub fn alloc_msg_id(&mut self) -> MsgId {
        let id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        id
    }

    /// Allocate (or look up) a child context for `(parent, seq)`.
    pub fn child_ctx(&mut self, parent: u32, seq: u64) -> u32 {
        if let Some(&c) = self.ctx_registry.get(&(parent, seq)) {
            return c;
        }
        let c = self.next_ctx;
        self.next_ctx += 1;
        self.ctx_registry.insert((parent, seq), c);
        c
    }
}

impl SplitResult {
    /// Compute groups from deposited entries: group by color (ascending,
    /// dropping negative colors = "undefined"), order members by (key,
    /// parent rank), and assign each group a fresh ctx.
    pub fn compute(
        entries: &[(usize, i64, u64)],
        at: SimTime,
        mut alloc_ctx: impl FnMut() -> u32,
    ) -> SplitResult {
        let mut by_color: Vec<(i64, Vec<(u64, usize)>)> = Vec::new();
        let mut colors: Vec<i64> = entries
            .iter()
            .map(|&(_, c, _)| c)
            .filter(|&c| c >= 0)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        for color in colors {
            let mut members: Vec<(u64, usize)> = entries
                .iter()
                .filter(|&&(_, c, _)| c == color)
                .map(|&(r, _, k)| (k, r))
                .collect();
            members.sort_unstable();
            by_color.push((color, members));
        }
        SplitResult {
            groups: by_color
                .into_iter()
                .map(|(color, members)| {
                    (
                        color,
                        alloc_ctx(),
                        members.into_iter().map(|(_, r)| r).collect(),
                    )
                })
                .collect(),
            at,
        }
    }

    /// Find the group containing parent-comm rank `r`, if any.
    pub fn group_of(&self, r: usize) -> Option<(u32, &[usize])> {
        self.groups
            .iter()
            .find(|(_, _, members)| members.contains(&r))
            .map(|(_, ctx, members)| (*ctx, members.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        // ranks 0..6, colors 1/0 alternating, keys descending to test
        // key-based ordering within a group.
        let entries = vec![
            (0usize, 1i64, 5u64),
            (1, 0, 4),
            (2, 1, 3),
            (3, 0, 2),
            (4, 1, 1),
            (5, -1, 0), // undefined color: excluded
        ];
        let mut next = 100;
        let res = SplitResult::compute(&entries, SimTime(9), || {
            next += 1;
            next
        });
        assert_eq!(res.groups.len(), 2);
        // color 0 first
        assert_eq!(res.groups[0].0, 0);
        assert_eq!(res.groups[0].2, vec![3, 1]); // key 2 before key 4
        assert_eq!(res.groups[1].0, 1);
        assert_eq!(res.groups[1].2, vec![4, 2, 0]);
        assert!(res.group_of(5).is_none());
        let (ctx, members) = res.group_of(2).unwrap();
        assert_eq!(ctx, res.groups[1].1);
        assert_eq!(members, &[4, 2, 0]);
    }

    #[test]
    fn ctx_registry_is_idempotent() {
        let mut st = MpiState::default();
        let a = st.child_ctx(0, 3);
        let b = st.child_ctx(0, 3);
        let c = st.child_ctx(0, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
