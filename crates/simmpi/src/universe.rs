//! The simulation universe: launches rank actors (fibers by default, OS
//! threads for differential testing), runs the event loop, and collects
//! results.

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use ovcomm_obs::MetricsSnapshot;
use ovcomm_simnet::{
    ClusterResources, ClusterSpec, Engine, Fabric, Fiber, ForcedUnwind, MachineProfile, NetStats,
    NodeMap, ParkCell, ResourceKind, SimDur, SimTime, Trace,
};
use ovcomm_verify::plan::{CollAlgo, CollPlan};
use ovcomm_verify::{DeadlockReport, Finding, Severity, Verifier, VerifyMode, VerifyReport};

use crate::agent::Agent;
use crate::collsel::CollSelector;
use crate::comm::{Comm, CommInfo};
use crate::metrics::SimMetrics;
use crate::progress::Pool;
use crate::request::Request;
use crate::state::MpiState;

/// World communicator context id.
pub(crate) const WORLD_CTX: u32 = 0;

/// How rank bodies (and progress ops) are executed.
///
/// Both modes run under the same serialized engine and release actors in
/// identical `(virtual time, actor id)` order, so a program produces
/// bit-identical results either way — that equivalence is what the
/// differential tests check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Every rank and every in-flight nonblocking operation is a stackful
    /// fiber resumed inline by the engine's scheduler thread. One OS
    /// thread total; scales to tens of thousands of ranks in one process.
    EventDriven,
    /// Legacy mode: one OS thread per rank plus a worker pool for
    /// progress ops. Costs an OS thread per rank, so it only scales to a
    /// few hundred ranks; kept for differential testing the fiber path.
    Threads,
}

/// Configuration for one simulated run.
pub struct SimConfig {
    /// The cluster (nodes + machine profile).
    pub cluster: ClusterSpec,
    /// Rank → node placement; `nodemap.nranks()` ranks are spawned.
    pub nodemap: NodeMap,
    /// Record `TraceSpan`s (needed for Fig-6-style timelines).
    pub trace: bool,
    /// Write the recorded trace as Perfetto/Chrome trace-event JSON to this
    /// path after the run (implies `trace`). Load it in `ui.perfetto.dev`.
    pub trace_out: Option<PathBuf>,
    /// Communication-correctness verification level. Defaults to
    /// [`VerifyMode::Strict`], so every run doubles as a correctness check;
    /// use [`SimConfig::with_verify`] to relax it.
    pub verify: VerifyMode,
    /// Collective-algorithm selection policy. The default reproduces the
    /// legacy hardcoded 32 KiB short/long thresholds exactly.
    pub coll_select: CollSelector,
    /// Execution mode for rank bodies: fibers (default) or OS threads.
    pub exec: ExecMode,
    /// Stack size for rank/op fibers in [`ExecMode::EventDriven`]. Stacks
    /// are committed lazily by the OS, so the default is generous; lower
    /// it for very large sweeps if address space matters.
    pub fiber_stack: usize,
}

impl SimConfig {
    /// `nranks` ranks placed `ppn`-per-node ("natural" placement, the
    /// paper's §V-D mapping) on a cluster with the given profile.
    pub fn natural(nranks: usize, ppn: usize, profile: MachineProfile) -> SimConfig {
        let nodemap = NodeMap::natural(nranks, ppn);
        let cluster = ClusterSpec::new(nodemap.nodes(), profile);
        SimConfig {
            cluster,
            nodemap,
            trace: false,
            trace_out: None,
            verify: VerifyMode::Strict,
            coll_select: CollSelector::default(),
            exec: ExecMode::EventDriven,
            fiber_stack: ovcomm_simnet::DEFAULT_STACK_SIZE,
        }
    }

    /// Explicit node map.
    pub fn with_map(nodemap: NodeMap, profile: MachineProfile) -> SimConfig {
        let cluster = ClusterSpec::new(nodemap.nodes(), profile);
        SimConfig {
            cluster,
            nodemap,
            trace: false,
            trace_out: None,
            verify: VerifyMode::Strict,
            coll_select: CollSelector::default(),
            exec: ExecMode::EventDriven,
            fiber_stack: ovcomm_simnet::DEFAULT_STACK_SIZE,
        }
    }

    /// Set the execution mode (fibers vs. OS threads).
    pub fn with_exec(mut self, exec: ExecMode) -> SimConfig {
        self.exec = exec;
        self
    }

    /// Replace the default full-bisection fabric with an explicit cluster
    /// topology (fat-tree or dragonfly) whose links contend.
    pub fn with_fabric(mut self, fabric: Fabric) -> SimConfig {
        self.cluster = self.cluster.with_fabric(fabric);
        self
    }

    /// Set the per-fiber stack size used in [`ExecMode::EventDriven`].
    pub fn with_fiber_stack(mut self, bytes: usize) -> SimConfig {
        self.fiber_stack = bytes;
        self
    }

    /// Set the verification level.
    pub fn with_verify(mut self, mode: VerifyMode) -> SimConfig {
        self.verify = mode;
        self
    }

    /// Set the collective-algorithm selection policy.
    pub fn with_coll_select(mut self, sel: CollSelector) -> SimConfig {
        self.coll_select = sel;
        self
    }

    /// Enable span tracing.
    pub fn with_trace(mut self) -> SimConfig {
        self.trace = true;
        self
    }

    /// Enable tracing and write the trace as Perfetto/Chrome trace-event
    /// JSON to `path` when the run completes.
    pub fn with_trace_out(mut self, path: impl Into<PathBuf>) -> SimConfig {
        self.trace = true;
        self.trace_out = Some(path.into());
        self
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum SimError {
    /// All ranks blocked with no event pending (mismatched communication).
    /// The report names each blocked rank's pending operation and, when one
    /// exists, the wait-for cycle among ranks.
    Deadlock {
        /// The structured diagnosis.
        report: DeadlockReport,
    },
    /// A rank thread (or progress actor) panicked.
    RankPanic {
        /// World rank of the first panicking thread.
        rank: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// The run completed but `VerifyMode::Strict` analysis found
    /// error-severity communication-correctness violations.
    Verification {
        /// All findings (errors first).
        findings: Vec<Finding>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { report } => write!(f, "{report}"),
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::Verification { findings } => {
                let errors = findings
                    .iter()
                    .filter(|x| x.severity == Severity::Error)
                    .count();
                write!(f, "verification failed: {errors} error(s)")?;
                for x in findings.iter().take(8) {
                    write!(f, "\n  {x}")?;
                }
                if findings.len() > 8 {
                    write!(f, "\n  ... and {} more finding(s)", findings.len() - 8)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Results of a successful run.
pub struct SimOutput<T> {
    /// Per-rank return values of the rank closure.
    pub results: Vec<T>,
    /// Final virtual clock of each rank.
    pub end_times: Vec<SimTime>,
    /// Latest final clock across ranks — the virtual makespan.
    pub makespan: SimTime,
    /// Total bytes that crossed node boundaries.
    pub inter_node_bytes: u64,
    /// Total bytes moved through intra-node shared memory.
    pub intra_node_bytes: u64,
    /// Total messages.
    pub messages: u64,
    /// Recorded spans, if tracing was enabled.
    pub trace: Option<Trace>,
    /// Snapshot of every metric the run recorded (byte/call counters,
    /// virtual-time histograms, pool gauges).
    pub metrics: MetricsSnapshot,
    /// Per-resource utilization integrals and flow queueing-delay totals.
    pub net: NetStats,
    /// Trace spans that arrived with `end < start` and were clamped —
    /// non-zero indicates an instrumentation bug upstream.
    pub clamped_spans: usize,
    /// Communication-correctness findings and leak counters (empty when
    /// verification was off). Under `Strict`, error findings abort the run
    /// instead, so this carries warnings only.
    pub verify: VerifyReport,
}

/// Everything shared between rank threads, progress workers and engine
/// callbacks.
pub(crate) struct UniShared {
    pub engine: Engine,
    pub state: Mutex<MpiState>,
    pub profile: MachineProfile,
    pub nodemap: NodeMap,
    pub resources: ClusterResources,
    /// Per-rank reduction-compute resource (capacity `gamma_reduce_bw ×
    /// reduce_parallel`): concurrent nonblocking collectives on one rank
    /// share it, so pipelined reductions cannot compute faster than the
    /// process's progress engine allows.
    pub cpu: Vec<ovcomm_simnet::ResourceId>,
    pub pool: Pool,
    pub tracing: bool,
    pub metrics: SimMetrics,
    pub op_panics: Mutex<Vec<(u32, String)>>,
    /// Event recorder for communication-correctness verification (`None`
    /// when `VerifyMode::Off`).
    pub verify: Option<Arc<Verifier>>,
    /// Verification level, consulted by the static plan linter at plan
    /// compile time (the dynamic recorder above covers execution).
    pub verify_mode: VerifyMode,
    /// Collective-algorithm selection policy for this run.
    pub coll_select: CollSelector,
    /// Compiled collective schedules, keyed by
    /// `(kind, algo, p, n, root)` — plans depend on nothing else, so one
    /// compile (plus static lint) serves every instance of a shape.
    pub plan_cache: Mutex<PlanCache>,
    /// How ops are dispatched: fibers (default) or pool threads.
    pub exec: ExecMode,
    /// Stack size for op fibers in event-driven mode.
    pub fiber_stack: usize,
}

/// One compiled plan shape plus its memoized static-analysis findings.
/// Lint (and, under `Strict`, model-check) findings are computed and
/// rendered exactly once, at first compile; cache hits return the plans
/// without re-rendering, so `Warn`-mode diagnostics print once per shape.
#[derive(Clone)]
pub struct CachedPlans {
    /// The per-rank schedules.
    pub plans: Arc<Vec<CollPlan>>,
    /// Rendered static-analysis findings (empty for clean plans).
    pub findings: Arc<Vec<String>>,
}

/// Cache of compiled per-rank collective schedules, keyed by plan shape.
pub type PlanCache = std::collections::BTreeMap<
    (ovcomm_verify::CollKind, CollAlgo, usize, usize, usize),
    CachedPlans,
>;

impl UniShared {
    /// Complete a request at virtual time `at` and wake its waiters.
    pub fn complete<T>(&self, req: &Request<T>, value: T, at: SimTime) {
        for cell in req.complete(value, at) {
            self.engine.wake(&cell, at);
        }
    }

    /// Node hosting a world rank.
    pub fn node_of(&self, rank: u32) -> usize {
        self.nodemap.node_of(rank as usize)
    }

    /// Record a panic that unwound a progress actor.
    pub fn record_op_panic(&self, rank: u32, msg: String) {
        self.op_panics.lock().push((rank, msg));
    }

    /// Record a happens-before edge in the trace (no-op when tracing is
    /// off). Used by the p2p layer (send→recv) and the dispatcher
    /// (operation completion → wait) so obs can rebuild the run's DAG.
    pub(crate) fn edge(
        &self,
        kind: ovcomm_simnet::EdgeKind,
        from_actor: u32,
        from_time: SimTime,
        to_actor: u32,
        to_time: SimTime,
    ) {
        if self.tracing {
            self.engine.record_edge(ovcomm_simnet::TraceEdge {
                kind,
                from_actor,
                from_time,
                to_actor,
                to_time,
            });
        }
    }
}

/// Encode a deterministic actor id for the `op_idx`-th nonblocking
/// operation posted by `rank`. Rank actors use ids `0..nranks`; operation
/// actors set the high bit.
pub(crate) fn op_actor_id(rank: u32, op_idx: u64) -> u32 {
    assert!(
        rank < (1 << 17),
        "rank {rank} too large for op-actor encoding"
    );
    assert!(
        op_idx < (1 << 14),
        "rank {rank} posted more than 16384 nonblocking operations in one run"
    );
    0x8000_0000 | (rank << 14) | (op_idx as u32)
}

/// World rank an actor id acts for (inverse of [`op_actor_id`] for
/// operation actors; identity for rank actors).
pub(crate) fn rank_of_actor(id: u32) -> u32 {
    if id & 0x8000_0000 != 0 {
        (id & 0x7FFF_FFFF) >> 14
    } else {
        id
    }
}

/// Human-readable track name for an actor id (inverse of [`op_actor_id`]
/// for operation actors), used for Perfetto thread names.
pub fn actor_name(id: u32) -> String {
    if id & 0x8000_0000 != 0 {
        let rank = (id & 0x7FFF_FFFF) >> 14;
        let op = id & 0x3FFF;
        format!("rank {rank} op {op}")
    } else {
        format!("rank {id}")
    }
}

/// Handle passed to each rank's closure: identity, clock, and the world
/// communicator.
pub struct RankCtx {
    pub(crate) agent: Agent,
    world: Comm,
    /// Per-kernel compute-share override: when some of this node's
    /// processes sleep (§III-B), the active ones own their cores, so
    /// compute-rate models should divide the node by the *active* count.
    active_ppn: std::cell::Cell<usize>,
}

impl RankCtx {
    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.agent.rank as usize
    }

    /// Total number of ranks.
    pub fn nranks(&self) -> usize {
        self.agent.uni.nodemap.nranks()
    }

    /// Node hosting this rank.
    pub fn node(&self) -> usize {
        self.agent.uni.node_of(self.agent.rank)
    }

    /// Number of ranks sharing this rank's node.
    pub fn ppn(&self) -> usize {
        let me = self.node();
        (0..self.nranks())
            .filter(|&r| self.agent.uni.nodemap.node_of(r) == me)
            .count()
    }

    /// Processes per node to use for compute-rate models: the launched PPN
    /// by default, or the active count set by [`RankCtx::set_active_ppn`]
    /// during a per-kernel-PPN stage (sleeping processes release their
    /// cores to the active ones).
    pub fn compute_ppn(&self) -> usize {
        let o = self.active_ppn.get();
        if o == 0 {
            self.ppn()
        } else {
            o
        }
    }

    /// Declare how many of this node's processes are actually computing
    /// (0 restores the default = launched PPN).
    pub fn set_active_ppn(&self, active: usize) {
        self.active_ppn.set(active);
    }

    /// The world communicator (all ranks).
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> SimTime {
        self.agent.now()
    }

    /// Charge modeled local computation time.
    pub fn advance(&self, d: SimDur) {
        self.agent.advance(d);
    }

    /// Charge `flops` of dense-kernel computation at `rate` flop/s,
    /// recording a `Compute` trace span when tracing is on.
    pub fn compute_flops(&self, flops: f64, rate: f64) {
        assert!(rate > 0.0 && flops >= 0.0);
        let t0 = self.agent.now();
        self.agent.advance(SimDur::from_secs_f64(flops / rate));
        self.agent.trace_span(
            ovcomm_simnet::SpanKind::Compute,
            t0,
            self.agent.now(),
            || format!("compute {flops:.3e} flops"),
        );
    }

    /// Sleep for `d` of virtual time (the `usleep` of the paper's
    /// multiple-PPN sleep/poll mechanism, §III-B).
    pub fn sleep(&self, d: SimDur) {
        self.agent.sleep(d);
    }

    /// The machine profile (for compute-rate lookups).
    pub fn profile(&self) -> &MachineProfile {
        &self.agent.uni.profile
    }

    /// The rank→node map.
    pub fn nodemap(&self) -> &NodeMap {
        &self.agent.uni.nodemap
    }

    /// Record a custom trace span (shown on Fig-6-style timelines).
    pub fn trace_span(
        &self,
        kind: ovcomm_simnet::SpanKind,
        start: SimTime,
        end: SimTime,
        label: String,
    ) {
        self.agent.trace_span(kind, start, end, move || label);
    }

    /// Record a custom trace span tagged with a pipeline chunk index.
    pub fn trace_span_chunk(
        &self,
        kind: ovcomm_simnet::SpanKind,
        chunk: u32,
        start: SimTime,
        end: SimTime,
        label: String,
    ) {
        self.agent
            .trace_span_chunk(kind, Some(chunk), start, end, move || label);
    }

    /// Record a `Phase` span from `start` to now — kernels bracket their
    /// algorithm phases (a SUMMA step, a purification iteration) with these
    /// so timelines and the critical-path analysis can group finer spans.
    pub fn phase_span(&self, start: SimTime, label: String) {
        self.agent.trace_span(
            ovcomm_simnet::SpanKind::Phase,
            start,
            self.agent.now(),
            move || label,
        );
    }
}

/// Run `f` on every rank of the configured cluster; the calling thread
/// drives the event loop until all ranks finish.
///
/// ```
/// use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
/// use ovcomm_simnet::MachineProfile;
///
/// // Two ranks on two nodes: rank 0 sends a value, rank 1 doubles it.
/// let out = run(
///     SimConfig::natural(2, 1, MachineProfile::test_profile()),
///     |rc: RankCtx| {
///         let world = rc.world();
///         if rc.rank() == 0 {
///             world.send(1, 0, Payload::from_f64s(&[21.0]));
///             0.0
///         } else {
///             2.0 * world.recv(0, 0).to_f64s()[0]
///         }
///     },
/// )
/// .unwrap();
/// assert_eq!(out.results[1], 42.0);
/// assert!(out.makespan.as_nanos() > 0); // virtual time elapsed
/// ```
// The `expect`s here are launch-time (thread spawn) and join-time (a rank
// that did not panic must have produced a result) invariants.
#[allow(clippy::expect_used)]
pub fn run<T, F>(cfg: SimConfig, f: F) -> Result<SimOutput<T>, SimError>
where
    T: Send + 'static,
    F: Fn(RankCtx) -> T + Send + Sync + 'static,
{
    let nranks = cfg.nodemap.nranks();
    let engine = Engine::new();
    if cfg.trace {
        engine.enable_trace();
    }
    // Register cluster resources: per-node NIC/memory in the canonical
    // (tx, rx, mem per node) order, then any fabric link resources.
    let resources = engine.build_cluster(&cfg.cluster);
    let cpu: Vec<ovcomm_simnet::ResourceId> = (0..nranks)
        .map(|r| {
            engine.add_resource_kind(
                cfg.cluster.profile.gamma_reduce_bw * cfg.cluster.profile.reduce_parallel,
                ResourceKind::Cpu(r as u32),
            )
        })
        .collect();

    let state = MpiState {
        next_ctx: WORLD_CTX + 1,
        rank_end_times: vec![SimTime::ZERO; nranks],
        ..MpiState::default()
    };
    let uni = Arc::new(UniShared {
        engine,
        state: Mutex::new(state),
        profile: cfg.cluster.profile.clone(),
        nodemap: cfg.nodemap.clone(),
        resources,
        cpu,
        pool: Pool::new(),
        tracing: cfg.trace,
        metrics: SimMetrics::new(nranks),
        op_panics: Mutex::new(Vec::new()),
        verify: match cfg.verify {
            VerifyMode::Off => None,
            VerifyMode::Warn | VerifyMode::Strict => Some(Arc::new(Verifier::new())),
        },
        verify_mode: cfg.verify,
        coll_select: cfg.coll_select.clone(),
        plan_cache: Mutex::new(std::collections::BTreeMap::new()),
        exec: cfg.exec,
        fiber_stack: cfg.fiber_stack,
    });

    let f = Arc::new(f);
    let world_ranks: Arc<Vec<u32>> = Arc::new((0..nranks as u32).collect());
    // Rank results and captured rank panics, filled in by the rank bodies
    // themselves so fibers and threads share one code path.
    let results: Arc<Mutex<Vec<Option<T>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    let rank_panics: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));

    // The body of one rank actor, identical in both execution modes: wait
    // for the scheduler's first release, run the user closure, record the
    // result (or the panic), and — via the drop guard, so unwinding paths
    // are covered — retire the actor.
    let body_for = |r: usize, cell: Arc<ParkCell>| {
        let uni2 = uni.clone();
        let f2 = f.clone();
        let world_ranks2 = world_ranks.clone();
        let results2 = results.clone();
        let panics2 = rank_panics.clone();
        move || {
            struct Finish {
                uni: Arc<UniShared>,
                id: u32,
            }
            impl Drop for Finish {
                fn drop(&mut self) {
                    self.uni.engine.actor_finished(self.id);
                }
            }
            let _guard = Finish {
                uni: uni2.clone(),
                id: r as u32,
            };
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                uni2.engine.await_release(&cell);
                let agent = Agent::new_rank(r as u32, cell.clone(), uni2.clone());
                let world = Comm::new(
                    CommInfo {
                        ctx: WORLD_CTX,
                        ranks: world_ranks2.clone(),
                        me: r,
                    },
                    agent.clone(),
                );
                let rc = RankCtx {
                    agent: agent.clone(),
                    world,
                    active_ppn: std::cell::Cell::new(0),
                };
                let v = f2(rc);
                uni2.state.lock().rank_end_times[r] = agent.now();
                v
            }));
            match out {
                Ok(v) => results2.lock()[r] = Some(v),
                Err(e) => {
                    // Fiber cancellation must keep unwinding; everything
                    // else is a rank panic to report.
                    if e.downcast_ref::<ForcedUnwind>().is_some() {
                        std::panic::resume_unwind(e);
                    }
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    panics2.lock().push((r, msg));
                }
            }
        }
    };

    // Register all rank actors before the loop starts so the engine cannot
    // advance early.
    let cells: Vec<Arc<ParkCell>> = (0..nranks).map(|_| Arc::new(ParkCell::new())).collect();
    let mut handles = Vec::new();
    match cfg.exec {
        ExecMode::EventDriven => {
            for (r, cell) in cells.into_iter().enumerate() {
                let fiber = Fiber::new(cfg.fiber_stack, body_for(r, cell.clone()));
                uni.engine
                    .register_fiber_at(r as u32, fiber, cell, SimTime::ZERO);
            }
        }
        ExecMode::Threads => {
            for (r, cell) in cells.iter().enumerate() {
                uni.engine.register_actor(r as u32, cell.clone());
            }
            handles.reserve(nranks);
            for (r, cell) in cells.into_iter().enumerate() {
                let h = std::thread::Builder::new()
                    .name(format!("rank-{r}"))
                    .stack_size(4 << 20)
                    .spawn(body_for(r, cell))
                    .expect("failed to spawn rank thread");
                handles.push(h);
            }
        }
    }

    // Drive the event loop on this thread (fibers resume inline here).
    uni.engine.run_loop();
    for h in handles {
        // Rank panics were captured inside the body; a join error here can
        // only be a ForcedUnwind propagated past it.
        let _ = h.join();
    }
    uni.engine.drain_fibers();
    uni.pool.shutdown();

    let results: Vec<Option<T>> = std::mem::take(&mut *results.lock());
    let mut panics: Vec<(usize, String)> = std::mem::take(&mut *rank_panics.lock());
    // Thread-mode capture order is scheduling-dependent; report by rank.
    panics.sort();

    // A rank panic often *causes* the deadlock that unwinds everyone else;
    // report the root cause, not the induced deadlock panics.
    let is_deadlock_msg = |m: &str| m.contains("simulation deadlock");
    let mut op_panics = std::mem::take(&mut *uni.op_panics.lock());
    op_panics.retain(|(_, m)| !is_deadlock_msg(m));
    if let Some((rank, message)) = panics
        .iter()
        .find(|(_, m)| !is_deadlock_msg(m))
        .cloned()
        .or_else(|| op_panics.first().map(|(r, m)| (*r as usize, m.clone())))
    {
        return Err(SimError::RankPanic { rank, message });
    }
    if uni.engine.deadlocked() {
        let blocked: Vec<(u32, u32)> = uni
            .engine
            .deadlocked_actors()
            .into_iter()
            .map(|id| (id, rank_of_actor(id)))
            .collect();
        let report = match uni.verify.as_ref() {
            Some(v) => v.deadlock_report(&blocked),
            None => DeadlockReport::unknown(&blocked),
        };
        return Err(SimError::Deadlock { report });
    }
    if let Some((rank, message)) = panics.into_iter().next() {
        return Err(SimError::RankPanic { rank, message });
    }

    // Analyze the communication log. Under Strict, error-severity findings
    // fail the run; under Warn they are printed; warnings always travel in
    // the output.
    let verify_report = match uni.verify.as_ref() {
        Some(v) => {
            let findings = v.analyze();
            match cfg.verify {
                VerifyMode::Warn => {
                    for x in &findings {
                        eprintln!("ovcomm-verify: {x}");
                    }
                }
                VerifyMode::Strict => {
                    if findings.iter().any(|x| x.severity == Severity::Error) {
                        return Err(SimError::Verification { findings });
                    }
                }
                VerifyMode::Off => {}
            }
            let (dropped_incomplete, dropped_untaken) = v.drop_counters();
            VerifyReport {
                findings,
                dropped_incomplete,
                dropped_untaken,
            }
        }
        None => VerifyReport::default(),
    };

    let (inter, intra, messages, end_times) = {
        let st = uni.state.lock();
        (
            st.inter_bytes,
            st.intra_bytes,
            st.messages,
            st.rank_end_times.clone(),
        )
    };
    let makespan = end_times.iter().copied().max().unwrap_or(SimTime::ZERO);
    uni.metrics.pool_spawned.set(uni.pool.spawned() as u64);
    let clamped_spans = uni.engine.clamped_spans();
    uni.metrics.spans_clamped(clamped_spans as u64);
    let trace = uni.engine.take_trace();
    if let Some(path) = &cfg.trace_out {
        let spans: &[ovcomm_simnet::TraceSpan] = trace.as_ref().map_or(&[], |t| t.spans());
        if let Err(e) = ovcomm_obs::write_trace(path, spans, actor_name) {
            eprintln!("warning: failed to write trace to {}: {e}", path.display());
        }
    }
    Ok(SimOutput {
        results: results
            .into_iter()
            .map(|o| o.expect("non-panicked rank must produce a result"))
            .collect(),
        end_times,
        makespan,
        inter_node_bytes: inter,
        intra_node_bytes: intra,
        messages,
        trace,
        metrics: uni.metrics.snapshot(),
        net: uni.engine.net_stats(),
        clamped_spans,
        verify: verify_report,
    })
}
