//! The progress-worker pool that executes nonblocking collectives.
//!
//! Each posted nonblocking collective becomes a *job* bound to a
//! deterministic operation-actor id (registered with the engine at post
//! time, so the engine cannot advance until the job's thread parks). Jobs
//! are written in plain blocking style — the collective algorithms are the
//! same code the blocking calls run inline.
//!
//! Workers have **dedicated channels** and a free-list of senders: a job is
//! handed to exactly one idle worker (or a freshly spawned one), never
//! queued behind a busy worker — if it were, the engine would wait forever
//! for the job's registered actor to park. Thread identity does not matter
//! for determinism; the actor id travels with the job.
//!
//! Lifetime discipline: an idle worker's *only* live sender sits in the free
//! list (each job envelope carries the sender and the worker returns it to
//! the list when done). `shutdown` marks the pool closed and clears the
//! list, which disconnects every idle worker's channel; busy workers see the
//! closed flag after their job and exit without re-registering. No worker
//! thread outlives the pool's users.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

/// A unit of work handed to one progress worker.
#[doc(hidden)]
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Envelope {
    job: Job,
    /// The worker's own sender, returned to the free list after the job.
    tx: Sender<Envelope>,
}

struct PoolInner {
    free: Vec<Sender<Envelope>>,
    closed: bool,
    spawned: usize,
}

/// Grow-on-demand pool of progress workers.
///
/// Exposed (hidden) for the `ovcomm-rt` wall-clock backend, whose
/// nonblocking collectives run as jobs on the same pool design — there the
/// workers *are* the asynchronous progress threads.
#[doc(hidden)]
pub struct Pool {
    inner: Arc<Mutex<PoolInner>>,
}

impl Pool {
    /// An empty pool; workers are spawned on demand.
    pub fn new() -> Pool {
        Pool {
            inner: Arc::new(Mutex::new(PoolInner {
                free: Vec::new(),
                closed: false,
                spawned: 0,
            })),
        }
    }

    /// Number of workers ever spawned (diagnostics; OS-scheduling
    /// dependent — reported through a gauge, never a counter).
    pub fn spawned(&self) -> usize {
        self.inner.lock().spawned
    }

    /// Run `job` on an idle worker, spawning one if none is idle.
    // The only `expect` asserts the documented capacity-1 handshake.
    #[allow(clippy::expect_used)]
    pub fn submit(&self, job: Job) {
        let tx = {
            let mut inner = self.inner.lock();
            assert!(!inner.closed, "submit after pool shutdown");
            match inner.free.pop() {
                Some(tx) => tx,
                None => {
                    inner.spawned += 1;
                    drop(inner);
                    self.spawn_worker()
                }
            }
        };
        let env = Envelope {
            job,
            tx: tx.clone(),
        };
        // The worker is blocked on its own empty channel; capacity 1 means
        // this send cannot block or fail.
        tx.send(env).expect("progress worker vanished");
    }

    // Failing to spawn an OS thread is unrecoverable for the pool.
    #[allow(clippy::expect_used)]
    fn spawn_worker(&self) -> Sender<Envelope> {
        let (tx, rx) = bounded::<Envelope>(1);
        let inner = self.inner.clone();
        thread::Builder::new()
            .name("ov-progress".into())
            .stack_size(512 << 10)
            .spawn(move || {
                while let Ok(env) = rx.recv() {
                    (env.job)();
                    let mut st = inner.lock();
                    if st.closed {
                        return;
                    }
                    st.free.push(env.tx);
                }
            })
            .expect("failed to spawn progress worker");
        tx
    }

    /// Close the pool: idle workers exit (their senders drop), busy workers
    /// exit after their current job.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        inner.free.clear();
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_run_and_workers_are_reused() {
        let pool = Pool::new();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = count.clone();
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
            // Give the worker time to finish and re-register so reuse
            // actually happens.
            while count.load(Ordering::SeqCst) == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline, "jobs did not finish");
            thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn concurrent_jobs_get_distinct_workers() {
        let pool = Pool::new();
        let gate = Arc::new(Mutex::new(()));
        let running = Arc::new(AtomicUsize::new(0));
        let guard = gate.lock();
        for _ in 0..3 {
            let g = gate.clone();
            let r = running.clone();
            pool.submit(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
                let _hold = g.lock();
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while running.load(Ordering::SeqCst) < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "three jobs should run concurrently on three workers"
            );
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.spawned(), 3);
        drop(guard);
        pool.shutdown();
    }
}
