//! One-sided (RMA) windows: `MPI_Win`-style put/get/accumulate with
//! active-target fences and passive-target locks, over the simulated
//! network.
//!
//! Model (see `docs/rma.md` for the worked timeline):
//!
//! * Transfers are **origin-driven**: the target posts nothing. A put or
//!   accumulate charges the origin its post cost, then injects a flow on
//!   the origin→target path — the bytes occupy the *target's* NIC without
//!   the target's process participating, which is the defining asymmetry
//!   of the one-sided paradigm and the reason it composes with the
//!   paper's communication-overlap techniques: the epoch close is the
//!   only synchronization point.
//! * Puts and accumulates are **staged**: the payload travels immediately
//!   but is applied to the target segment only when the epoch closes
//!   (fence or unlock), in deterministic `(origin rank, post order)`
//!   order. Gets read the committed (epoch-stable) segment state. This
//!   makes results bit-identical across backends and across runs even
//!   for non-associative `f64` accumulation.
//! * `fence` = wait own outstanding transfers → barrier → apply staged
//!   ops to the own segment → barrier. Both backends implement this
//!   sequence literally, so fence counts align across ranks.
//! * Passive-target `lock`/`unlock` is a virtual per-segment lock:
//!   acquisition costs a round trip to the target, contended requests
//!   queue FIFO and are granted at the holder's unlock plus the
//!   notification latency.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ovcomm_simnet::{EdgeKind, SimDur, SpanKind};
use ovcomm_verify::{Event as VEvent, RmaKind, Site};

use crate::agent::{Agent, CLASS_P2P};
use crate::comm::Comm;
use crate::p2p::path_params;
use crate::payload::Payload;
use crate::request::{ReqMeta, Request};
use crate::universe::UniShared;

/// Committed bytes of one rank's exposed segment.
enum Seg {
    /// Real data (mutable; staged ops are applied in place).
    Real(Vec<u8>),
    /// Size-only stand-in for paper-scale runs: applies are free no-ops,
    /// timing is identical to the real-data case.
    Phantom(usize),
}

impl Seg {
    fn from_payload(p: &Payload) -> Seg {
        match p {
            Payload::Real(b) => Seg::Real(b.to_vec()),
            Payload::Phantom(n) => Seg::Phantom(*n),
        }
    }

    fn len(&self) -> usize {
        match self {
            Seg::Real(v) => v.len(),
            Seg::Phantom(n) => *n,
        }
    }

    fn snapshot(&self, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= self.len(),
            "RMA read {start}..{end} beyond segment length {}",
            self.len()
        );
        match self {
            Seg::Real(v) => Payload::from_vec(v[start..end].to_vec()),
            Seg::Phantom(_) => Payload::Phantom(end - start),
        }
    }
}

/// One staged put/accumulate awaiting its epoch close.
struct StagedOp {
    /// Window rank of the origin.
    origin: u32,
    /// The origin's RMA post counter: orders one origin's ops.
    seq: u64,
    /// Byte offset into the target segment.
    offset: usize,
    /// Accumulate (`f64` sum) instead of overwrite?
    acc: bool,
    /// The data (captured at post time).
    data: Payload,
}

/// Virtual passive-target lock of one segment.
#[derive(Default)]
struct LockState {
    /// Window rank currently holding the lock.
    holder: Option<u32>,
    /// FIFO of waiting acquisitions: (window rank, grant request).
    queue: VecDeque<(u32, Request<()>)>,
}

/// Shared (cross-rank) state of one window, registered in
/// `MpiState::windows` under the (creating ctx, window seq) key.
pub(crate) struct WinData {
    segs: Vec<Option<Seg>>,
    staged: Vec<Vec<StagedOp>>,
    locks: Vec<LockState>,
    /// Handles not yet freed; the last `free` removes the registry entry.
    live: usize,
}

impl WinData {
    pub(crate) fn new(p: usize) -> WinData {
        WinData {
            segs: (0..p).map(|_| None).collect(),
            staged: (0..p).map(|_| Vec::new()).collect(),
            locks: (0..p).map(|_| LockState::default()).collect(),
            live: p,
        }
    }
}

/// Apply one staged op to a committed segment.
// `chunks_exact(8)`/`try_into` on 8-byte slices cannot fail.
#[allow(clippy::unwrap_used)]
fn apply_op(seg: &mut Seg, op: &StagedOp) {
    let v = match seg {
        Seg::Phantom(_) => return,
        Seg::Real(v) => v,
    };
    let b = match &op.data {
        Payload::Real(b) => b,
        Payload::Phantom(_) => panic!("phantom RMA data applied to a real window segment"),
    };
    let end = op.offset + b.len();
    assert!(
        end <= v.len(),
        "RMA apply {}..{end} beyond segment length {}",
        op.offset,
        v.len()
    );
    if op.acc {
        assert!(
            op.offset.is_multiple_of(8) && b.len().is_multiple_of(8),
            "accumulate must be f64-aligned (offset {}, len {})",
            op.offset,
            b.len()
        );
        for (i, c) in b.chunks_exact(8).enumerate() {
            let at = op.offset + i * 8;
            let cur = f64::from_ne_bytes(v[at..at + 8].try_into().unwrap());
            let add = f64::from_ne_bytes(c.try_into().unwrap());
            v[at..at + 8].copy_from_slice(&(cur + add).to_ne_bytes());
        }
    } else {
        v[op.offset..end].copy_from_slice(b);
    }
}

/// Bump the on-demand `rma.*` counters: one call of `op` moving `bytes`.
fn rma_metric(uni: &UniShared, rank: u32, op: &str, bytes: usize) {
    let reg = uni.metrics.registry();
    let labels = [("op", op.to_string()), ("rank", rank.to_string())];
    reg.counter("rma.calls", &labels).inc();
    if bytes > 0 {
        reg.counter("rma.bytes", &labels).add(bytes as u64);
    }
}

/// Inject an origin-driven RMA data flow from world rank `src` to world
/// rank `dst`, completing `done` when the last byte lands. Mirrors the
/// eager p2p flow: the transfer starts after the one-way latency and
/// shares the path's NIC/memory resources max–min fairly with every other
/// concurrent transfer — no receiver-side post exists or is charged.
fn launch_rma_flow(agent: &Agent, src: u32, dst: u32, n: usize, done: Request<()>) {
    let uni = agent.uni.clone();
    {
        let mut st = uni.state.lock();
        st.messages += 1;
        if uni.node_of(src) == uni.node_of(dst) {
            st.intra_bytes += n as u64;
        } else {
            st.inter_bytes += n as u64;
        }
    }
    let path = path_params(&uni, src, dst, n);
    let ts = agent.now();
    let start_at = ts + path.alpha;
    let uni2 = uni.clone();
    agent.schedule(
        ts,
        CLASS_P2P,
        Box::new(move |_| {
            let uni3 = uni2.clone();
            uni2.engine.schedule_engine(
                start_at,
                CLASS_P2P,
                Box::new(move |e| {
                    let uni4 = uni3.clone();
                    e.start_flow(
                        path.resources,
                        path.cap,
                        n as f64,
                        Box::new(move |e2| {
                            let ta = e2.now();
                            uni4.edge(EdgeKind::SendRecv, src, ts, dst, ta);
                            uni4.complete(&done, (), ta);
                        }),
                    );
                }),
            );
        }),
    );
}

/// Like [`launch_rma_flow`] but for a get: the flow runs target→origin
/// and completes the user-visible `req` with `data` (plus one unpack
/// copy), alongside the internal `done` handle the epoch close waits on.
fn launch_get_flow(
    agent: &Agent,
    src: u32,
    dst: u32,
    n: usize,
    data: Payload,
    req: Request<Payload>,
    done: Request<()>,
) {
    let uni = agent.uni.clone();
    {
        let mut st = uni.state.lock();
        st.messages += 1;
        if uni.node_of(src) == uni.node_of(dst) {
            st.intra_bytes += n as u64;
        } else {
            st.inter_bytes += n as u64;
        }
    }
    let path = path_params(&uni, src, dst, n);
    let ts = agent.now();
    let start_at = ts + path.alpha;
    let uni2 = uni.clone();
    agent.schedule(
        ts,
        CLASS_P2P,
        Box::new(move |_| {
            let uni3 = uni2.clone();
            uni2.engine.schedule_engine(
                start_at,
                CLASS_P2P,
                Box::new(move |e| {
                    let uni4 = uni3.clone();
                    e.start_flow(
                        path.resources,
                        path.cap,
                        n as f64,
                        Box::new(move |e2| {
                            let ta = e2.now() + uni4.profile.copy_time(n);
                            uni4.edge(EdgeKind::SendRecv, src, e2.now(), dst, ta);
                            uni4.complete(&req, data, ta);
                            uni4.complete(&done, (), ta);
                        }),
                    );
                }),
            );
        }),
    );
}

impl Comm {
    /// Collective window creation (`MPI_Win_create`): every member exposes
    /// `local` as its segment and gets back a handle over all segments.
    /// The window starts **outside** any epoch — the first
    /// [`SimWin::fence`] opens the first access epoch, or take a
    /// passive-target [`SimWin::lock`].
    #[track_caller]
    pub fn win_create(&self, local: Payload) -> SimWin {
        let site: Site = std::panic::Location::caller();
        let uni = self.agent.uni.clone();
        let seq = self.win_seq.fetch_add(1, Ordering::Relaxed);
        let key = (self.info.ctx, seq);
        let id = ((self.info.ctx as u64) << 32) | seq;
        let me = self.rank();
        let p = self.size();
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::WinDecl {
                agent: self.agent.id,
                rank: self.agent.rank,
                ctx: self.info.ctx,
                win: id,
                len: local.len(),
                site: Some(site),
            });
        }
        rma_metric(&uni, self.agent.rank, "win_create", local.len());
        let data = {
            let mut st = uni.state.lock();
            st.windows
                .entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(WinData::new(p))))
                .clone()
        };
        data.lock().segs[me] = Some(Seg::from_payload(&local));
        // Private duplicate for the window's own barriers, so fence
        // traffic can never match user traffic on the parent comm.
        let wcomm = self.dup();
        // Creation is collective: no rank may issue one-sided ops until
        // every segment is deposited.
        wcomm.barrier();
        SimWin {
            comm: wcomm,
            data,
            key,
            id,
            post_seq: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
            freed: AtomicBool::new(false),
        }
    }
}

/// A one-sided window handle for one rank (the analogue of `MPI_Win`).
///
/// Created collectively by [`Comm::win_create`]. See
/// `ovcomm_core::backend::Window` for the epoch/consistency contract the
/// two backends share. Dropping a handle without [`SimWin::free`] is
/// reported by the verifier as a `win-leak` with the creation site.
pub struct SimWin {
    /// Private dup of the creating communicator (fence barriers).
    comm: Comm,
    data: Arc<Mutex<WinData>>,
    /// Registry key in the universe's window table.
    key: (u32, u64),
    id: u64,
    /// This rank's RMA post counter (orders staged ops of one origin).
    post_seq: AtomicU64,
    /// Internal completion handles of this epoch's outstanding transfers.
    pending: Mutex<Vec<Request<()>>>,
    freed: AtomicBool,
}

impl SimWin {
    /// Number of ranks spanning the window.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// This rank's index within the window.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Byte length of `rank`'s exposed segment.
    pub fn segment_len(&self, rank: usize) -> usize {
        match &self.data.lock().segs[rank] {
            Some(s) => s.len(),
            None => panic!("window segment {rank} not deposited"),
        }
    }

    /// One-sided write into `target`'s segment (`MPI_Put`): staged now,
    /// applied when the epoch closes. Returns immediately; the payload is
    /// captured, so the origin buffer is reusable.
    #[track_caller]
    pub fn put(&self, target: usize, offset: usize, data: Payload) {
        self.post(RmaKind::Put, target, offset, data);
    }

    /// One-sided element-wise `f64` sum into `target`'s segment
    /// (`MPI_Accumulate` with `MPI_SUM`); 8-aligned, staged like a put.
    #[track_caller]
    pub fn accumulate(&self, target: usize, offset: usize, data: Payload) {
        self.post(RmaKind::Accumulate, target, offset, data);
    }

    #[track_caller]
    fn post(&self, kind: RmaKind, target: usize, offset: usize, data: Payload) {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        let n = data.len();
        let me = self.rank();
        let t0 = agent.now();
        // Origin-side post cost: like an eager send, the payload is
        // captured into the runtime's buffer at post time.
        agent.advance(uni.profile.small_post + uni.profile.copy_time(n));
        let opname = if kind == RmaKind::Accumulate {
            "accumulate"
        } else {
            "put"
        };
        rma_metric(&uni, agent.rank, opname, n);
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::RmaOp {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                kind,
                target: target as u32,
                offset,
                len: n,
                req: None,
                site: Some(site),
            });
        }
        agent.trace_span(SpanKind::Post, t0, agent.now(), || {
            format!("{} post {n}B -> {target}", kind.name())
        });
        let seq = self.post_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut wd = self.data.lock();
            let seg_len = match &wd.segs[target] {
                Some(s) => s.len(),
                None => panic!("window segment {target} not deposited"),
            };
            let end = offset + n;
            assert!(
                end <= seg_len,
                "{} {offset}..{end} beyond segment {target} length {seg_len}",
                kind.name()
            );
            wd.staged[target].push(StagedOp {
                origin: me as u32,
                seq,
                offset,
                acc: kind == RmaKind::Accumulate,
                data,
            });
        }
        if n == 0 {
            return;
        }
        let origin_w = self.comm.info.ranks[me];
        let target_w = self.comm.info.ranks[target];
        // Internal handle: untracked, so it is invisible to leak analysis.
        let done: Request<()> = Request::new();
        self.pending.lock().push(done.clone());
        launch_rma_flow(agent, origin_w, target_w, n, done);
    }

    /// One-sided read of `len` bytes from `target`'s segment at `offset`
    /// (`MPI_Rget`): returns a request completing with the data once the
    /// transfer lands. Reads the committed (epoch-stable) segment state.
    #[track_caller]
    pub fn get(&self, target: usize, offset: usize, len: usize) -> Request<Payload> {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        let t0 = agent.now();
        agent.advance(uni.profile.small_post);
        rma_metric(&uni, agent.rank, "get", len);
        let (req, rid) = match uni.verify.as_ref() {
            Some(v) => {
                let id = v.next_req_id();
                (
                    Request::new_tracked(ReqMeta {
                        verifier: v.clone(),
                        id,
                    }),
                    Some(id),
                )
            }
            None => (Request::new(), None),
        };
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::RmaOp {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                kind: RmaKind::Get,
                target: target as u32,
                offset,
                len,
                req: rid,
                site: Some(site),
            });
        }
        agent.trace_span(SpanKind::Post, t0, agent.now(), || {
            format!("MPI_Rget post {len}B <- {target}")
        });
        // Snapshot the committed segment at post time: the committed
        // state is stable within an epoch, so any post moment inside the
        // epoch yields identical bytes — this is what makes one-sided
        // reads deterministic.
        let snap = {
            let wd = self.data.lock();
            match &wd.segs[target] {
                Some(s) => s.snapshot(offset, offset + len),
                None => panic!("window segment {target} not deposited"),
            }
        };
        if len == 0 {
            uni.complete(&req, snap, agent.now());
            return req;
        }
        let me = self.rank();
        let origin_w = self.comm.info.ranks[me];
        let target_w = self.comm.info.ranks[target];
        // Shadow handle: the closing fence waits the transfer without
        // consuming the user-visible request.
        let done: Request<()> = Request::new();
        self.pending.lock().push(done.clone());
        launch_get_flow(agent, target_w, origin_w, len, snap, req.clone(), done);
        req
    }

    /// Wait a [`SimWin::get`] request, recording a `Wait` span.
    pub fn wait(&self, req: &Request<Payload>) -> Payload {
        self.comm.wait_traced(req, "MPI_Rget")
    }

    /// Active-target epoch boundary (`MPI_Win_fence`): waits this rank's
    /// outstanding transfers, synchronizes all members, applies the
    /// staged operations targeting this rank's segment in `(origin, post
    /// order)` order, and synchronizes again so no rank enters the next
    /// epoch before every segment is committed.
    #[track_caller]
    pub fn fence(&self) {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        let t0 = agent.now();
        rma_metric(&uni, agent.rank, "fence", 0);
        self.drain_pending();
        self.comm.barrier();
        let applied = self.apply_own_segment();
        if applied > 0 {
            agent.advance(uni.profile.copy_time(applied));
        }
        self.comm.barrier();
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::WinFence {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                site: Some(site),
            });
        }
        uni.metrics
            .blocking_duration(agent.rank, agent.now().saturating_since(t0).as_nanos());
        agent.trace_span(SpanKind::BlockingCall, t0, agent.now(), || {
            "MPI_Win_fence".to_string()
        });
    }

    /// Acquire the passive-target lock on `target`'s segment (exclusive,
    /// FIFO): costs a round trip to the target when free; contended
    /// acquisitions queue and are granted at the holder's unlock.
    #[track_caller]
    pub fn lock(&self, target: usize) {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        let t0 = agent.now();
        rma_metric(&uni, agent.rank, "lock", 0);
        let me = self.rank() as u32;
        let origin_w = self.comm.info.ranks[self.rank()];
        let target_w = self.comm.info.ranks[target];
        let alpha = path_params(&uni, origin_w, target_w, 0).alpha;
        let waitreq: Option<Request<()>> = {
            let mut wd = self.data.lock();
            let l = &mut wd.locks[target];
            if l.holder.is_none() {
                l.holder = Some(me);
                None
            } else {
                let r = Request::new();
                l.queue.push_back((me, r.clone()));
                Some(r)
            }
        };
        match waitreq {
            // Free: one request/grant round trip to the target.
            None => agent.advance(SimDur(2 * alpha.as_nanos())),
            Some(r) => {
                agent.wait(&r);
            }
        }
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::WinLock {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                target: target as u32,
                site: Some(site),
            });
        }
        agent.trace_span(SpanKind::BlockingCall, t0, agent.now(), || {
            format!("MPI_Win_lock {target}")
        });
    }

    /// Release the passive-target lock on `target`: waits this origin's
    /// outstanding transfers, applies this origin's staged ops to the
    /// target segment (the lock serializes origins, so per-origin apply
    /// at unlock reproduces the serial order the lock imposed), then
    /// hands the lock to the next queued origin. Unlocking a segment this
    /// rank does not hold is tolerated here and flagged by the verifier
    /// (`rma-double-unlock`).
    #[track_caller]
    pub fn unlock(&self, target: usize) {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        let t0 = agent.now();
        rma_metric(&uni, agent.rank, "unlock", 0);
        self.drain_pending();
        let me = self.rank() as u32;
        let target_w = self.comm.info.ranks[target];
        let grant = {
            let mut wd = self.data.lock();
            // Apply this origin's staged ops on the target segment.
            let mut ops: Vec<StagedOp> = Vec::new();
            let staged = &mut wd.staged[target];
            let mut i = 0;
            while i < staged.len() {
                if staged[i].origin == me {
                    ops.push(staged.remove(i));
                } else {
                    i += 1;
                }
            }
            ops.sort_by_key(|o| o.seq);
            let mut bytes = 0usize;
            {
                let seg = match &mut wd.segs[target] {
                    Some(s) => s,
                    None => panic!("window segment {target} not deposited"),
                };
                for op in &ops {
                    bytes += op.data.len();
                    apply_op(seg, op);
                }
            }
            if bytes > 0 {
                agent.advance(uni.profile.copy_time(bytes));
            }
            let l = &mut wd.locks[target];
            if l.holder == Some(me) {
                l.holder = None;
                match l.queue.pop_front() {
                    Some((next, r)) => {
                        l.holder = Some(next);
                        Some((next, r))
                    }
                    None => None,
                }
            } else {
                None
            }
        };
        if let Some((next, r)) = grant {
            // The grant notification travels target→next origin.
            let next_w = self.comm.info.ranks[next as usize];
            let alpha = path_params(&uni, target_w, next_w, 0).alpha;
            uni.complete(&r, (), agent.now() + alpha);
        }
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::WinUnlock {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                target: target as u32,
                site: Some(site),
            });
        }
        agent.trace_span(SpanKind::BlockingCall, t0, agent.now(), || {
            format!("MPI_Win_unlock {target}")
        });
    }

    /// Snapshot of this rank's committed local segment.
    pub fn local(&self) -> Payload {
        let me = self.rank();
        let wd = self.data.lock();
        match &wd.segs[me] {
            Some(s) => s.snapshot(0, s.len()),
            None => panic!("window segment {me} not deposited"),
        }
    }

    /// Collective teardown (`MPI_Win_free`): synchronizes all members and
    /// releases the window. Dropping a handle without calling this is
    /// reported by the verifier as a `win-leak`.
    #[track_caller]
    pub fn free(self) {
        let site: Site = std::panic::Location::caller();
        let agent = &self.comm.agent;
        let uni = agent.uni.clone();
        rma_metric(&uni, agent.rank, "win_free", 0);
        if let Some(v) = uni.verify.as_ref() {
            v.record(VEvent::WinFree {
                agent: agent.id,
                rank: agent.rank,
                win: self.id,
                site: Some(site),
            });
        }
        self.drain_pending();
        self.comm.barrier();
        self.freed.store(true, Ordering::Relaxed);
        let gone = {
            let mut wd = self.data.lock();
            wd.live -= 1;
            wd.live == 0
        };
        if gone {
            uni.state.lock().windows.remove(&self.key);
        }
        // `self` drops here, recording `WinDropped { freed: true }`.
    }

    /// Wait all internal transfer handles of the current epoch.
    fn drain_pending(&self) {
        let reqs = std::mem::take(&mut *self.pending.lock());
        for r in &reqs {
            self.comm.agent.wait(r);
        }
    }

    /// Apply all staged ops targeting this rank's segment in
    /// `(origin, post order)` order; returns total bytes applied.
    fn apply_own_segment(&self) -> usize {
        let me = self.rank();
        let mut wd = self.data.lock();
        let mut ops = std::mem::take(&mut wd.staged[me]);
        ops.sort_by_key(|o| (o.origin, o.seq));
        let seg = match &mut wd.segs[me] {
            Some(s) => s,
            None => panic!("window segment {me} not deposited"),
        };
        let mut bytes = 0usize;
        for op in &ops {
            bytes += op.data.len();
            apply_op(seg, op);
        }
        bytes
    }
}

impl Drop for SimWin {
    fn drop(&mut self) {
        // Drop-time leak check, mirroring the request one: a window
        // dropped without `free` surfaces as a `win-leak` finding carrying
        // the creation site.
        if let Some(v) = self.comm.agent.uni.verify.as_ref() {
            v.record(VEvent::WinDropped {
                rank: self.comm.agent.rank,
                win: self.id,
                freed: self.freed.load(Ordering::Relaxed),
            });
        }
    }
}
