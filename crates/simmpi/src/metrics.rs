//! Pre-registered metric handles fed by the MPI layer.
//!
//! All handles are created up front (one set per rank) so the hot path —
//! every send, post, wait — touches only atomics, never the registry lock.
//! Virtual-time durations go into histograms in nanoseconds; byte counts
//! and call counts into counters. OS-scheduling-dependent quantities
//! (progress-pool occupancy, workers spawned) are kept in *gauges* so that
//! deterministic and nondeterministic metrics never share a metric class:
//! counters and histograms are bit-reproducible across runs, gauges are
//! diagnostics.

use ovcomm_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// Operation kinds metrics are labeled with. Variant names mirror the MPI
/// calls they count.
///
/// Exposed (hidden) for the `ovcomm-rt` wall-clock backend, which labels
/// its metrics identically so sim-vs-rt comparisons join on the same keys.
#[doc(hidden)]
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Isend,
    Irecv,
    Send,
    Recv,
    Bcast,
    Reduce,
    Allreduce,
    Barrier,
    Scatter,
    Gather,
    Allgather,
    Ibcast,
    Ireduce,
    Iallreduce,
    Ibarrier,
}

/// Number of [`OpKind`] variants.
const N_OPS: usize = 15;

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Isend => "isend",
            OpKind::Irecv => "irecv",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::Bcast => "bcast",
            OpKind::Reduce => "reduce",
            OpKind::Allreduce => "allreduce",
            OpKind::Barrier => "barrier",
            OpKind::Scatter => "scatter",
            OpKind::Gather => "gather",
            OpKind::Allgather => "allgather",
            OpKind::Ibcast => "ibcast",
            OpKind::Ireduce => "ireduce",
            OpKind::Iallreduce => "iallreduce",
            OpKind::Ibarrier => "ibarrier",
        }
    }

    fn all() -> [OpKind; N_OPS] {
        [
            OpKind::Isend,
            OpKind::Irecv,
            OpKind::Send,
            OpKind::Recv,
            OpKind::Bcast,
            OpKind::Reduce,
            OpKind::Allreduce,
            OpKind::Barrier,
            OpKind::Scatter,
            OpKind::Gather,
            OpKind::Allgather,
            OpKind::Ibcast,
            OpKind::Ireduce,
            OpKind::Iallreduce,
            OpKind::Ibarrier,
        ]
    }
}

/// One rank's pre-registered handles.
struct RankMetrics {
    calls: Vec<Counter>,
    bytes: Vec<Counter>,
    post_ns: Histogram,
    wait_ns: Histogram,
    blocking_ns: Histogram,
    tests: Counter,
}

/// All metric handles for one run.
///
/// Exposed (hidden) for the `ovcomm-rt` wall-clock backend: both backends
/// feed the same registry shape (`simmpi.*` metric names), so downstream
/// analysis joins records without backend-specific cases.
#[doc(hidden)]
pub struct SimMetrics {
    registry: MetricsRegistry,
    ranks: Vec<RankMetrics>,
    /// Jobs currently running on progress workers (≈ busy workers).
    pub pool_occupancy: Gauge,
    /// Progress workers ever spawned.
    pub pool_spawned: Gauge,
}

impl SimMetrics {
    /// Pre-register all per-rank handles for an `nranks`-rank run.
    pub fn new(nranks: usize) -> SimMetrics {
        let registry = MetricsRegistry::new();
        let ranks = (0..nranks)
            .map(|r| {
                let rank = r.to_string();
                let per_op = |name: &str| -> Vec<Counter> {
                    OpKind::all()
                        .iter()
                        .map(|op| {
                            registry.counter(
                                name,
                                &[("rank", rank.clone()), ("op", op.name().to_string())],
                            )
                        })
                        .collect()
                };
                RankMetrics {
                    calls: per_op("simmpi.calls"),
                    bytes: per_op("simmpi.bytes_posted"),
                    post_ns: registry.histogram("simmpi.post_ns", &[("rank", rank.clone())]),
                    wait_ns: registry.histogram("simmpi.wait_ns", &[("rank", rank.clone())]),
                    blocking_ns: registry
                        .histogram("simmpi.blocking_ns", &[("rank", rank.clone())]),
                    tests: registry.counter("simmpi.tests", &[("rank", rank)]),
                }
            })
            .collect();
        let pool_occupancy = registry.gauge("simmpi.pool_occupancy", &[]);
        let pool_spawned = registry.gauge("simmpi.pool_spawned", &[]);
        SimMetrics {
            registry,
            ranks,
            pool_occupancy,
            pool_spawned,
        }
    }

    /// Record a posted operation: one call of `kind` moving `bytes` payload
    /// bytes.
    pub fn op(&self, rank: u32, kind: OpKind, bytes: usize) {
        let r = &self.ranks[rank as usize];
        r.calls[kind as usize].inc();
        r.bytes[kind as usize].add(bytes as u64);
    }

    /// Record the virtual time a nonblocking post took.
    pub fn post_duration(&self, rank: u32, ns: u64) {
        self.ranks[rank as usize].post_ns.record(ns);
    }

    /// Record the virtual time a wait blocked for.
    pub fn wait_duration(&self, rank: u32, ns: u64) {
        self.ranks[rank as usize].wait_ns.record(ns);
    }

    /// Record the virtual time spent inside a blocking call.
    pub fn blocking_duration(&self, rank: u32, ns: u64) {
        self.ranks[rank as usize].blocking_ns.record(ns);
    }

    /// Count an `MPI_Test` probe.
    pub fn test_probe(&self, rank: u32) {
        self.ranks[rank as usize].tests.inc();
    }

    /// Record the number of trace spans clamped on insertion (end before
    /// start) in the `trace.spans_clamped` counter, so instrumentation bugs
    /// surface in metrics output instead of staying buried in the trace.
    /// Registers on demand — called once per run, after the trace settles.
    pub fn spans_clamped(&self, n: u64) {
        if n > 0 {
            self.registry.counter("trace.spans_clamped", &[]).add(n);
        }
    }

    /// The underlying registry. Exposed (hidden) so the `ovcomm-rt` backend
    /// can pre-register its wall-clock-only metrics (`rt.*`) into the same
    /// registry its `simmpi.*` handles feed.
    #[doc(hidden)]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Count a communicator duplication, labeled by rank and parent context
    /// (registers on demand — `dup` is cold).
    pub fn comm_dup(&self, rank: u32, parent_ctx: u32) {
        self.registry
            .counter(
                "simmpi.comm_dup",
                &[("rank", rank.to_string()), ("ctx", parent_ctx.to_string())],
            )
            .inc();
    }

    /// Snapshot the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rank_handles_land_in_labeled_metrics() {
        let m = SimMetrics::new(2);
        m.op(1, OpKind::Ibcast, 4096);
        m.op(1, OpKind::Ibcast, 4096);
        m.wait_duration(0, 1_500);
        m.comm_dup(0, 0);
        let snap = m.snapshot();
        assert_eq!(snap.counters["simmpi.calls{op=ibcast,rank=1}"], 2);
        assert_eq!(snap.counters["simmpi.bytes_posted{op=ibcast,rank=1}"], 8192);
        assert_eq!(snap.counters["simmpi.comm_dup{ctx=0,rank=0}"], 1);
        assert_eq!(snap.histograms["simmpi.wait_ns{rank=0}"].count, 1);
        // Untouched metrics still exist (pre-registered) at zero.
        assert_eq!(snap.counters["simmpi.calls{op=send,rank=0}"], 0);
    }
}
