//! Tunable collective-algorithm selection.
//!
//! Replaces the old hardcoded `COLL_LARGE = 32 KiB` constant: a
//! [`CollSelector`] is a per-(collective, message size, communicator size)
//! decision table carried by `SimConfig`, sweepable by the bench harness
//! (`--coll-select`) and fittable by the auto-tuner alongside N_DUP. The
//! default reproduces the legacy behavior exactly — 32 KiB short/long
//! thresholds, power-of-two gating for the recursive-halving long
//! algorithms, binomial-only gather.

use ovcomm_verify::plan::{kind_short, parse_kind, CollAlgo};
use ovcomm_verify::CollKind;

/// Message-size threshold between short- and long-message algorithms
/// (the legacy `COLL_LARGE`).
pub const DEFAULT_LARGE: usize = 32 * 1024;

/// Algorithm-selection policy for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollSelector {
    /// Force one algorithm for a collective, bypassing its threshold.
    /// Later entries win, so sweeps can layer a forcing over a base policy.
    pub forced: Vec<(CollKind, CollAlgo)>,
    /// Bcast switches from binomial to scatter+allgather above this size.
    pub bcast_large: usize,
    /// Reduce switches from binomial to Rabenseifner (power-of-two `p`) or
    /// ring above this size.
    pub reduce_large: usize,
    /// Allreduce switches from recursive doubling to reduce-scatter +
    /// allgather (power-of-two `p`) or ring above this size.
    pub allreduce_large: usize,
    /// Gather switches from binomial to linear above this size
    /// (`usize::MAX` by default: the legacy build was binomial-only).
    pub gather_large: usize,
}

impl Default for CollSelector {
    fn default() -> CollSelector {
        CollSelector {
            forced: Vec::new(),
            bcast_large: DEFAULT_LARGE,
            reduce_large: DEFAULT_LARGE,
            allreduce_large: DEFAULT_LARGE,
            gather_large: usize::MAX,
        }
    }
}

impl CollSelector {
    /// Pick the algorithm for a `kind` collective moving `n` logical bytes
    /// on a `p`-rank communicator.
    pub fn select(&self, kind: CollKind, n: usize, p: usize) -> CollAlgo {
        if let Some(&(_, algo)) = self
            .forced
            .iter()
            .rev()
            .find(|(k, a)| *k == kind && a.supports(p))
        {
            return algo;
        }
        match kind {
            CollKind::Bcast => {
                if n <= self.bcast_large {
                    CollAlgo::BcastBinomial
                } else {
                    CollAlgo::BcastScatterAllgather
                }
            }
            CollKind::Reduce => {
                if n <= self.reduce_large {
                    CollAlgo::ReduceBinomial
                } else if p.is_power_of_two() {
                    CollAlgo::ReduceRabenseifner
                } else {
                    // Rabenseifner's pre-fold puts an extra half-vector
                    // transfer on the critical path for non-power-of-two
                    // sizes; production MPIs switch to a ring here.
                    CollAlgo::ReduceRing
                }
            }
            CollKind::Allreduce => {
                if n <= self.allreduce_large {
                    CollAlgo::AllreduceRecursiveDoubling
                } else if p.is_power_of_two() {
                    CollAlgo::AllreduceRsag
                } else {
                    CollAlgo::AllreduceRing
                }
            }
            CollKind::Gather => {
                if n <= self.gather_large {
                    CollAlgo::GatherBinomial
                } else {
                    CollAlgo::GatherLinear
                }
            }
            CollKind::Scatter => CollAlgo::ScatterTree,
            CollKind::Allgather => CollAlgo::AllgatherRing,
            CollKind::Barrier => CollAlgo::BarrierDissemination,
            CollKind::Dup | CollKind::Split => {
                panic!("{kind:?} is not an algorithmic collective")
            }
        }
    }

    /// Force `algo` for its collective (appended, so it wins over earlier
    /// forcings of the same collective).
    pub fn force(mut self, algo: CollAlgo) -> CollSelector {
        self.forced.push((algo.kind(), algo));
        self
    }

    /// Parse a selector spec: comma-separated clauses, each either
    /// `<coll>=<bytes>` (short/long threshold; `k`/`m` suffixes accepted)
    /// or `<coll>:<algo>` (force an algorithm). Examples:
    /// `allreduce=64k`, `bcast:scatter-allgather,gather=1m`, `reduce:ring`.
    /// An empty spec yields the default policy.
    pub fn parse(spec: &str) -> Result<CollSelector, String> {
        let mut sel = CollSelector::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some((coll, algo_name)) = clause.split_once(':') {
                let kind = parse_kind(coll.trim())
                    .ok_or_else(|| format!("unknown collective `{}`", coll.trim()))?;
                let algo = CollAlgo::parse_for(kind, algo_name.trim()).ok_or_else(|| {
                    let known: Vec<&str> = CollAlgo::for_kind(kind)
                        .into_iter()
                        .map(|a| a.short())
                        .collect();
                    format!(
                        "unknown algorithm `{}` for {} (known: {})",
                        algo_name.trim(),
                        kind_short(kind),
                        known.join(", ")
                    )
                })?;
                sel = sel.force(algo);
            } else if let Some((coll, bytes)) = clause.split_once('=') {
                let kind = parse_kind(coll.trim())
                    .ok_or_else(|| format!("unknown collective `{}`", coll.trim()))?;
                let threshold = parse_bytes(bytes.trim())?;
                match kind {
                    CollKind::Bcast => sel.bcast_large = threshold,
                    CollKind::Reduce => sel.reduce_large = threshold,
                    CollKind::Allreduce => sel.allreduce_large = threshold,
                    CollKind::Gather => sel.gather_large = threshold,
                    _ => {
                        return Err(format!(
                            "{} has a single algorithm; no threshold to set",
                            kind_short(kind)
                        ))
                    }
                }
            } else {
                return Err(format!(
                    "bad clause `{clause}` (want <coll>=<bytes> or <coll>:<algo>)"
                ));
            }
        }
        Ok(sel)
    }
}

/// Parse a byte count with optional `k`/`m` (KiB/MiB) suffix.
fn parse_bytes(s: &str) -> Result<usize, String> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1024usize),
        Some(d) => (d, 1024 * 1024),
        None => (lower.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad byte count `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_legacy_coll_large() {
        let sel = CollSelector::default();
        // 32 KiB inclusive boundary, pow2 gating, binomial-only gather.
        assert_eq!(
            sel.select(CollKind::Allreduce, DEFAULT_LARGE, 8),
            CollAlgo::AllreduceRecursiveDoubling
        );
        assert_eq!(
            sel.select(CollKind::Allreduce, DEFAULT_LARGE + 1, 8),
            CollAlgo::AllreduceRsag
        );
        assert_eq!(
            sel.select(CollKind::Allreduce, DEFAULT_LARGE + 1, 6),
            CollAlgo::AllreduceRing
        );
        assert_eq!(
            sel.select(CollKind::Reduce, DEFAULT_LARGE + 1, 4),
            CollAlgo::ReduceRabenseifner
        );
        assert_eq!(
            sel.select(CollKind::Reduce, DEFAULT_LARGE + 1, 5),
            CollAlgo::ReduceRing
        );
        assert_eq!(
            sel.select(CollKind::Bcast, DEFAULT_LARGE + 1, 5),
            CollAlgo::BcastScatterAllgather
        );
        assert_eq!(
            sel.select(CollKind::Gather, 1 << 30, 5),
            CollAlgo::GatherBinomial
        );
        assert_eq!(sel.select(CollKind::Scatter, 1, 5), CollAlgo::ScatterTree);
        assert_eq!(
            sel.select(CollKind::Allgather, 1, 5),
            CollAlgo::AllgatherRing
        );
        assert_eq!(
            sel.select(CollKind::Barrier, 0, 5),
            CollAlgo::BarrierDissemination
        );
    }

    #[test]
    fn parse_thresholds_and_forcings() {
        let sel = match CollSelector::parse("allreduce=64k, bcast:vdg, gather=1m") {
            Ok(s) => s,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(sel.allreduce_large, 64 * 1024);
        assert_eq!(sel.gather_large, 1024 * 1024);
        assert_eq!(
            sel.select(CollKind::Bcast, 1, 4),
            CollAlgo::BcastScatterAllgather
        );
        assert_eq!(
            sel.select(CollKind::Gather, 2 << 20, 4),
            CollAlgo::GatherLinear
        );
        // Later forcing wins.
        let sel = match CollSelector::parse("reduce:ring,reduce:binomial") {
            Ok(s) => s,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(
            sel.select(CollKind::Reduce, 1 << 20, 4),
            CollAlgo::ReduceBinomial
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CollSelector::parse("frobnicate=1").is_err());
        assert!(CollSelector::parse("bcast:warp-speed").is_err());
        assert!(CollSelector::parse("barrier=12").is_err());
        assert!(CollSelector::parse("allreduce=12q").is_err());
        assert!(CollSelector::parse("nonsense").is_err());
        assert!(CollSelector::parse("").is_ok());
    }
}
