//! Calibration check: prints the simulated counterparts of the paper's
//! Fig. 3/Fig. 6 anchor measurements (blocking/overlapped collective times
//! and the point-to-point bandwidth curve) for quick model validation.
//!
//! Run with: `cargo run -p ovcomm-simmpi --release --example calib_check`
use ovcomm_simmpi::{run, Payload, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn bench(f: impl Fn(&RankCtx) + Send + Sync + 'static) -> f64 {
    run(
        SimConfig::natural(4, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            f(&rc);
            rc.now().as_secs_f64()
        },
    )
    .unwrap()
    .makespan
    .as_secs_f64()
}

fn main() {
    let n = 8 << 20;
    let t_bcast = bench(move |rc| {
        let w = rc.world();
        let _ = w.bcast(0, (rc.rank() == 0).then_some(Payload::Phantom(n)), n);
    });
    let t_reduce = bench(move |rc| {
        let w = rc.world();
        let _ = w.reduce(0, Payload::Phantom(n));
    });
    let t_ib = bench(move |rc| {
        let w = rc.world();
        let comms = w.dup_n(4);
        let reqs: Vec<_> = comms
            .iter()
            .map(|c| {
                c.ibcast(
                    0,
                    (rc.rank() == 0).then_some(Payload::Phantom(n / 4)),
                    n / 4,
                )
            })
            .collect();
        for (c, r) in comms.iter().zip(&reqs) {
            let _ = c.wait(r);
        }
    });
    let t_ir = bench(move |rc| {
        let w = rc.world();
        let comms = w.dup_n(4);
        let reqs: Vec<_> = comms
            .iter()
            .map(|c| c.ireduce(0, Payload::Phantom(n / 4)))
            .collect();
        for (c, r) in comms.iter().zip(&reqs) {
            let _ = c.wait(r);
        }
    });
    println!("blocking bcast 8MB : {:8.1} us (paper 1392)", t_bcast * 1e6);
    println!(
        "blocking reduce 8MB: {:8.1} us (paper 5746)",
        t_reduce * 1e6
    );
    println!("ndup4 ibcast 8MB   : {:8.1} us (paper ~1000)", t_ib * 1e6);
    println!("ndup4 ireduce 8MB  : {:8.1} us (paper ~2600)", t_ir * 1e6);
    for sz in [64 * 1024usize, 1 << 20, 4 << 20, 16 << 20] {
        let t = run(
            SimConfig::natural(2, 1, MachineProfile::stampede2_skylake()),
            move |rc: RankCtx| {
                let w = rc.world();
                if rc.rank() == 0 {
                    w.send(1, 0, Payload::Phantom(sz));
                } else {
                    let _ = w.recv(0, 0);
                }
                rc.now().as_secs_f64()
            },
        )
        .unwrap()
        .makespan
        .as_secs_f64();
        println!("p2p {:9}B: {:7.0} MB/s", sz, sz as f64 / t / 1e6);
    }
}
