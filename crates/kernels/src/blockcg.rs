//! Block conjugate gradients with overlapped reductions — the paper's
//! stated future work (§VI): *"We also plan to investigate the use of
//! overlapping communications in block iterative linear solvers, where
//! reductions (vector norms and dot products) involving large numbers of
//! nodes are the bottleneck."*
//!
//! The solver runs on the 2-D mesh distribution of [`crate::matvec`]: the
//! SPD operator A lives in p×p blocks, and every n×s multivector is stored
//! as segment `j` replicated down column `P(:, j)`. Each iteration needs
//! one distributed matvec and three s×s Gram reductions; two of those
//! Grams (PᵀAP and RᵀR) are computable at the same moment, so the
//! overlapped variant issues them as concurrent nonblocking
//! allreduce+broadcast pairs on duplicated communicators — communication
//! overlapped with communication, exactly the paper's idea applied to a
//! solver.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_densemat::{gemm_flops, solve, BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_simmpi::{Comm, Payload, Request};

use ovcomm_core::{pipelined_reduce_bcast, Communicator, NDupComms, RankHandle};

use crate::convert::{block_to_payload, payload_to_block};
use crate::mesh::Mesh2D;

/// Configuration of a block-CG solve.
#[derive(Debug, Clone, Copy)]
pub struct BlockCgConfig {
    /// System dimension N.
    pub n: usize,
    /// Block width s (number of right-hand sides).
    pub s: usize,
    /// Convergence threshold on ‖R‖_F / ‖B‖_F.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Overlap the simultaneous Gram reductions (the paper's technique) or
    /// run them as sequential blocking collectives (the baseline).
    pub overlap: bool,
}

/// Result on each rank.
pub struct BlockCgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative residual dropped below tolerance.
    pub converged: bool,
    /// Final relative residual.
    pub rel_residual: f64,
    /// This rank's segment X_j of the solution (lj × s).
    pub x_segment: BlockBuf,
}

/// Per-mesh communicators for the solver.
pub struct CgComms<C: Communicator = Comm> {
    row_ndup: NDupComms<C>,
    col_ndup: NDupComms<C>,
    /// Two independent duplicated bundles for the concurrent Gram pairs.
    gram_row: [NDupComms<C>; 2],
    gram_col: [NDupComms<C>; 2],
}

impl<C: Communicator> CgComms<C> {
    /// Build from a mesh (collective over all mesh ranks).
    pub fn new(mesh: &Mesh2D<C>, n_dup: usize) -> CgComms<C> {
        CgComms {
            row_ndup: NDupComms::new(&mesh.row, n_dup),
            col_ndup: NDupComms::new(&mesh.col, n_dup),
            gram_row: [NDupComms::new(&mesh.row, 1), NDupComms::new(&mesh.row, 1)],
            gram_col: [NDupComms::new(&mesh.col, 1), NDupComms::new(&mesh.col, 1)],
        }
    }
}

/// Multivector segment ops (real or phantom), charging modeled time.
fn mv_gemm<R: RankHandle>(rc: &R, a: &BlockBuf, b: &BlockBuf, rate: f64) -> BlockBuf {
    let (m, k) = a.dims();
    let (k2, n) = b.dims();
    assert_eq!(k, k2);
    let mut c = BlockBuf::zeros(m, n, a.is_phantom());
    c.gemm_acc(a, b);
    rc.compute_flops(gemm_flops(m, k, n), rate);
    c
}

/// `x + y·scale` elementwise on segments.
fn mv_add_scaled(x: &BlockBuf, y: &BlockBuf, scale: f64) -> BlockBuf {
    match (x, y) {
        (BlockBuf::Real(xm), BlockBuf::Real(ym)) => {
            let mut out = xm.clone();
            out.axpy(scale, ym);
            BlockBuf::Real(out)
        }
        (BlockBuf::Phantom(r, c), BlockBuf::Phantom(..)) => BlockBuf::Phantom(*r, *c),
        _ => panic!("cannot mix real and phantom multivectors"),
    }
}

/// Local Gram contribution `VᵀW` for the segments (s×s payload).
fn local_gram<R: RankHandle>(rc: &R, v: &BlockBuf, w: &BlockBuf, rate: f64) -> Payload {
    let (l, s) = v.dims();
    assert_eq!(w.dims(), (l, s));
    rc.compute_flops(gemm_flops(s, l, s), rate);
    match (v, w) {
        (BlockBuf::Real(vm), BlockBuf::Real(wm)) => {
            let vt = vm.transpose();
            let g = ovcomm_densemat::gemm(&vt, wm);
            Payload::from_f64s(g.data())
        }
        (BlockBuf::Phantom(..), BlockBuf::Phantom(..)) => Payload::Phantom(s * s * 8),
        _ => panic!("cannot mix real and phantom multivectors"),
    }
}

/// Distributed matvec `Y = A·V` (multivector form of Algorithm 2's
/// pipelined reduce→broadcast).
#[allow(clippy::too_many_arguments)]
fn apply_a<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    comms: &CgComms<R::Comm>,
    a: &BlockBuf,
    v: &BlockBuf,
    rate: f64,
    s: usize,
    part: &Partition1D,
) -> BlockBuf {
    let y_part = mv_gemm(rc, a, v, rate);
    let out = pipelined_reduce_bcast(
        &comms.row_ndup,
        mesh.i,
        &comms.col_ndup,
        mesh.j,
        &block_to_payload(&y_part),
        part.len(mesh.j) * s * 8,
    );
    payload_to_block(&out, part.len(mesh.j), s)
}

/// Gram matrices `VᵀW`, reduced over row 0 and broadcast down the columns.
/// With `overlap` all chains run concurrently on independent communicators
/// (nonblocking reduce → row broadcast → column broadcast, pipelined);
/// otherwise each Gram runs as sequential blocking collectives. At most
/// two pairs (one per independent communicator set).
fn grams<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    comms: &CgComms<R::Comm>,
    pairs: &[(&BlockBuf, &BlockBuf)],
    rate: f64,
    s: usize,
    overlap: bool,
) -> Vec<Payload> {
    assert!(
        pairs.len() <= 2,
        "two independent communicator sets available"
    );
    let on_row0 = mesh.i == 0;
    let bytes = s * s * 8;
    if overlap {
        // Post all reductions on row 0 first — they progress concurrently.
        let red_reqs: Vec<Option<Request<Option<Payload>>>> = pairs
            .iter()
            .enumerate()
            .map(|(idx, (v, w))| {
                on_row0.then(|| {
                    let local = local_gram(rc, v, w, rate);
                    comms.gram_row[idx].comm(0).ireduce(0, local)
                })
            })
            .collect();
        // As each reduction lands on (0,0), pipe it into the row broadcast.
        let mut row_bcasts: Vec<Request<Payload>> = Vec::new();
        if on_row0 {
            for (idx, red_req) in red_reqs.iter().enumerate() {
                let red = comms.gram_row[idx].comm(0).wait(red_req.as_ref().unwrap());
                let data = (mesh.j == 0).then(|| red.expect("rank (0,0) holds the gram"));
                row_bcasts.push(comms.gram_row[idx].comm(0).ibcast(0, data, bytes));
            }
        }
        // Post every column broadcast before waiting on any of them.
        let col_reqs: Vec<Request<Payload>> = (0..pairs.len())
            .map(|idx| {
                let from_row0 = on_row0.then(|| comms.gram_row[idx].comm(0).wait(&row_bcasts[idx]));
                comms.gram_col[idx].comm(0).ibcast(0, from_row0, bytes)
            })
            .collect();
        col_reqs
            .iter()
            .enumerate()
            .map(|(idx, r)| comms.gram_col[idx].comm(0).wait(r))
            .collect()
    } else {
        pairs
            .iter()
            .enumerate()
            .map(|(idx, (v, w))| {
                let g = if on_row0 {
                    let local = local_gram(rc, v, w, rate);
                    let red = comms.gram_row[idx].comm(0).reduce(0, local);
                    let data = (mesh.j == 0).then(|| red.expect("rank (0,0) holds the gram"));
                    Some(comms.gram_row[idx].comm(0).bcast(0, data, bytes))
                } else {
                    None
                };
                comms.gram_col[idx].comm(0).bcast(0, g, bytes)
            })
            .collect()
    }
}

fn payload_to_small(p: &Payload, s: usize) -> Matrix {
    Matrix::from_vec(s, s, p.to_f64s())
}

/// Run block CG on this rank. `a_block` is A(i,j); `b_segment` is B_j
/// (lj × s). Returns the converged X_j.
pub fn block_cg<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    comms: &CgComms<R::Comm>,
    cfg: &BlockCgConfig,
    a_block: &BlockBuf,
    b_segment: &BlockBuf,
) -> BlockCgResult {
    let part = Partition1D::new(cfg.n, mesh.p);
    let grid = BlockGrid::new(cfg.n, mesh.p);
    assert_eq!(a_block.dims(), grid.block_dims(mesh.i, mesh.j));
    assert_eq!(b_segment.dims(), (part.len(mesh.j), cfg.s));
    let phantom = a_block.is_phantom();
    let rate = rc
        .profile()
        .process_flops(rc.compute_ppn(), grid.n().div_ceil(grid.p()).max(1))
        * 0.25;

    let mut x = BlockBuf::zeros(part.len(mesh.j), cfg.s, phantom);
    let mut r = b_segment.clone();
    let mut p_dir = r.clone();
    // ‖B‖_F for the relative residual.
    let g_b = grams(rc, mesh, comms, &[(&r, &r)], rate, cfg.s, false);
    let norm_b = if phantom {
        1.0
    } else {
        payload_to_small(&g_b[0], cfg.s).trace().sqrt()
    };

    let mut iterations = 0;
    let mut converged = false;
    let mut rel = f64::NAN;
    while iterations < cfg.max_iter {
        let ap = apply_a(rc, mesh, comms, a_block, &p_dir, rate, cfg.s, &part);
        // PᵀAP and RᵀR are both computable now: the overlapped pair.
        let gs = grams(
            rc,
            mesh,
            comms,
            &[(&p_dir, &ap), (&r, &r)],
            rate,
            cfg.s,
            cfg.overlap,
        );
        let (g_pap, g_rr) = (gs[0].clone(), gs[1].clone());
        iterations += 1;
        if phantom {
            // Fixed-length timing run.
            let alpha_cost = gemm_flops(cfg.s, cfg.s, cfg.s);
            rc.compute_flops(2.0 * alpha_cost, rate);
            x = mv_add_scaled(&x, &p_dir, 1.0);
            r = mv_add_scaled(&r, &ap, -1.0);
            p_dir = r.clone();
            continue;
        }
        let g_pap_m = payload_to_small(&g_pap, cfg.s);
        let g_rr_m = payload_to_small(&g_rr, cfg.s);
        rel = g_rr_m.trace().sqrt() / norm_b;
        if rel < cfg.tol {
            converged = true;
            break;
        }
        let alpha = solve(&g_pap_m, &g_rr_m);
        // X += P·alpha ; R -= AP·alpha
        let p_alpha = mv_gemm(rc, &p_dir, &BlockBuf::Real(alpha.clone()), rate);
        x = mv_add_scaled(&x, &p_alpha, 1.0);
        let ap_alpha = mv_gemm(rc, &ap, &BlockBuf::Real(alpha), rate);
        r = mv_add_scaled(&r, &ap_alpha, -1.0);
        // Third reduction: the new RᵀR for beta.
        let g_rr_new = grams(rc, mesh, comms, &[(&r, &r)], rate, cfg.s, false);
        let g_rr_new_m = payload_to_small(&g_rr_new[0], cfg.s);
        let beta = solve(&g_rr_m, &g_rr_new_m);
        let p_beta = mv_gemm(rc, &p_dir, &BlockBuf::Real(beta), rate);
        p_dir = mv_add_scaled(&r, &p_beta, 1.0);
    }

    BlockCgResult {
        iterations,
        converged,
        rel_residual: if rel.is_nan() { 0.0 } else { rel },
        x_segment: x,
    }
}
