//! # ovcomm-kernels
//!
//! The distributed dense-matrix kernels of the paper:
//!
//! * [`matvec`] — parallel matrix–vector multiplication, blocking
//!   (Algorithm 1) and pipelined/overlapped (Algorithm 2);
//! * [`symm3d`] — SymmSquareCube over 3-D multiplication: original
//!   (Algorithm 3), baseline (Algorithm 4), and optimized with nonblocking
//!   overlap (Algorithm 5);
//! * [`symm25d`] — SymmSquareCube over 2.5D multiplication with Cannon's
//!   algorithm (Algorithm 6), with its collectives self-overlapped;
//! * [`cosma`] — COSMA-style communication-optimal multiply over one-sided
//!   RMA windows, prefetching the next operand blocks during the current
//!   local GEMM;
//! * [`mesh`] — 2-D/3-D/2.5D process meshes with the paper's "natural"
//!   rank placement.
//!
//! All kernels run on real data (verified against dense references in the
//! test suite) or phantom data (paper-scale benchmarks) with identical
//! virtual timing.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blockcg;
pub mod convert;
pub mod cosma;
pub mod matvec;
pub mod mesh;
pub mod particles;
pub mod summa;
pub mod symm25d;
pub mod symm3d;

pub use blockcg::{block_cg, BlockCgConfig, BlockCgResult, CgComms};
pub use cosma::{cosma_multiply, symm_square_cube_cosma};
pub use matvec::{matvec_blocking, matvec_pipelined, MatvecInput, VecBuf};
pub use mesh::{Mesh2D, Mesh3D, Mesh3DBundles};
pub use particles::{md_init, md_run, MdConfig, MdState};
pub use summa::{summa_multiply, summa_multiply_pipelined, symm_square_cube_summa, SummaBundles};
pub use symm25d::{symm_square_cube_25d, Mesh25D};
pub use symm3d::{
    symm_square_cube_baseline, symm_square_cube_flops, symm_square_cube_optimized,
    symm_square_cube_original, SymmInput, SymmOutput,
};
