//! Process meshes and their communicators.
//!
//! Rank placement follows the paper (§V-D): "a 'natural' assignment of the
//! MPI ranks to the p×p×p process mesh, i.e., the ranks are assigned row by
//! row in one plane and then plane by plane", with consecutive ranks on a
//! node. Concretely `rank = k·p² + i·p + j` for coordinates (i, j, k).
//!
//! The meshes are generic over the backend [`Communicator`]; the default
//! type parameter keeps simulator call sites (`Mesh2D`, `Mesh3D`)
//! source-compatible.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_simmpi::Comm;

use ovcomm_core::{Communicator, NDupComms, RankHandle};

/// A p×p 2-D process mesh with row and column communicators (for the
/// matrix–vector example, Algorithms 1–2).
pub struct Mesh2D<C: Communicator = Comm> {
    /// Mesh dimension.
    pub p: usize,
    /// My row index i (rank = i·p + j).
    pub i: usize,
    /// My column index j.
    pub j: usize,
    /// Communicator over `P(i, :)` — my index within it is `j`.
    pub row: C,
    /// Communicator over `P(:, j)` — my index within it is `i`.
    pub col: C,
    /// The world communicator.
    pub world: C,
}

impl<C: Communicator> Mesh2D<C> {
    /// Build from the world communicator; requires `nranks == p²`.
    pub fn new<R: RankHandle<Comm = C>>(rc: &R, p: usize) -> Mesh2D<C> {
        Mesh2D::new_on(rc.world(), p)
    }

    /// Build over an arbitrary base communicator (e.g. the active subset of
    /// a per-kernel-PPN stage); requires `base.size() == p²`.
    pub fn new_on(world: C, p: usize) -> Mesh2D<C> {
        assert_eq!(world.size(), p * p, "need exactly p^2 ranks");
        let rank = world.rank();
        let (i, j) = (rank / p, rank % p);
        let row = world.split(i as i64, j as u64).expect("row split");
        let col = world.split(j as i64, i as u64).expect("col split");
        debug_assert_eq!(row.rank(), j);
        debug_assert_eq!(col.rank(), i);
        Mesh2D {
            p,
            i,
            j,
            row,
            col,
            world,
        }
    }
}

/// A p×p×p 3-D process mesh with the paper's three communicators (§IV):
/// `row_comm` over `P(:, j, k)`, `col_comm` over `P(i, :, k)`, `grd_comm`
/// over `P(i, j, :)`.
pub struct Mesh3D<C: Communicator = Comm> {
    /// Mesh dimension p (p³ ranks).
    pub p: usize,
    /// My coordinates (i, j, k); `rank = k·p² + i·p + j`.
    pub i: usize,
    /// Second coordinate.
    pub j: usize,
    /// Plane coordinate.
    pub k: usize,
    /// Over `P(:, j, k)`, varying i — my index is `i`.
    pub row: C,
    /// Over `P(i, :, k)`, varying j — my index is `j`.
    pub col: C,
    /// Over `P(i, j, :)`, varying k — my index is `k`.
    pub grd: C,
    /// All p³ ranks.
    pub world: C,
}

/// Coordinates of a world rank on a p-mesh (`rank = k·p² + i·p + j`).
pub fn mesh3d_coords_of(rank: usize, p: usize) -> (usize, usize, usize) {
    let k = rank / (p * p);
    let r = rank % (p * p);
    (r / p, r % p, k)
}

/// World rank of 3-D mesh coordinates.
pub fn mesh3d_rank_of(i: usize, j: usize, k: usize, p: usize) -> usize {
    k * p * p + i * p + j
}

impl<C: Communicator> Mesh3D<C> {
    /// Coordinates of a world rank on a p-mesh.
    pub fn coords_of(rank: usize, p: usize) -> (usize, usize, usize) {
        mesh3d_coords_of(rank, p)
    }

    /// World rank of mesh coordinates.
    pub fn rank_of(i: usize, j: usize, k: usize, p: usize) -> usize {
        mesh3d_rank_of(i, j, k, p)
    }

    /// Build from the world communicator; requires `nranks == p³`.
    pub fn new<R: RankHandle<Comm = C>>(rc: &R, p: usize) -> Mesh3D<C> {
        Mesh3D::new_on(rc.world(), p)
    }

    /// Build over an arbitrary base communicator (e.g. the active subset of
    /// a per-kernel-PPN stage); requires `base.size() == p³`.
    pub fn new_on(world: C, p: usize) -> Mesh3D<C> {
        assert_eq!(world.size(), p * p * p, "need exactly p^3 ranks");
        let rank = world.rank();
        let (i, j, k) = mesh3d_coords_of(rank, p);
        let row = world
            .split((j + k * p) as i64, i as u64)
            .expect("row split");
        let col = world
            .split((i + k * p) as i64, j as u64)
            .expect("col split");
        let grd = world
            .split((i + j * p) as i64, k as u64)
            .expect("grd split");
        debug_assert_eq!(row.rank(), i);
        debug_assert_eq!(col.rank(), j);
        debug_assert_eq!(grd.rank(), k);
        Mesh3D {
            p,
            i,
            j,
            k,
            row,
            col,
            grd,
            world,
        }
    }

    /// Duplicate the mesh communicators into N_DUP bundles for the
    /// nonblocking-overlap technique (Algorithm 5's input: "N_DUP copies
    /// of: row_comm, col_comm and grd_comm").
    pub fn dup_bundles(&self, n_dup: usize) -> Mesh3DBundles<C> {
        Mesh3DBundles {
            row: NDupComms::new(&self.row, n_dup),
            col: NDupComms::new(&self.col, n_dup),
            grd: NDupComms::new(&self.grd, n_dup),
            world: NDupComms::new(&self.world, n_dup),
        }
    }
}

/// N_DUP-duplicated communicators of a [`Mesh3D`].
pub struct Mesh3DBundles<C: Communicator = Comm> {
    /// Duplicates of `row_comm`.
    pub row: NDupComms<C>,
    /// Duplicates of `col_comm`.
    pub col: NDupComms<C>,
    /// Duplicates of `grd_comm`.
    pub grd: NDupComms<C>,
    /// Duplicates of the world communicator (for the D² hand-back sends,
    /// Algorithm 5 line 23 uses `global_comm`).
    pub world: NDupComms<C>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let p = 4;
        for rank in 0..p * p * p {
            let (i, j, k) = mesh3d_coords_of(rank, p);
            assert_eq!(mesh3d_rank_of(i, j, k, p), rank);
            assert!(i < p && j < p && k < p);
        }
    }

    #[test]
    fn natural_order_is_row_then_plane() {
        // rank 0 → (0,0,0); rank 1 → (0,1,0) (next in the row);
        // rank p → (1,0,0) (next row); rank p² → (0,0,1) (next plane).
        let p = 3;
        assert_eq!(mesh3d_coords_of(0, p), (0, 0, 0));
        assert_eq!(mesh3d_coords_of(1, p), (0, 1, 0));
        assert_eq!(mesh3d_coords_of(p, p), (1, 0, 0));
        assert_eq!(mesh3d_coords_of(p * p, p), (0, 0, 1));
    }
}
