//! COSMA-style communication-optimal multiply over one-sided windows.
//!
//! COSMA (Kwasniewski et al., SC'19) derives a communication-optimal
//! schedule in which every processor *fetches* exactly the operand blocks
//! its local multiplications need — a one-sided, origin-driven access
//! pattern — instead of participating in the broadcast trees of SUMMA.
//! This module reproduces that access pattern on the paper's p×p mesh:
//! each rank exposes its A and B blocks in RMA windows and, at step l,
//! one-sidedly **gets** `A(i,l)` and `B(l,j)` from their owners. The
//! target rank does nothing — no receive posts, no broadcast forwarding —
//! so the paper's overlap question becomes purely origin-side: the kernel
//! prefetches step l+1's blocks *before* blocking on step l's, and the
//! in-flight transfers overlap both the waits and the local GEMM.
//!
//! The whole loop is gets-only (C stays local; nothing is ever put or
//! accumulated), so it is conflict-free under the RMA verifier and needs
//! only one access epoch: fence once after window creation, get/compute
//! for p steps, fence once to close. Gets read committed (epoch-stable)
//! segment state on both backends, and the local accumulation order is
//! fixed by the loop, so results are **bit-identical** between the
//! simulator and the wall-clock runtime — the `rma-smoke` CI job pins
//! this.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// pipeline-priming and mesh bookkeeping guaranteed by the surrounding
// protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{Communicator, RankHandle, Window};
use ovcomm_densemat::{gemm_flops, BlockBuf, BlockGrid};

use crate::convert::{block_to_payload, payload_to_block};
use crate::mesh::Mesh2D;
use crate::symm3d::{SymmInput, SymmOutput};

fn local_multiply<R: RankHandle>(rc: &R, c: &mut BlockBuf, a: &BlockBuf, b: &BlockBuf, rate: f64) {
    c.gemm_acc(a, b);
    let (m, kk) = a.dims();
    let (_, n2) = b.dims();
    rc.compute_flops(gemm_flops(m, kk, n2), rate);
}

/// Distributed `C = A·B` with one-sided COSMA-style fetching. `a` and `b`
/// are this rank's blocks (the (i,j) blocks of the operands); returns this
/// rank's block of C.
///
/// Creates one window per operand over the mesh's world communicator
/// (collective), runs a single fence-delimited access epoch of p
/// get/compute steps with one step of prefetch lookahead, and frees the
/// windows before returning.
pub fn cosma_multiply<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    grid: &BlockGrid,
    a: &BlockBuf,
    b: &BlockBuf,
    rate: f64,
) -> BlockBuf {
    let p = mesh.p;
    let (i, j) = (mesh.i, mesh.j);
    let (li, lj) = grid.block_dims(i, j);
    assert_eq!(a.dims(), (li, lj), "A block shape");
    assert_eq!(b.dims(), (li, lj), "B block shape");
    let phantom = a.is_phantom();
    let mut c = BlockBuf::zeros(li, lj, phantom);

    // Every rank exposes its blocks; window rank == world-comm rank
    // (= i·p + j on the mesh).
    let win_a = mesh.world.win_create(block_to_payload(a));
    let win_b = mesh.world.win_create(block_to_payload(b));
    // Open the (single) access epoch.
    win_a.fence();
    win_b.fence();

    // Post the one-sided fetches of step l: A(i,l) from the column-l
    // owner of row i, B(l,j) from the row-l owner of column j.
    let post = |l: usize| {
        let ra = win_a.get(i * p + l, 0, grid.block_bytes(i, l));
        let rb = win_b.get(l * p + j, 0, grid.block_bytes(l, j));
        (ra, rb)
    };

    let mut inflight = Some(post(0));
    for l in 0..p {
        let t_step = rc.now();
        let (ra, rb) = inflight.take().expect("pipeline primed");
        // Prefetch step l+1 before blocking on step l: the in-flight
        // gets overlap both the waits and the GEMM below.
        if l + 1 < p {
            inflight = Some(post(l + 1));
        }
        let a_panel = win_a.wait(&ra);
        let (ra2, ca2) = grid.block_dims(i, l);
        let a_blk = payload_to_block(&a_panel, ra2, ca2);
        let b_panel = win_b.wait(&rb);
        let (rb2, cb2) = grid.block_dims(l, j);
        let b_blk = payload_to_block(&b_panel, rb2, cb2);
        local_multiply(rc, &mut c, &a_blk, &b_blk, rate);
        rc.phase_span(t_step, format!("cosma step {l}"));
    }

    // Close the epoch and tear down (both collective).
    win_a.fence();
    win_b.fence();
    win_a.free();
    win_b.free();
    c
}

/// SymmSquareCube over the one-sided multiply: D² = D·D then D³ = D·D² on
/// a p×p mesh — the one-sided counterpart of `symm_square_cube_summa`,
/// for like-for-like comparison in the figs12/table5 harnesses.
pub fn symm_square_cube_cosma<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.p);
    let d = input
        .d_block
        .as_ref()
        .expect("every rank of the 2-D mesh holds a D block");
    assert_eq!(d.dims(), grid.block_dims(mesh.i, mesh.j));
    let block_dim = grid.n().div_ceil(grid.p()).max(1);
    let rate = rc.profile().process_flops(rc.compute_ppn(), block_dim);

    let t_d2 = rc.now();
    let d2 = cosma_multiply(rc, mesh, &grid, d, d, rate);
    rc.phase_span(t_d2, "cosma D2".to_string());
    let t_d3 = rc.now();
    let d3 = cosma_multiply(rc, mesh, &grid, d, &d2, rate);
    rc.phase_span(t_d3, "cosma D3".to_string());
    SymmOutput {
        d2: Some(d2),
        d3: Some(d3),
    }
}
