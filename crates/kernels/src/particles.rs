//! Force-decomposition molecular dynamics — the paper's other future-work
//! direction (§VI): *"In distributed particle simulations, the forces
//! between a set of particles can be arranged in a matrix that is
//! partitioned using a 2D partitioning. This leads to algorithms that use
//! collective communication along processor rows and columns of a
//! processor mesh."* (Plimpton's force decomposition.)
//!
//! Rank (i, j) of a p×p mesh owns the force block F(i, j) between particle
//! groups i and j. One step:
//!
//! 1. every rank computes its partial forces F(i,j) from the positions of
//!    groups i and j;
//! 2. **row reduction**: Σ_j F(i,j) → the total force on group i, reduced
//!    to the diagonal rank (i, i);
//! 3. the diagonal integrates its group's positions;
//! 4. **column broadcast**: new positions of group j flow down P(:, j)
//!    (the diagonal (j, j) is the root).
//!
//! Steps 2 and 4 are exactly the reduce→broadcast pair of Algorithm 2, so
//! the overlapped variant pipelines them with
//! [`ovcomm_core::pipelined_reduce_bcast`] — communication overlapped with
//! communication in an N-body code.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{pipelined_reduce_bcast, Communicator, NDupComms, RankHandle};
use ovcomm_simmpi::Payload;

use crate::matvec::VecBuf;
use crate::mesh::Mesh2D;
use ovcomm_densemat::Partition1D;

/// Configuration of a force-decomposition run.
#[derive(Debug, Clone, Copy)]
pub struct MdConfig {
    /// Total particles (one coordinate per particle; a 1-D toy system keeps
    /// the physics trivial while the communication is the real thing).
    pub n_particles: usize,
    /// Integration steps.
    pub steps: usize,
    /// Time step.
    pub dt: f64,
    /// Overlap the reduction with the broadcast (Algorithm 2 style) or run
    /// them as sequential blocking collectives.
    pub overlap: Option<usize>,
    /// Interaction cutoff: average neighbours per particle used to *model*
    /// the force-computation time (real MD is never all-pairs). `None`
    /// charges the full O(n²/p²) block — only sensible at test scale, where
    /// the real arithmetic is also all-pairs.
    pub neighbors: Option<usize>,
}

/// Per-rank state of the mini MD system.
pub struct MdState {
    /// Positions of my column group (replicated down the column).
    pub x: VecBuf,
    /// Velocities (diagonal ranks only; `None` elsewhere).
    pub v: Option<Vec<f64>>,
}

/// Pairwise force between two particles at positions a and b: a softened
/// spring toward separation 1 (toy physics; O(n²) like real all-pairs MD).
fn pair_force(a: f64, b: f64) -> f64 {
    let d = a - b;
    let r = d.abs().max(1e-3);
    // Repulsive below distance 1, attractive above: f = (r - 1)/r * (-d)
    -(r - 1.0) / r * d
}

/// Initialize the distributed system: rank (i, j) gets group j's positions.
pub fn md_init<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    cfg: &MdConfig,
    phantom: bool,
) -> MdState {
    let part = Partition1D::new(cfg.n_particles, mesh.p);
    let (s, l) = part.range(mesh.j);
    if phantom {
        MdState {
            x: VecBuf::Phantom(l),
            v: (mesh.i == mesh.j).then(Vec::new),
        }
    } else {
        let x: Vec<f64> = (s..s + l).map(|t| t as f64 * 1.05).collect();
        let _ = rc;
        MdState {
            x: VecBuf::Real(x),
            v: (mesh.i == mesh.j).then(|| vec![0.0; l]),
        }
    }
}

/// Run `cfg.steps` force-decomposition steps; returns the final state.
pub fn md_run<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    cfg: &MdConfig,
    mut state: MdState,
) -> MdState {
    let part = Partition1D::new(cfg.n_particles, mesh.p);
    let (i, j) = (mesh.i, mesh.j);
    let li = part.len(i);
    let lj = part.len(j);
    // Positions of my row group (group i), needed to compute F(i, j):
    // maintained by a row broadcast from the diagonal at each step; the
    // initial copy comes from the same broadcast with the diagonal's x.
    let bundles = cfg
        .overlap
        .map(|d| (NDupComms::new(&mesh.row, d), NDupComms::new(&mesh.col, d)));

    // Initial row-group positions (diagonal owns group i — note for rank
    // (i, j), the row group index is i, held by (i, i) in this row).
    let mut xi = {
        let data = (i == j).then(|| state.x.to_payload());
        let p = mesh.row.bcast(i, data, li * 8);
        VecBuf::from_payload(&p)
    };

    let rate = rc.profile().process_flops(rc.compute_ppn(), li.max(1)) * 0.1;
    for _step in 0..cfg.steps {
        // 1. Partial forces on group i from group j: O(li·lj) pair work.
        let partial: VecBuf = match (&xi, &state.x) {
            (VecBuf::Real(xa), VecBuf::Real(xb)) => {
                let mut f = vec![0.0; li];
                for (a, fa) in f.iter_mut().enumerate() {
                    for (b, &xbv) in xb.iter().enumerate().take(lj) {
                        // Skip self-interaction on diagonal blocks.
                        if i == j && a == b {
                            continue;
                        }
                        *fa += pair_force(xa[a], xbv);
                    }
                }
                VecBuf::Real(f)
            }
            _ => VecBuf::Phantom(li),
        };
        let pair_cost = cfg.neighbors.map_or(lj, |k| k.min(lj));
        rc.compute_flops(8.0 * li as f64 * pair_cost as f64, rate);

        // 2+4. Reduce partial forces along the row to the diagonal; the
        // diagonal integrates and broadcasts the new positions down the
        // column — pipelined when overlap is on.
        let new_x_payload = match &bundles {
            Some((row_ndup, col_ndup)) => {
                // Overlapped: forces reduce chunk-by-chunk into the
                // diagonal, which must integrate before broadcasting; the
                // integration is folded into the pipeline by reducing
                // *velocity updates*: for the toy integrator
                // x' = x + dt·(v + dt·f) each chunk of f maps to a chunk of
                // x' locally on the diagonal.
                pipelined_reduce_bcast_with_integrate(
                    rc, mesh, row_ndup, col_ndup, &partial, &mut state, cfg.dt, lj,
                )
            }
            None => {
                let reduced = mesh.row.reduce(i, partial.to_payload());
                let data = (i == j).then(|| {
                    integrate(&mut state, &VecBuf::from_payload(&reduced.unwrap()), cfg.dt)
                        .to_payload()
                });
                mesh.col.bcast(j, data, lj * 8)
            }
        };
        state.x = VecBuf::from_payload(&new_x_payload);
        // My row group's new positions for the next step's force block.
        let data = (i == j).then(|| state.x.to_payload());
        let p = mesh.row.bcast(i, data, li * 8);
        xi = VecBuf::from_payload(&p);
    }
    state
}

/// Diagonal-rank integration: v += dt·f; x += dt·v.
fn integrate(state: &mut MdState, force: &VecBuf, dt: f64) -> VecBuf {
    match (&mut state.x, force) {
        (VecBuf::Real(x), VecBuf::Real(f)) => {
            let v = state.v.as_mut().expect("diagonal holds velocities");
            for ((xv, vv), fv) in x.iter_mut().zip(v.iter_mut()).zip(f) {
                *vv += dt * fv;
                *xv += dt * *vv;
            }
            VecBuf::Real(x.clone())
        }
        (VecBuf::Phantom(n), _) => VecBuf::Phantom(*n),
        _ => panic!("mixed real/phantom MD state"),
    }
}

/// The overlapped reduce→integrate→broadcast: the diagonal consumes reduced
/// force chunks as they land and immediately broadcasts the corresponding
/// position chunk. Non-diagonal ranks run the plain pipelined pattern.
#[allow(clippy::too_many_arguments)]
fn pipelined_reduce_bcast_with_integrate<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    row_ndup: &NDupComms<R::Comm>,
    col_ndup: &NDupComms<R::Comm>,
    partial: &VecBuf,
    state: &mut MdState,
    dt: f64,
    lj: usize,
) -> Payload {
    let (i, j) = (mesh.i, mesh.j);
    if i == j {
        // Integrate the full reduced force, then pipeline the broadcast.
        // (Integration is cheap — O(n/p) — so folding it per-chunk buys
        // little; the transfer overlap is what matters.)
        let reduced = ovcomm_core::overlapped_reduce(row_ndup, i, &partial.to_payload())
            .expect("diagonal is the reduce root");
        let _ = rc;
        let new_x = integrate(state, &VecBuf::from_payload(&reduced), dt);
        ovcomm_core::overlapped_bcast(col_ndup, j, Some(&new_x.to_payload()), lj * 8)
    } else {
        // Contribute force chunks; receive position chunks.
        pipelined_reduce_bcast(row_ndup, i, col_ndup, j, &partial.to_payload(), lj * 8)
    }
}
