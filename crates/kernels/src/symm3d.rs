//! SymmSquareCube over 3-D matrix multiplication: Algorithms 3 (original),
//! 4 (baseline) and 5 (optimized with nonblocking overlap) of the paper.
//!
//! The kernel computes D² and D³ of a symmetric N×N matrix D distributed in
//! p×p blocks over a p×p×p process mesh, with block (i, j) owned by
//! P(i, j, 0). Results are returned with the same distribution. The
//! symmetry of D is exploited exactly where the paper does (the row
//! broadcast of Bᵀ in line 2 of Algorithms 3/4 and lines 4–7 of
//! Algorithm 5).

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{pipelined_reduce_bcast, ChunkPlan, Communicator, RankHandle};
use ovcomm_densemat::{gemm_flops, BlockBuf, BlockGrid};
use ovcomm_simmpi::{Payload, Request};

use crate::convert::{block_to_payload, payload_to_block};
use crate::mesh::{mesh3d_rank_of, Mesh3D, Mesh3DBundles};

/// User tag for the D² hand-back sends.
const TAG_D2: u32 = 101;
/// User tag for the D³ hand-back sends.
const TAG_D3: u32 = 102;

/// Input to one SymmSquareCube call.
pub struct SymmInput {
    /// Matrix dimension N.
    pub n: usize,
    /// This rank's block D(i, j) — `Some` exactly on plane k = 0.
    pub d_block: Option<BlockBuf>,
}

/// Output: D² and D³ blocks, present exactly on plane k = 0 with the input
/// distribution.
pub struct SymmOutput {
    /// D²(i, j) on P(i, j, 0).
    pub d2: Option<BlockBuf>,
    /// D³(i, j) on P(i, j, 0).
    pub d3: Option<BlockBuf>,
}

/// Flops of one SymmSquareCube call: two N×N×N multiplications.
pub fn symm_square_cube_flops(n: usize) -> f64 {
    2.0 * 2.0 * (n as f64).powi(3)
}

fn check_input<C: Communicator>(mesh: &Mesh3D<C>, grid: &BlockGrid, input: &SymmInput) {
    if mesh.k == 0 {
        let d = input
            .d_block
            .as_ref()
            .expect("plane 0 must supply D blocks");
        assert_eq!(
            d.dims(),
            grid.block_dims(mesh.i, mesh.j),
            "D block has wrong dimensions"
        );
    } else {
        assert!(input.d_block.is_none(), "only plane 0 supplies D blocks");
    }
}

/// Local GEMM: real arithmetic when blocks are real, modeled time always.
fn local_multiply<R: RankHandle>(rc: &R, c: &mut BlockBuf, a: &BlockBuf, b: &BlockBuf, rate: f64) {
    c.gemm_acc(a, b);
    let (m, kk) = a.dims();
    let (_, n2) = b.dims();
    rc.compute_flops(gemm_flops(m, kk, n2), rate);
}

/// GEMM rate for this run: the node's rate divided among its processes,
/// with the local block dimension's efficiency factor.
fn gemm_rate<R: RankHandle>(rc: &R, grid: &BlockGrid) -> f64 {
    let block_dim = grid.n().div_ceil(grid.p()).max(1);
    rc.profile().process_flops(rc.compute_ppn(), block_dim)
}

/// Hand a block from `src_rank` to `dst_rank` on `comm` (blocking), keeping
/// it local when they coincide (a blocking self-send would deadlock in the
/// rendezvous protocol, exactly as in MPI).
fn hand_back<C: Communicator>(
    comm: &C,
    my_index: usize,
    src: usize,
    dst: usize,
    tag: u32,
    data: Option<Payload>,
) -> Option<Payload> {
    if src == dst {
        return if my_index == src { data } else { None };
    }
    if my_index == src {
        comm.send(dst, tag, data.expect("sender must hold the block"));
        None
    } else if my_index == dst {
        Some(comm.recv(src, tag))
    } else {
        None
    }
}

/// **Algorithm 3** — the original SymmSquareCube from GTFock, including the
/// explicit D² transpose (line 6).
pub fn symm_square_cube_original<R: RankHandle>(
    rc: &R,
    mesh: &Mesh3D<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.p);
    check_input(mesh, &grid, input);
    let rate = gemm_rate(rc, &grid);
    let (p, i, j, k) = (mesh.p, mesh.i, mesh.j, mesh.k);
    let (li, lj) = grid.block_dims(i, j);
    let lk = grid.block_dims(k, k).0;

    // 1: A(i,j) := D(i,j), broadcast along the grid fibre from plane 0.
    let a_payload = input.d_block.as_ref().map(block_to_payload);
    let a_recv = mesh.grd.bcast(0, a_payload, grid.block_bytes(i, j));
    let a = payload_to_block(&a_recv, li, lj);
    let phantom = a.is_phantom();

    // 2: row broadcast of D(k,j) from P(k,j,k); B(j,k) := D(k,j)ᵀ by
    // symmetry of D.
    let dkj = mesh.row.bcast(
        k,
        (i == k).then(|| block_to_payload(&a)),
        grid.block_bytes(k, j),
    );
    let b = payload_to_block(&dkj, grid.block_dims(k, j).0, lj).transpose();

    // 3: C := A·B.
    let mut c = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c, &a, &b, rate);

    // 4: reduce C(i,:,k) to D²(i,k) on P(i,k,k).
    let d2_red = mesh.col.reduce(k, block_to_payload(&c));

    // 5: P(i,k,k) hands D²(i,k) to P(i,k,0) along the grid fibre.
    let d2_home = if j == k {
        hand_back(&mesh.grd, k, k, 0, TAG_D2, d2_red.clone())
    } else if k == 0 {
        hand_back(&mesh.grd, 0, j, 0, TAG_D2, None)
    } else {
        None
    };

    // 6: transpose D² blocks so that P(k,j,k) has D²(j,k): reduce roots
    // P(a,b,b) send D²(a,b) to P(b,a,b) in the world communicator. No rank
    // is both sender and receiver unless it is a diagonal (k,k,k), which
    // keeps its block locally — so blocking send/recv cannot deadlock.
    let my = mesh.world.rank();
    let mut d2_for_bcast: Option<Payload> = None;
    if j == k {
        // I am P(i,k,k) holding D²(i,k); it belongs at P(k,i,k).
        let dst = mesh3d_rank_of(k, i, k, p);
        if dst == my {
            d2_for_bcast = d2_red.clone();
        } else {
            mesh.world
                .send(dst, TAG_D2, d2_red.clone().expect("root holds D²"));
        }
    }
    if i == k && d2_for_bcast.is_none() {
        // I am P(k,j,k), the row-broadcast root, expecting D²(j,k) from
        // P(j,k,k).
        let src = mesh3d_rank_of(j, k, k, p);
        debug_assert_ne!(src, my, "diagonal handled by the sender branch");
        d2_for_bcast = Some(mesh.world.recv(src, TAG_D2));
    }

    // 7: row broadcast of D²(j,k) from P(k,j,k).
    let b2 = mesh.row.bcast(k, d2_for_bcast, grid.block_bytes(j, k));
    let b2 = payload_to_block(&b2, lj, lk);

    // 8: C := A·B².
    let mut c2 = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c2, &a, &b2, rate);

    // 9: reduce to D³(i,k) on P(i,k,k).
    let d3_red = mesh.col.reduce(k, block_to_payload(&c2));

    // 10: hand D³ back to plane 0.
    let d3_home = if j == k {
        hand_back(&mesh.grd, k, k, 0, TAG_D3, d3_red)
    } else if k == 0 {
        hand_back(&mesh.grd, 0, j, 0, TAG_D3, None)
    } else {
        None
    };

    finish(mesh, &grid, d2_home, d3_home)
}

/// **Algorithm 4** — the baseline: the D² transpose is eliminated by
/// reducing D² to P(i,i,k) instead (new distribution scheme), and the
/// hand-backs move to the end.
pub fn symm_square_cube_baseline<R: RankHandle>(
    rc: &R,
    mesh: &Mesh3D<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.p);
    check_input(mesh, &grid, input);
    let rate = gemm_rate(rc, &grid);
    let (p, i, j, k) = (mesh.p, mesh.i, mesh.j, mesh.k);
    let (li, lj) = grid.block_dims(i, j);
    let lk = grid.block_dims(k, k).0;

    // 1–3 as in Algorithm 3.
    let a_payload = input.d_block.as_ref().map(block_to_payload);
    let a_recv = mesh.grd.bcast(0, a_payload, grid.block_bytes(i, j));
    let a = payload_to_block(&a_recv, li, lj);
    let phantom = a.is_phantom();
    let dkj = mesh.row.bcast(
        k,
        (i == k).then(|| block_to_payload(&a)),
        grid.block_bytes(k, j),
    );
    let b = payload_to_block(&dkj, grid.block_dims(k, j).0, lj).transpose();
    let mut c = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c, &a, &b, rate);

    // 4: reduce C(i,:,k) to D²(i,k) on P(i,i,k) — root j = i.
    let d2_red = mesh.col.reduce(i, block_to_payload(&c));

    // 5: row broadcast of D²(j,k) straight from P(j,j,k) — no transpose.
    let b2 = mesh.row.bcast(
        j,
        (i == j).then(|| d2_red.clone().unwrap()),
        grid.block_bytes(j, k),
    );
    let b2_block = payload_to_block(&b2, lj, lk);

    // 6: C := A·B².
    let mut c2 = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c2, &a, &b2_block, rate);

    // 7: reduce to D³(i,k) on P(i,k,k).
    let d3_red = mesh.col.reduce(k, block_to_payload(&c2));

    // 8: P(i,i,k) sends D²(i,k) to P(i,k,0) in the world communicator.
    let my = mesh.world.rank();
    let mut d2_home: Option<Payload> = None;
    if i == j {
        let dst = mesh3d_rank_of(i, k, 0, p);
        let payload = d2_red.expect("P(i,i,k) holds D²(i,k)");
        if dst == my {
            d2_home = Some(payload);
        } else {
            mesh.world.send(dst, TAG_D2, payload);
        }
    }
    if k == 0 && d2_home.is_none() {
        // D²(i,j) comes from P(i,i,j); the self case is exactly rank
        // (0,0,0), which the sender branch already kept local.
        let src = mesh3d_rank_of(i, i, j, p);
        debug_assert_ne!(src, my);
        d2_home = Some(mesh.world.recv(src, TAG_D2));
    }

    // 9: P(i,k,k) sends D³(i,k) to P(i,k,0) along the grid fibre.
    let d3_home = if j == k {
        hand_back(&mesh.grd, k, k, 0, TAG_D3, d3_red)
    } else if k == 0 {
        hand_back(&mesh.grd, 0, j, 0, TAG_D3, None)
    } else {
        None
    };

    finish(mesh, &grid, d2_home, d3_home)
}

/// **Algorithm 5** — the optimized SymmSquareCube: every phase of the
/// baseline is pipelined and overlapped with the nonblocking-overlap
/// technique over N_DUP duplicated communicators. With `N_DUP = 1` it
/// performs the same communication schedule as the baseline (through the
/// nonblocking path).
pub fn symm_square_cube_optimized<R: RankHandle>(
    rc: &R,
    mesh: &Mesh3D<R::Comm>,
    bundles: &Mesh3DBundles<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.p);
    check_input(mesh, &grid, input);
    let rate = gemm_rate(rc, &grid);
    let n_dup = bundles.row.n_dup();
    let (p, i, j, k) = (mesh.p, mesh.i, mesh.j, mesh.k);
    let (li, lj) = grid.block_dims(i, j);
    let lk = grid.block_dims(k, k).0;

    // ---- Lines 1–8: pipelined grid-bcast → row-bcast of D blocks. ----
    let t_bcast = rc.now();
    let plan_a = ChunkPlan::new(grid.block_bytes(i, j), n_dup);
    let a_payload = input.d_block.as_ref().map(block_to_payload);
    let grd_reqs: Vec<Request<Payload>> = bundles
        .grd
        .iter()
        .map(|(c, comm)| {
            comm.ibcast(
                0,
                a_payload.as_ref().map(|pl| plan_a.slice(pl, c)),
                plan_a.len(c),
            )
        })
        .collect();

    // Row broadcast of D(k,j) from the rank with i == k, pipelined on the
    // grid-bcast completions (lines 4–7).
    let plan_b = ChunkPlan::new(grid.block_bytes(k, j), n_dup);
    let mut a_chunks: Vec<Option<Payload>> = vec![None; n_dup];
    let row_reqs: Vec<Request<Payload>> = (0..n_dup)
        .map(|c| {
            let data = if i == k {
                let chunk = bundles.grd.comm(c).wait_traced_chunk(
                    &grd_reqs[c],
                    "wait Ibcast grd",
                    c as u32,
                );
                a_chunks[c] = Some(chunk.clone());
                Some(chunk)
            } else {
                None
            };
            bundles.row.comm(c).ibcast(k, data, plan_b.len(c))
        })
        .collect();

    // Line 8: wait for everything outstanding; assemble A and Bᵀ.
    for c in 0..n_dup {
        if a_chunks[c].is_none() {
            a_chunks[c] = Some(bundles.grd.comm(c).wait_traced_chunk(
                &grd_reqs[c],
                "wait Ibcast grd",
                c as u32,
            ));
        }
    }
    let a_full = plan_a.concat(&a_chunks.into_iter().map(Option::unwrap).collect::<Vec<_>>());
    let a = payload_to_block(&a_full, li, lj);
    let phantom = a.is_phantom();
    let b_chunks: Vec<Payload> = row_reqs
        .iter()
        .enumerate()
        .map(|(c, r)| {
            bundles
                .row
                .comm(c)
                .wait_traced_chunk(r, "wait Ibcast row", c as u32)
        })
        .collect();
    let b = payload_to_block(&plan_b.concat(&b_chunks), grid.block_dims(k, j).0, lj).transpose();
    rc.phase_span(t_bcast, "symm3d bcast D".to_string());

    // Line 9: C := A·B.
    let mut c_blk = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c_blk, &a, &b, rate);

    // ---- Lines 10–17: pipelined col-ireduce → row-ibcast of D². ----
    let t_d2 = rc.now();
    // Reduce root j = i (D² lands on P(i,i,k)); bcast root i = j.
    let b2_payload = pipelined_reduce_bcast(
        &bundles.col,
        i,
        &bundles.row,
        j,
        &block_to_payload(&c_blk),
        grid.block_bytes(j, k),
    );
    let b2 = payload_to_block(&b2_payload, lj, lk);
    rc.phase_span(t_d2, "symm3d reduce-bcast D2".to_string());
    // P(i,i,k)'s own D²(i,k) is the payload it just pipelined (i == j).
    let d2_mine = (i == j).then(|| b2_payload.clone());

    // Line 18: C := A·B².
    let mut c2 = BlockBuf::zeros(li, lk, phantom);
    local_multiply(rc, &mut c2, &a, &b2, rate);

    // ---- Lines 19–27: col-ireduce of D³ overlapped with both hand-backs.
    let t_d3 = rc.now();
    let plan_c = ChunkPlan::new(grid.block_bytes(i, k), n_dup);
    let c2_payload = block_to_payload(&c2);
    let d3_reqs: Vec<Request<Option<Payload>>> = bundles
        .col
        .iter()
        .map(|(c, comm)| comm.ireduce(k, plan_c.slice(&c2_payload, c)))
        .collect();

    // Line 23: P(i,i,k) posts the chunked sends of D²(i,k) to P(i,k,0) on
    // the duplicated world communicators.
    let my = mesh.world.rank();
    let mut d2_send_reqs: Vec<Request<()>> = Vec::new();
    if let Some(d2) = &d2_mine {
        let dst = mesh3d_rank_of(i, k, 0, p);
        if dst != my {
            let plan = ChunkPlan::new(d2.len(), n_dup);
            for (c, comm) in bundles.world.iter() {
                d2_send_reqs.push(comm.isend(dst, TAG_D2, plan.slice(d2, c)));
            }
        }
    }
    // Receivers of D² (plane 0) post their chunked irecvs. D²(i,j) comes
    // from P(i,i,j); the only self case is rank (0,0,0).
    let d2_src = mesh3d_rank_of(i, i, j, p);
    let d2_self = k == 0 && d2_src == my;
    let mut d2_recv_reqs: Vec<Request<Payload>> = Vec::new();
    if k == 0 && !d2_self {
        for (_, comm) in bundles.world.iter() {
            d2_recv_reqs.push(comm.irecv(d2_src, TAG_D2));
        }
    }

    // Lines 24–25: as D³ chunks reduce on P(i,k,k), send them to P(i,k,0)
    // on the duplicated grid communicators.
    let mut d3_send_reqs: Vec<Request<()>> = Vec::new();
    let mut d3_local: Vec<Option<Payload>> = vec![None; n_dup];
    if j == k {
        for c in 0..n_dup {
            let chunk = bundles
                .col
                .comm(c)
                .wait_traced_chunk(&d3_reqs[c], "wait MPI_Ireduce D3", c as u32)
                .expect("P(i,k,k) is the D³ reduce root");
            if k == 0 {
                // Already home (P(i,0,0) owns block (i,0)).
                d3_local[c] = Some(chunk);
            } else {
                d3_send_reqs.push(bundles.grd.comm(c).isend(0, TAG_D3, chunk));
            }
        }
    }
    // Receivers of D³ on plane 0 (when the reduce root is another plane).
    let mut d3_recv_reqs: Vec<Request<Payload>> = Vec::new();
    if k == 0 && j != 0 {
        for (_, comm) in bundles.grd.iter() {
            d3_recv_reqs.push(comm.irecv(j, TAG_D3));
        }
    }

    // Line 27: wait for all outstanding operations.
    for (c, r) in d3_reqs.iter().enumerate() {
        if j != k {
            let _ = bundles.col.comm(c).wait(r);
        }
    }
    bundles.world.comm(0).wait_all(&d2_send_reqs);
    bundles.grd.comm(0).wait_all(&d3_send_reqs);

    // Assemble the hand-backs on plane 0.
    let d2_home: Option<Payload> = if k == 0 {
        if d2_self {
            d2_mine
        } else {
            let plan = ChunkPlan::new(grid.block_bytes(i, j), n_dup);
            let chunks: Vec<Payload> = d2_recv_reqs
                .iter()
                .enumerate()
                .map(|(c, r)| {
                    let got = bundles
                        .world
                        .comm(c)
                        .wait_traced_chunk(r, "wait Irecv D2", c as u32);
                    assert_eq!(got.len(), plan.len(c), "D² chunk size mismatch");
                    got
                })
                .collect();
            Some(plan.concat(&chunks))
        }
    } else {
        None
    };
    let d3_home: Option<Payload> = if k == 0 {
        if j == 0 {
            // j == k == 0: reduced locally above.
            let plan = ChunkPlan::new(grid.block_bytes(i, j), n_dup);
            let chunks: Vec<Payload> = d3_local.into_iter().map(Option::unwrap).collect();
            Some(plan.concat(&chunks))
        } else {
            let plan = ChunkPlan::new(grid.block_bytes(i, j), n_dup);
            let chunks: Vec<Payload> = d3_recv_reqs
                .iter()
                .enumerate()
                .map(|(c, r)| {
                    let got = bundles
                        .grd
                        .comm(c)
                        .wait_traced_chunk(r, "wait Irecv D3", c as u32);
                    assert_eq!(got.len(), plan.len(c), "D³ chunk size mismatch");
                    got
                })
                .collect();
            Some(plan.concat(&chunks))
        }
    } else {
        None
    };
    rc.phase_span(t_d3, "symm3d reduce+handback D3".to_string());

    finish(mesh, &grid, d2_home, d3_home)
}

/// Convert the homed payloads into output blocks on plane 0.
fn finish<C: Communicator>(
    mesh: &Mesh3D<C>,
    grid: &BlockGrid,
    d2_home: Option<Payload>,
    d3_home: Option<Payload>,
) -> SymmOutput {
    if mesh.k == 0 {
        let (li, lj) = grid.block_dims(mesh.i, mesh.j);
        let d2 = d2_home.expect("plane 0 must receive D²");
        let d3 = d3_home.expect("plane 0 must receive D³");
        SymmOutput {
            d2: Some(payload_to_block(&d2, li, lj)),
            d3: Some(payload_to_block(&d3, li, lj)),
        }
    } else {
        debug_assert!(d2_home.is_none() && d3_home.is_none());
        SymmOutput { d2: None, d3: None }
    }
}
