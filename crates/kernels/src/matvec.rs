//! Parallel matrix–vector multiplication: the paper's motivating example
//! (Algorithms 1 and 2, Figures 1–2).
//!
//! `y = A·x` with A distributed in p×p blocks over a p×p mesh and x in p
//! segments, segment `j` replicated down column `P(:, j)`. Algorithm 1
//! reduces partial products along rows to the diagonal and broadcasts down
//! columns, blocking. Algorithm 2 divides the vector into N_DUP parts and
//! pipelines the reduction chunks straight into broadcasts on duplicated
//! communicators.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{pipelined_reduce_bcast, Communicator, NDupComms, RankHandle};
use ovcomm_densemat::{BlockBuf, Partition1D};
use ovcomm_simmpi::Payload;

use crate::mesh::Mesh2D;

/// A distributed vector segment: real values or a phantom length (elements).
#[derive(Debug, Clone, PartialEq)]
pub enum VecBuf {
    /// Actual values.
    Real(Vec<f64>),
    /// Element count only.
    Phantom(usize),
}

impl VecBuf {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            VecBuf::Real(v) => v.len(),
            VecBuf::Phantom(n) => *n,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// To a message payload.
    pub fn to_payload(&self) -> Payload {
        match self {
            VecBuf::Real(v) => Payload::from_f64s(v),
            VecBuf::Phantom(n) => Payload::Phantom(n * 8),
        }
    }

    /// From a message payload.
    pub fn from_payload(p: &Payload) -> VecBuf {
        match p {
            Payload::Real(_) => VecBuf::Real(p.to_f64s()),
            Payload::Phantom(n) => VecBuf::Phantom(n / 8),
        }
    }
}

/// Input to one matvec: the local A block and the local x segment.
pub struct MatvecInput {
    /// Global dimension N.
    pub n: usize,
    /// Block A(i, j) for this rank's mesh position.
    pub a: BlockBuf,
    /// Segment x_j (length = column partition of j).
    pub x: VecBuf,
}

/// Local partial product `y_i^{(j)} = A(i,j) · x_j`, with modeled time.
fn local_matvec<R: RankHandle>(rc: &R, a: &BlockBuf, x: &VecBuf) -> VecBuf {
    let (rows, cols) = a.dims();
    assert_eq!(x.len(), cols, "x segment does not match A block");
    let flops = 2.0 * rows as f64 * cols as f64;
    // Matvec is memory-bound; charge it at a fraction of the GEMM rate.
    let rate = rc.profile().process_flops(rc.compute_ppn(), rows.max(1)) * 0.25;
    rc.compute_flops(flops, rate);
    match (a, x) {
        (BlockBuf::Real(m), VecBuf::Real(v)) => VecBuf::Real(m.matvec(v)),
        (BlockBuf::Phantom(..), VecBuf::Phantom(_)) => VecBuf::Phantom(rows),
        _ => panic!("cannot mix real and phantom operands"),
    }
}

/// **Algorithm 1**: blocking reduce along rows to the diagonal, blocking
/// broadcast down columns. Returns y_j (distributed as x).
pub fn matvec_blocking<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    input: &MatvecInput,
) -> VecBuf {
    let part = Partition1D::new(input.n, mesh.p);
    let (i, j) = (mesh.i, mesh.j);
    let y_part = local_matvec(rc, &input.a, &input.x);

    // Line 2: P(i,:) reduce y_i to P(i,i) with row_comm (root index i).
    let reduced = mesh.row.reduce(i, y_part.to_payload());

    // Line 3: P(i,i) broadcasts y_i to P(:,i) with col_comm. In my column
    // the root is P(j,j), i.e. col index j, broadcasting y_j.
    let data = (i == j).then(|| reduced.expect("diagonal holds the reduced segment"));
    let y = mesh.col.bcast(j, data, part.len(j) * 8);
    VecBuf::from_payload(&y)
}

/// **Algorithm 2**: the same computation with pipelined and overlapped
/// communications — N_DUP chunked `MPI_Ireduce`s whose completions feed
/// `MPI_Ibcast`s on duplicated communicators.
pub fn matvec_pipelined<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    row_ndup: &NDupComms<R::Comm>,
    col_ndup: &NDupComms<R::Comm>,
    input: &MatvecInput,
) -> VecBuf {
    let part = Partition1D::new(input.n, mesh.p);
    let (i, j) = (mesh.i, mesh.j);
    let y_part = local_matvec(rc, &input.a, &input.x);
    let y = pipelined_reduce_bcast(
        row_ndup,
        i,
        col_ndup,
        j,
        &y_part.to_payload(),
        part.len(j) * 8,
    );
    VecBuf::from_payload(&y)
}
