//! SUMMA — the Scalable Universal Matrix Multiplication Algorithm (van de
//! Geijn & Watts), the most widely used 2-D algorithm and the paper's
//! related-work baseline (§II). Provided both as a standalone distributed
//! multiply and as a 2-D SymmSquareCube variant, with the panel broadcasts
//! optionally self-overlapped using the nonblocking-overlap technique.
//!
//! For an N×N matrix in p×p blocks on a p×p mesh, SUMMA performs p
//! outer-product steps: at step l, column-l owners broadcast their A block
//! along their row, row-l owners broadcast their B block down their
//! column, and every rank accumulates `C(i,j) += A(i,l)·B(l,j)`. The 2-D
//! communication volume is `O(N²/√P)` per rank versus `O(N²/P^(2/3))` for
//! the 3-D algorithm — the bench harness's mesh-ablation binary shows this
//! crossover.

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{overlapped_bcast, Communicator, NDupComms, RankHandle};
use ovcomm_densemat::{gemm_flops, BlockBuf, BlockGrid};
use ovcomm_simmpi::Comm;

use crate::convert::{block_to_payload, payload_to_block};
use crate::mesh::Mesh2D;
use crate::symm3d::{SymmInput, SymmOutput};

/// N_DUP bundles for SUMMA's row and column panel broadcasts.
pub struct SummaBundles<C: Communicator = Comm> {
    /// Duplicates of the row communicator.
    pub row: NDupComms<C>,
    /// Duplicates of the column communicator.
    pub col: NDupComms<C>,
}

impl<C: Communicator> SummaBundles<C> {
    /// Build from a mesh with the given N_DUP.
    pub fn new(mesh: &Mesh2D<C>, n_dup: usize) -> SummaBundles<C> {
        SummaBundles {
            row: NDupComms::new(&mesh.row, n_dup),
            col: NDupComms::new(&mesh.col, n_dup),
        }
    }
}

fn local_multiply<R: RankHandle>(rc: &R, c: &mut BlockBuf, a: &BlockBuf, b: &BlockBuf, rate: f64) {
    c.gemm_acc(a, b);
    let (m, kk) = a.dims();
    let (_, n2) = b.dims();
    rc.compute_flops(gemm_flops(m, kk, n2), rate);
}

/// Distributed `C = A·B` with SUMMA. `a` and `b` are this rank's blocks
/// (the (i,j) blocks of the operands); returns this rank's block of C.
/// Panel broadcasts are overlapped with themselves via the bundles.
pub fn summa_multiply<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    grid: &BlockGrid,
    bundles: &SummaBundles<R::Comm>,
    a: &BlockBuf,
    b: &BlockBuf,
    rate: f64,
) -> BlockBuf {
    let p = mesh.p;
    let (i, j) = (mesh.i, mesh.j);
    let (li, lj) = grid.block_dims(i, j);
    assert_eq!(a.dims(), (li, lj), "A block shape");
    assert_eq!(b.dims(), (li, lj), "B block shape");
    let phantom = a.is_phantom();
    let mut c = BlockBuf::zeros(li, lj, phantom);

    for l in 0..p {
        let t_step = rc.now();
        // A(i,l) travels along row i from the column-l owner.
        let a_payload = (j == l).then(|| block_to_payload(a));
        let a_panel = overlapped_bcast(&bundles.row, l, a_payload.as_ref(), grid.block_bytes(i, l));
        let (ra, ca) = grid.block_dims(i, l);
        let a_blk = payload_to_block(&a_panel, ra, ca);

        // B(l,j) travels down column j from the row-l owner.
        let b_payload = (i == l).then(|| block_to_payload(b));
        let b_panel = overlapped_bcast(&bundles.col, l, b_payload.as_ref(), grid.block_bytes(l, j));
        let (rb, cb) = grid.block_dims(l, j);
        let b_blk = payload_to_block(&b_panel, rb, cb);

        local_multiply(rc, &mut c, &a_blk, &b_blk, rate);
        rc.phase_span(t_step, format!("summa step {l}"));
    }
    c
}

/// Distributed `C = A·B` with *pipelined* SUMMA: step l+1's panel
/// broadcasts are posted before step l's local multiplication, so panel
/// transfers overlap both the compute and each other (double buffering —
/// the classic SUMMA pipelining, expressed with nonblocking collectives).
/// Communication-wise each panel uses a single ibcast per communicator of
/// the bundle round-robin, so successive panels travel on different
/// contexts and genuinely overlap.
pub fn summa_multiply_pipelined<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    grid: &BlockGrid,
    bundles: &SummaBundles<R::Comm>,
    a: &BlockBuf,
    b: &BlockBuf,
    rate: f64,
) -> BlockBuf {
    let p = mesh.p;
    let n_dup = bundles.row.n_dup();
    let (i, j) = (mesh.i, mesh.j);
    let (li, lj) = grid.block_dims(i, j);
    assert_eq!(a.dims(), (li, lj), "A block shape");
    assert_eq!(b.dims(), (li, lj), "B block shape");
    let phantom = a.is_phantom();
    let mut c = BlockBuf::zeros(li, lj, phantom);

    // Post the panel broadcasts of step l on communicator l % n_dup.
    let post = |l: usize| {
        let a_payload = (j == l).then(|| block_to_payload(a));
        let ra = bundles
            .row
            .comm(l % n_dup)
            .ibcast(l, a_payload, grid.block_bytes(i, l));
        let b_payload = (i == l).then(|| block_to_payload(b));
        let rb = bundles
            .col
            .comm(l % n_dup)
            .ibcast(l, b_payload, grid.block_bytes(l, j));
        (ra, rb)
    };

    // Prime the pipeline with up to n_dup outstanding panel pairs.
    let depth = n_dup.min(p);
    let mut inflight: std::collections::VecDeque<_> = (0..depth).map(post).collect();
    for l in 0..p {
        let t_step = rc.now();
        let (ra, rb) = inflight.pop_front().expect("pipeline primed");
        let a_panel = bundles.row.comm(l % n_dup).wait(&ra);
        let (rra, cca) = grid.block_dims(i, l);
        let a_blk = payload_to_block(&a_panel, rra, cca);
        let b_panel = bundles.col.comm(l % n_dup).wait(&rb);
        let (rrb, ccb) = grid.block_dims(l, j);
        let b_blk = payload_to_block(&b_panel, rrb, ccb);
        // Keep the pipeline full while computing.
        if l + depth < p {
            inflight.push_back(post(l + depth));
        }
        local_multiply(rc, &mut c, &a_blk, &b_blk, rate);
        rc.phase_span(t_step, format!("summa step {l}"));
    }
    c
}

/// SymmSquareCube over SUMMA: two multiplications on a p×p mesh (p² ranks —
/// the 2-D point of the mesh-dimensionality ablation).
pub fn symm_square_cube_summa<R: RankHandle>(
    rc: &R,
    mesh: &Mesh2D<R::Comm>,
    bundles: &SummaBundles<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.p);
    let d = input
        .d_block
        .as_ref()
        .expect("every rank of the 2-D mesh holds a D block");
    assert_eq!(d.dims(), grid.block_dims(mesh.i, mesh.j));
    let block_dim = grid.n().div_ceil(grid.p()).max(1);
    let rate = rc.profile().process_flops(rc.compute_ppn(), block_dim);

    let t_d2 = rc.now();
    let d2 = summa_multiply(rc, mesh, &grid, bundles, d, d, rate);
    rc.phase_span(t_d2, "summa D2".to_string());
    let t_d3 = rc.now();
    let d3 = summa_multiply(rc, mesh, &grid, bundles, d, &d2, rate);
    rc.phase_span(t_d3, "summa D3".to_string());
    SymmOutput {
        d2: Some(d2),
        d3: Some(d3),
    }
}
