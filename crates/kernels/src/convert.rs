//! Conversions between [`ovcomm_densemat::BlockBuf`] blocks and
//! [`ovcomm_simmpi::Payload`] messages (zero-copy for real data via
//! `bytes::Bytes`).

use ovcomm_densemat::{BlockBuf, BlockBytes};
use ovcomm_simmpi::Payload;

/// Serialize a block for sending.
pub fn block_to_payload(b: &BlockBuf) -> Payload {
    match b.to_bytes() {
        BlockBytes::Real(bytes) => Payload::Real(bytes),
        BlockBytes::Phantom(n) => Payload::Phantom(n),
    }
}

/// Deserialize a received block with known dimensions.
pub fn payload_to_block(p: &Payload, rows: usize, cols: usize) -> BlockBuf {
    let bytes = match p {
        Payload::Real(b) => BlockBytes::Real(b.clone()),
        Payload::Phantom(n) => BlockBytes::Phantom(*n),
    };
    BlockBuf::from_bytes(&bytes, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovcomm_densemat::Matrix;

    #[test]
    fn real_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = BlockBuf::Real(m.clone());
        let p = block_to_payload(&b);
        assert_eq!(p.len(), 96);
        let back = payload_to_block(&p, 3, 4);
        assert_eq!(back.unwrap_real().max_abs_diff(&m), 0.0);
    }

    #[test]
    fn phantom_roundtrip() {
        let b = BlockBuf::Phantom(5, 2);
        let p = block_to_payload(&b);
        assert_eq!(p, Payload::Phantom(80));
        let back = payload_to_block(&p, 5, 2);
        assert!(back.is_phantom());
        assert_eq!(back.dims(), (5, 2));
    }
}
