//! SymmSquareCube over 2.5D matrix multiplication (Algorithm 6), built on
//! Cannon's algorithm as in Solomonik & Demmel, with the replication
//! factor `c` trading memory for communication.
//!
//! The process grid is q×q×c (P = q²·c ranks, `c | q`); matrix D lives in
//! q×q blocks on plane k = 0. Each plane k computes the `q/c` Cannon steps
//! starting at offset `k·q/c`; partial C blocks are combined across planes
//! with an allreduce (for D², which the next phase reuses as B) and a
//! reduce to plane 0 (for D³).
//!
//! Per §V-E, the collectives of steps 1, 3 and 5 are overlapped *with
//! themselves* using the nonblocking-overlap technique (there is no
//! opportunity to pipeline across different operations as in Algorithm 5).

// Kernel algorithms are invariant-dense: `expect`/`unwrap` here assert
// root-only payload delivery and mesh/split bookkeeping guaranteed by the
// surrounding collective protocol, not recoverable error paths.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use ovcomm_core::{
    overlapped_allreduce, overlapped_bcast, overlapped_reduce, Communicator, NDupComms, RankHandle,
};
use ovcomm_densemat::{gemm_flops, BlockBuf, BlockGrid};
use ovcomm_simmpi::{Comm, Payload};

use crate::convert::{block_to_payload, payload_to_block};
use crate::symm3d::{SymmInput, SymmOutput};

/// A q×q×c process grid with row/column/grid-fibre communicators.
pub struct Mesh25D<C: Communicator = Comm> {
    /// Square grid dimension q.
    pub q: usize,
    /// Replication factor c (must divide q).
    pub c: usize,
    /// My coordinates (i, j, k); `rank = k·q² + i·q + j`.
    pub i: usize,
    /// Column coordinate.
    pub j: usize,
    /// Plane coordinate.
    pub k: usize,
    /// Over `P(i, :, k)` (A travels along rows) — my index is `j`.
    pub row: C,
    /// Over `P(:, j, k)` (B travels along columns) — my index is `i`.
    pub col: C,
    /// Over `P(i, j, :)` — my index is `k`.
    pub grd: C,
    /// All ranks.
    pub world: C,
}

impl<C: Communicator> Mesh25D<C> {
    /// Build from the world communicator; requires `nranks == q²·c` and
    /// `c | q`.
    pub fn new<R: RankHandle<Comm = C>>(rc: &R, q: usize, c: usize) -> Mesh25D<C> {
        Mesh25D::new_on(rc.world(), q, c)
    }

    /// Build over an arbitrary base communicator (e.g. the active subset of
    /// a per-kernel-PPN stage).
    pub fn new_on(world: C, q: usize, c: usize) -> Mesh25D<C> {
        assert_eq!(world.size(), q * q * c, "need exactly q^2*c ranks");
        assert!(
            c >= 1 && q.is_multiple_of(c),
            "replication factor must divide q"
        );
        let rank = world.rank();
        let k = rank / (q * q);
        let r = rank % (q * q);
        let (i, j) = (r / q, r % q);
        let row = world
            .split((i + k * q) as i64, j as u64)
            .expect("row split");
        let col = world
            .split((j + k * q) as i64, i as u64)
            .expect("col split");
        let grd = world
            .split((i + j * q) as i64, k as u64)
            .expect("grd split");
        debug_assert_eq!(row.rank(), j);
        debug_assert_eq!(col.rank(), i);
        debug_assert_eq!(grd.rank(), k);
        Mesh25D {
            q,
            c,
            i,
            j,
            k,
            row,
            col,
            grd,
            world,
        }
    }
}

/// Circular shift within `comm`: send my payload `dist` positions forward
/// (negative = backward), receive from the opposite neighbour. Returns the
/// incoming payload. A zero-distance (mod p) shift is the identity.
fn roll<C: Communicator>(comm: &C, dist: isize, tag: u32, payload: Payload) -> Payload {
    let p = comm.size() as isize;
    let me = comm.rank() as isize;
    let dst = (me + dist).rem_euclid(p) as usize;
    let src = (me - dist).rem_euclid(p) as usize;
    if dst == comm.rank() {
        return payload;
    }
    comm.sendrecv(dst, src, tag, payload)
}

fn local_multiply<R: RankHandle>(rc: &R, c: &mut BlockBuf, a: &BlockBuf, b: &BlockBuf, rate: f64) {
    c.gemm_acc(a, b);
    let (m, kk) = a.dims();
    let (_, n2) = b.dims();
    rc.compute_flops(gemm_flops(m, kk, n2), rate);
}

/// One Cannon phase on this plane: `C += Σ_l A(i,l)·B(l,j)` over this
/// plane's band of `q/c` outer-product steps. `a0`/`b0` are the unshifted
/// blocks A(i,j)/B(i,j); alignment and step shifts are circular
/// sendrecv-style exchanges in the row/column communicators.
#[allow(clippy::too_many_arguments)]
fn cannon_phase<R: RankHandle>(
    rc: &R,
    mesh: &Mesh25D<R::Comm>,
    grid: &BlockGrid,
    a0: &BlockBuf,
    b0: &BlockBuf,
    c_out: &mut BlockBuf,
    rate: f64,
    tag_base: u32,
) {
    let (q, i, j, k) = (mesh.q, mesh.i, mesh.j, mesh.k);
    let steps = q / mesh.c;
    let off = k * steps;

    // Alignment: I need A(i, l0) and B(l0, j) with l0 = (i + j + off) mod q.
    // A(i,j) travels to (i, j - i - off); B(i,j) to (i - j - off, j).
    let l0 = (i + j + off) % q;
    let a_shift = -((i + off) as isize);
    let b_shift = -((j + off) as isize);
    let mut la = l0; // logical column of my current A block / row of B.
    let mut a_cur = {
        let incoming = roll(&mesh.row, a_shift, tag_base, block_to_payload(a0));
        payload_to_block(
            &incoming,
            grid.block_dims(i, l0).0,
            grid.block_dims(i, l0).1,
        )
    };
    let mut b_cur = {
        let incoming = roll(&mesh.col, b_shift, tag_base + 1, block_to_payload(b0));
        payload_to_block(
            &incoming,
            grid.block_dims(l0, j).0,
            grid.block_dims(l0, j).1,
        )
    };

    for s in 0..steps {
        local_multiply(rc, c_out, &a_cur, &b_cur, rate);
        if s + 1 < steps {
            // Shift A one left along the row, B one up along the column.
            let ln = (la + 1) % q;
            let a_in = roll(
                &mesh.row,
                -1,
                tag_base + 2 + 2 * s as u32,
                block_to_payload(&a_cur),
            );
            a_cur = payload_to_block(&a_in, grid.block_dims(i, ln).0, grid.block_dims(i, ln).1);
            let b_in = roll(
                &mesh.col,
                -1,
                tag_base + 3 + 2 * s as u32,
                block_to_payload(&b_cur),
            );
            b_cur = payload_to_block(&b_in, grid.block_dims(ln, j).0, grid.block_dims(ln, j).1);
            la = ln;
        }
    }
}

/// **Algorithm 6**: SymmSquareCube over 2.5D multiplication. `grd_ndup`
/// carries the N_DUP duplicated grid-fibre communicators used to overlap
/// the three collectives with themselves (pass `N_DUP = 1` for the
/// non-overlapped variant).
pub fn symm_square_cube_25d<R: RankHandle>(
    rc: &R,
    mesh: &Mesh25D<R::Comm>,
    grd_ndup: &NDupComms<R::Comm>,
    input: &SymmInput,
) -> SymmOutput {
    let grid = BlockGrid::new(input.n, mesh.q);
    let (i, j, k) = (mesh.i, mesh.j, mesh.k);
    if k == 0 {
        let d = input
            .d_block
            .as_ref()
            .expect("plane 0 must supply D blocks");
        assert_eq!(d.dims(), grid.block_dims(i, j), "D block has wrong dims");
    } else {
        assert!(input.d_block.is_none());
    }
    let block_dim = grid.n().div_ceil(grid.p()).max(1);
    let rate = rc.profile().process_flops(rc.compute_ppn(), block_dim);
    let (li, lj) = grid.block_dims(i, j);

    // Step 1: broadcast D(i,j) as A and B along the grid fibre (overlapped
    // with itself).
    let t1 = rc.now();
    let d_payload = input.d_block.as_ref().map(block_to_payload);
    let d_recv = overlapped_bcast(grd_ndup, 0, d_payload.as_ref(), grid.block_bytes(i, j));
    let d_block = payload_to_block(&d_recv, li, lj);
    let phantom = d_block.is_phantom();
    rc.phase_span(t1, "25d bcast D".to_string());

    // Step 2: first Cannon phase: C = (band of) D·D.
    let t2 = rc.now();
    let mut c_blk = BlockBuf::zeros(li, lj, phantom);
    cannon_phase(rc, mesh, &grid, &d_block, &d_block, &mut c_blk, rate, 200);
    rc.phase_span(t2, "25d cannon D*D".to_string());

    // Step 3: allreduce across planes → D²(i,j) everywhere (overlapped).
    let t3 = rc.now();
    let d2_payload = overlapped_allreduce(grd_ndup, &block_to_payload(&c_blk));
    let d2_block = payload_to_block(&d2_payload, li, lj);
    rc.phase_span(t3, "25d allreduce D2".to_string());

    // Step 4: second Cannon phase: C = (band of) D·D².
    let t4 = rc.now();
    let mut c3 = BlockBuf::zeros(li, lj, phantom);
    cannon_phase(rc, mesh, &grid, &d_block, &d2_block, &mut c3, rate, 600);
    rc.phase_span(t4, "25d cannon D*D2".to_string());

    // Step 5: reduce across planes to plane 0 → D³(i,j) (overlapped).
    let t5 = rc.now();
    let d3_payload = overlapped_reduce(grd_ndup, 0, &block_to_payload(&c3));
    rc.phase_span(t5, "25d reduce D3".to_string());

    if k == 0 {
        SymmOutput {
            d2: Some(d2_block),
            d3: Some(payload_to_block(
                &d3_payload.expect("plane 0 is the reduce root"),
                li,
                lj,
            )),
        }
    } else {
        SymmOutput { d2: None, d3: None }
    }
}
