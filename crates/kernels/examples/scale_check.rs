//! Quick Table-I-style check: Algorithms 3/4/5 TFlops at paper scale on
//! the calibrated profile (full sweep lives in ovcomm-bench).
//!
//! Run with: `cargo run -p ovcomm-kernels --release --example scale_check`
use ovcomm_densemat::{BlockBuf, BlockGrid};
use ovcomm_kernels::{
    symm_square_cube_baseline, symm_square_cube_flops, symm_square_cube_optimized,
    symm_square_cube_original, Mesh3D, SymmInput,
};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn go(n: usize, which: u8, n_dup: usize) -> f64 {
    let out = run(
        SimConfig::natural(64, 1, MachineProfile::stampede2_skylake()),
        move |rc: RankCtx| {
            let mesh = Mesh3D::new(&rc, 4);
            let grid = BlockGrid::new(n, 4);
            let d_block = (mesh.k == 0).then(|| {
                let (r, c) = grid.block_dims(mesh.i, mesh.j);
                BlockBuf::Phantom(r, c)
            });
            let bundles = mesh.dup_bundles(n_dup);
            rc.world().barrier();
            let t0 = rc.now();
            let input = SymmInput { n, d_block };
            match which {
                0 => {
                    let _ = symm_square_cube_original(&rc, &mesh, &input);
                }
                1 => {
                    let _ = symm_square_cube_baseline(&rc, &mesh, &input);
                }
                _ => {
                    let _ = symm_square_cube_optimized(&rc, &mesh, &bundles, &input);
                }
            }
            rc.world().barrier();
            (rc.now() - t0).as_secs_f64()
        },
    )
    .unwrap();
    out.results.iter().cloned().fold(0.0f64, f64::max)
}

fn main() {
    for (name, n) in [("1hsg_45", 5330usize), ("1hsg_60", 6895), ("1hsg_70", 7645)] {
        let t3 = go(n, 0, 1);
        let t4 = go(n, 1, 1);
        let t5 = go(n, 2, 4);
        let f = symm_square_cube_flops(n) / 1e12;
        println!("{name}: t3 {t3:.5}s t4 {t4:.5}s t5 {t5:.5}s | Alg3 {:.2} TF, Alg4 {:.2} TF, Alg5 {:.2} TF, speedup5/4 {:.3}",
                 f/t3, f/t4, f/t5, t4/t5);
    }
}
