//! Property tests over the distributed kernels: for arbitrary matrix
//! sizes, mesh dimensions and N_DUP, the kernels agree with the dense
//! reference and with each other.

use proptest::prelude::*;

use ovcomm_densemat::{gemm, BlockBuf, BlockGrid, Matrix};
use ovcomm_kernels::{symm_square_cube_baseline, symm_square_cube_optimized, Mesh3D, SymmInput};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn seeded_symmetric(n: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let (a, b) = (i.min(j), i.max(j));
        (((a * 131 + b * 31) as u64 + seed * 977) % 200) as f64 / 23.0 - 4.0
            + if i == j { 1.0 } else { 0.0 }
    })
}

fn run_kernel(n: usize, p: usize, n_dup: Option<usize>, seed: u64) -> (Matrix, Matrix) {
    let out = run(
        SimConfig::natural(p * p * p, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh3D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let d_block = (mesh.k == 0)
                .then(|| BlockBuf::Real(grid.extract(&seeded_symmetric(n, seed), mesh.i, mesh.j)));
            let input = SymmInput { n, d_block };
            let result = match n_dup {
                None => symm_square_cube_baseline(&rc, &mesh, &input),
                Some(d) => {
                    let bundles = mesh.dup_bundles(d);
                    symm_square_cube_optimized(&rc, &mesh, &bundles, &input)
                }
            };
            result.d2.map(|d2| {
                (
                    mesh.i,
                    mesh.j,
                    d2.unwrap_real().clone().into_vec(),
                    result.d3.unwrap().unwrap_real().clone().into_vec(),
                )
            })
        },
    )
    .unwrap();
    let grid = BlockGrid::new(n, p);
    let mut d2b = vec![Matrix::zeros(0, 0); p * p];
    let mut d3b = vec![Matrix::zeros(0, 0); p * p];
    for (i, j, d2, d3) in out.results.into_iter().flatten() {
        let (r, c) = grid.block_dims(i, j);
        d2b[i * p + j] = Matrix::from_vec(r, c, d2);
        d3b[i * p + j] = Matrix::from_vec(r, c, d3);
    }
    (grid.assemble(&d2b), grid.assemble(&d3b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn symm_square_cube_matches_dense_reference(
        n in 4usize..28,
        p in 2usize..4,
        n_dup in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(n >= p);
        let d = seeded_symmetric(n, seed);
        let d2_ref = gemm(&d, &d);
        let d3_ref = gemm(&d2_ref, &d);
        let (d2, d3) = run_kernel(n, p, Some(n_dup), seed);
        prop_assert!(d2.max_abs_diff(&d2_ref) < 1e-8, "D² mismatch");
        prop_assert!(d3.max_abs_diff(&d3_ref) < 1e-7, "D³ mismatch");
    }

    #[test]
    fn baseline_and_optimized_agree_bitwise_shape(
        n in 4usize..24,
        seed in 0u64..1000,
    ) {
        // Summation orders differ between the algorithms, so compare to a
        // tight tolerance rather than bit equality.
        let (b2, b3) = run_kernel(n, 2, None, seed);
        let (o2, o3) = run_kernel(n, 2, Some(3), seed);
        prop_assert!(b2.max_abs_diff(&o2) < 1e-9);
        prop_assert!(b3.max_abs_diff(&o3) < 1e-8);
    }
}
