//! Every kernel, run at small scale in both execution modes
//! (event-driven fibers vs. thread-per-rank), must produce bit-identical
//! simulations: same per-rank outputs, same virtual end times, same
//! traffic counters. The two modes share the serialized engine and its
//! `(time, id)` release order, so a divergence is a scheduler bug, not a
//! numerics issue.

use std::sync::Arc;

use ovcomm_core::NDupComms;
use ovcomm_densemat::{BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_kernels::{
    block_cg, matvec_blocking, matvec_pipelined, md_init, md_run, summa_multiply,
    summa_multiply_pipelined, symm_square_cube_25d, symm_square_cube_baseline,
    symm_square_cube_optimized, symm_square_cube_original, BlockCgConfig, CgComms, MatvecInput,
    MdConfig, Mesh25D, Mesh2D, Mesh3D, SummaBundles, SymmInput, VecBuf,
};
use ovcomm_simmpi::{run, ExecMode, RankCtx, SimConfig, SimOutput};
use ovcomm_simnet::MachineProfile;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j) as f64;
        1.0 / (1.0 + d) + if i == j { 0.5 } else { 0.0 } + ((i + j) % 3) as f64 * 0.1
    })
}

/// Fold a slice of f64s into a single bit pattern (wrapping, order-fixed).
fn bits(v: &[f64]) -> u64 {
    v.iter().fold(0u64, |a, x| a.wrapping_add(x.to_bits()))
}

/// Run `body` (which returns a bit pattern) in both modes and assert the
/// entire observable simulation matches.
fn assert_modes_identical<F>(nranks: usize, ppn: usize, body: F)
where
    F: Fn(&RankCtx) -> u64 + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let run_mode = |exec: ExecMode| -> SimOutput<(u64, ovcomm_simnet::SimTime)> {
        let b = body.clone();
        run(
            SimConfig::natural(nranks, ppn, MachineProfile::test_profile()).with_exec(exec),
            move |rc: RankCtx| {
                let out = b(&rc);
                (out, rc.now())
            },
        )
        .unwrap_or_else(|e| panic!("{exec:?} run failed: {e}"))
    };
    let ev = run_mode(ExecMode::EventDriven);
    let th = run_mode(ExecMode::Threads);
    assert_eq!(ev.results, th.results, "per-rank results diverge");
    assert_eq!(ev.end_times, th.end_times, "virtual end times diverge");
    assert_eq!(ev.makespan, th.makespan, "makespan diverges");
    assert_eq!(ev.messages, th.messages, "message counts diverge");
    assert_eq!(ev.inter_node_bytes, th.inter_node_bytes);
    assert_eq!(ev.intra_node_bytes, th.intra_node_bytes);
}

#[test]
fn matvec_blocking_and_pipelined_match_across_modes() {
    for n_dup in [None, Some(2)] {
        assert_modes_identical(4, 2, move |rc| {
            let p = 2;
            let n = 17;
            let mesh = Mesh2D::new(rc, p);
            let part = Partition1D::new(n, p);
            let grid = BlockGrid::new(n, p);
            let a = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
            let x_full: Vec<f64> = (0..n).map(|t| (t as f64 * 0.3).sin()).collect();
            let (s, l) = part.range(mesh.j);
            let input = MatvecInput {
                n,
                a,
                x: VecBuf::Real(x_full[s..s + l].to_vec()),
            };
            let y = match n_dup {
                None => matvec_blocking(rc, &mesh, &input),
                Some(d) => {
                    let row = NDupComms::new(&mesh.row, d);
                    let col = NDupComms::new(&mesh.col, d);
                    matvec_pipelined(rc, &mesh, &row, &col, &input)
                }
            };
            match y {
                VecBuf::Real(v) => bits(&v),
                VecBuf::Phantom(_) => unreachable!(),
            }
        });
    }
}

#[test]
fn symm3d_all_algorithms_match_across_modes() {
    for algo in 0..3usize {
        assert_modes_identical(8, 4, move |rc| {
            let (n, p) = (18, 2);
            let mesh = Mesh3D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let d_block = (mesh.k == 0)
                .then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
            let input = SymmInput { n, d_block };
            let result = match algo {
                0 => symm_square_cube_original(rc, &mesh, &input),
                1 => symm_square_cube_baseline(rc, &mesh, &input),
                _ => {
                    let bundles = mesh.dup_bundles(2);
                    symm_square_cube_optimized(rc, &mesh, &bundles, &input)
                }
            };
            result.d2.map_or(0, |d2| {
                bits(d2.unwrap_real().data())
                    .wrapping_add(bits(result.d3.unwrap().unwrap_real().data()))
            })
        });
    }
}

#[test]
fn symm25d_matches_across_modes() {
    assert_modes_identical(8, 4, |rc| {
        let (n, q, c) = (18, 2, 2);
        let mesh = Mesh25D::new(rc, q, c);
        let grid = BlockGrid::new(n, q);
        let d_block =
            (mesh.k == 0).then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
        let grd_ndup = NDupComms::new(&mesh.grd, 2);
        let input = SymmInput { n, d_block };
        let result = symm_square_cube_25d(rc, &mesh, &grd_ndup, &input);
        result.d2.map_or(0, |d2| {
            bits(d2.unwrap_real().data())
                .wrapping_add(bits(result.d3.unwrap().unwrap_real().data()))
        })
    });
}

#[test]
fn summa_plain_and_pipelined_match_across_modes() {
    for pipelined in [false, true] {
        assert_modes_identical(4, 2, move |rc| {
            let (n, p) = (16, 2);
            let mesh = Mesh2D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let bundles = SummaBundles::new(&mesh, 2);
            let a = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
            let b = BlockBuf::Real(grid.extract(&test_matrix(n).transpose(), mesh.i, mesh.j));
            let rate = rc.profile().process_flops(1, n / p);
            let c = if pipelined {
                summa_multiply_pipelined(rc, &mesh, &grid, &bundles, &a, &b, rate)
            } else {
                summa_multiply(rc, &mesh, &grid, &bundles, &a, &b, rate)
            };
            bits(c.unwrap_real().data())
        });
    }
}

#[test]
fn block_cg_matches_across_modes() {
    for overlap in [false, true] {
        assert_modes_identical(4, 2, move |rc| {
            let (n, p, s) = (20, 2, 2);
            let mesh = Mesh2D::new(rc, p);
            let grid = BlockGrid::new(n, p);
            let part = Partition1D::new(n, p);
            // SPD by diagonal dominance — deterministic, no RNG.
            let a_full = Matrix::from_fn(n, n, |i, j| {
                let base = 1.0 / (1.0 + i.abs_diff(j) as f64);
                if i == j {
                    base + n as f64
                } else {
                    base
                }
            });
            let a = BlockBuf::Real(grid.extract(&a_full, mesh.i, mesh.j));
            let b_full = Matrix::from_fn(n, s, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
            let (st, l) = part.range(mesh.j);
            let b_seg = BlockBuf::Real(b_full.submatrix(st, 0, l, s));
            let comms = CgComms::new(&mesh, 2);
            let cfg = BlockCgConfig {
                n,
                s,
                tol: 1e-10,
                max_iter: 50,
                overlap,
            };
            let res = block_cg(rc, &mesh, &comms, &cfg, &a, &b_seg);
            bits(res.x_segment.unwrap_real().data()).wrapping_add(res.iterations as u64)
        });
    }
}

#[test]
fn particles_md_matches_across_modes() {
    for overlap in [None, Some(2)] {
        assert_modes_identical(4, 2, move |rc| {
            let mesh = Mesh2D::new(rc, 2);
            let cfg = MdConfig {
                n_particles: 24,
                steps: 4,
                dt: 0.01,
                overlap,
                neighbors: None,
            };
            let state = md_init(rc, &mesh, &cfg, false);
            let fin = md_run(rc, &mesh, &cfg, state);
            match fin.x {
                VecBuf::Real(v) => bits(&v),
                VecBuf::Phantom(_) => 0,
            }
        });
    }
}
