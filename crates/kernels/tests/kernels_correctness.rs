//! End-to-end correctness of every distributed kernel against dense
//! references, plus the real/phantom timing-equivalence invariant and the
//! headline performance ordering at paper scale.

use ovcomm_core::NDupComms;
use ovcomm_densemat::{gemm, BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_kernels::{
    matvec_blocking, matvec_pipelined, symm_square_cube_25d, symm_square_cube_baseline,
    symm_square_cube_optimized, symm_square_cube_original, MatvecInput, Mesh25D, Mesh2D, Mesh3D,
    SymmInput, VecBuf,
};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

/// Deterministic symmetric test matrix (no RNG needed).
fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j) as f64;
        1.0 / (1.0 + d) + if i == j { 0.5 } else { 0.0 } + ((i + j) % 3) as f64 * 0.1
    })
}

#[derive(Clone, Copy, Debug)]
enum Algo {
    Original,
    Baseline,
    Optimized(usize),
}

/// Run a 3-D SymmSquareCube and assemble the global D², D³.
fn run_symm3d(n: usize, p: usize, algo: Algo) -> (Matrix, Matrix) {
    let out = run(
        SimConfig::natural(p * p * p, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh3D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let d_block = (mesh.k == 0).then(|| {
                let full = test_matrix(n);
                BlockBuf::Real(grid.extract(&full, mesh.i, mesh.j))
            });
            let input = SymmInput { n, d_block };
            let result = match algo {
                Algo::Original => symm_square_cube_original(&rc, &mesh, &input),
                Algo::Baseline => symm_square_cube_baseline(&rc, &mesh, &input),
                Algo::Optimized(n_dup) => {
                    let bundles = mesh.dup_bundles(n_dup);
                    symm_square_cube_optimized(&rc, &mesh, &bundles, &input)
                }
            };
            result.d2.map(|d2| {
                (
                    mesh.i,
                    mesh.j,
                    d2.unwrap_real().clone().into_vec(),
                    result.d3.unwrap().unwrap_real().clone().into_vec(),
                )
            })
        },
    )
    .unwrap_or_else(|e| panic!("{algo:?} n={n} p={p}: {e}"));

    let grid = BlockGrid::new(n, p);
    let mut d2_blocks = vec![Matrix::zeros(0, 0); p * p];
    let mut d3_blocks = vec![Matrix::zeros(0, 0); p * p];
    for res in out.results.into_iter().flatten() {
        let (i, j, d2, d3) = res;
        let (r, c) = grid.block_dims(i, j);
        d2_blocks[i * p + j] = Matrix::from_vec(r, c, d2);
        d3_blocks[i * p + j] = Matrix::from_vec(r, c, d3);
    }
    (grid.assemble(&d2_blocks), grid.assemble(&d3_blocks))
}

fn check_symm3d(n: usize, p: usize, algo: Algo) {
    let d = test_matrix(n);
    let d2_ref = gemm(&d, &d);
    let d3_ref = gemm(&d2_ref, &d);
    let (d2, d3) = run_symm3d(n, p, algo);
    assert!(
        d2.max_abs_diff(&d2_ref) < 1e-8,
        "{algo:?} D² wrong (n={n}, p={p}): err {}",
        d2.max_abs_diff(&d2_ref)
    );
    assert!(
        d3.max_abs_diff(&d3_ref) < 1e-7,
        "{algo:?} D³ wrong (n={n}, p={p}): err {}",
        d3.max_abs_diff(&d3_ref)
    );
}

#[test]
fn original_algorithm_correct_p2() {
    check_symm3d(18, 2, Algo::Original);
}

#[test]
fn original_algorithm_correct_p3_unbalanced() {
    // n = 20, p = 3: unbalanced blocks (7, 7, 6).
    check_symm3d(20, 3, Algo::Original);
}

#[test]
fn baseline_algorithm_correct_p2_and_p3() {
    check_symm3d(18, 2, Algo::Baseline);
    check_symm3d(20, 3, Algo::Baseline);
}

#[test]
fn optimized_algorithm_correct_all_ndup() {
    for n_dup in [1, 2, 3, 4] {
        check_symm3d(18, 2, Algo::Optimized(n_dup));
    }
    check_symm3d(20, 3, Algo::Optimized(2));
    check_symm3d(20, 3, Algo::Optimized(4));
}

#[test]
fn all_algorithms_agree_at_p4() {
    // 64 ranks, small blocks — exercises every code path on a real mesh.
    check_symm3d(25, 4, Algo::Original);
    check_symm3d(25, 4, Algo::Baseline);
    check_symm3d(25, 4, Algo::Optimized(2));
}

#[test]
fn phantom_and_real_kernel_take_identical_virtual_time() {
    let go = |phantom: bool| {
        run(
            SimConfig::natural(8, 2, MachineProfile::test_profile()),
            move |rc: RankCtx| {
                let mesh = Mesh3D::new(&rc, 2);
                let grid = BlockGrid::new(16, 2);
                let d_block = (mesh.k == 0).then(|| {
                    if phantom {
                        let (r, c) = grid.block_dims(mesh.i, mesh.j);
                        BlockBuf::Phantom(r, c)
                    } else {
                        BlockBuf::Real(grid.extract(&test_matrix(16), mesh.i, mesh.j))
                    }
                });
                let bundles = mesh.dup_bundles(3);
                let input = SymmInput { n: 16, d_block };
                let _ = symm_square_cube_optimized(&rc, &mesh, &bundles, &input);
                rc.now().as_nanos()
            },
        )
        .unwrap()
    };
    let real = go(false);
    let phantom = go(true);
    assert_eq!(real.makespan, phantom.makespan);
    assert_eq!(real.end_times, phantom.end_times);
    assert_eq!(real.inter_node_bytes, phantom.inter_node_bytes);
}

#[test]
fn optimized_beats_baseline_at_paper_scale() {
    // 1hsg_70 geometry: N = 7645, 4×4×4 mesh, 64 nodes, PPN = 1, phantom
    // data, calibrated profile. Paper (Table I): Alg 5 ≈ 1.17× Alg 4.
    let n = 7645;
    let go = |n_dup: usize| {
        run(
            SimConfig::natural(64, 1, MachineProfile::stampede2_skylake()),
            move |rc: RankCtx| {
                let mesh = Mesh3D::new(&rc, 4);
                let grid = BlockGrid::new(n, 4);
                let d_block = (mesh.k == 0).then(|| {
                    let (r, c) = grid.block_dims(mesh.i, mesh.j);
                    BlockBuf::Phantom(r, c)
                });
                let bundles = mesh.dup_bundles(n_dup);
                let input = SymmInput { n, d_block };
                let t0 = rc.now();
                let _ = symm_square_cube_optimized(&rc, &mesh, &bundles, &input);
                rc.world().barrier();
                (rc.now() - t0).as_secs_f64()
            },
        )
        .unwrap()
    };
    let baseline = go(1);
    let optimized = go(4);
    let t_base = baseline.makespan.as_secs_f64();
    let t_opt = optimized.makespan.as_secs_f64();
    assert!(
        t_opt < t_base,
        "optimized ({t_opt:.4}s) must beat baseline ({t_base:.4}s)"
    );
    let speedup = t_base / t_opt;
    assert!(
        speedup > 1.05 && speedup < 2.0,
        "speedup {speedup:.3} out of the plausible band"
    );
}

// ---------------------------------------------------------------------
// Matrix–vector (Algorithms 1–2).
// ---------------------------------------------------------------------

fn run_matvec(n: usize, p: usize, n_dup: Option<usize>) -> Vec<f64> {
    let out = run(
        SimConfig::natural(p * p, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let part = Partition1D::new(n, p);
            let full = test_matrix(n);
            let grid = BlockGrid::new(n, p);
            let a = BlockBuf::Real(grid.extract(&full, mesh.i, mesh.j));
            let x_full: Vec<f64> = (0..n).map(|t| (t as f64 * 0.3).sin()).collect();
            let (s, l) = part.range(mesh.j);
            let x = VecBuf::Real(x_full[s..s + l].to_vec());
            let input = MatvecInput { n, a, x };
            let y = match n_dup {
                None => matvec_blocking(&rc, &mesh, &input),
                Some(d) => {
                    let row_ndup = NDupComms::new(&mesh.row, d);
                    let col_ndup = NDupComms::new(&mesh.col, d);
                    matvec_pipelined(&rc, &mesh, &row_ndup, &col_ndup, &input)
                }
            };
            match y {
                VecBuf::Real(v) => (mesh.i, mesh.j, v),
                VecBuf::Phantom(_) => unreachable!(),
            }
        },
    )
    .unwrap();

    // y is distributed as x: P(:, j) all hold y_j; collect from row i = 0.
    let part = Partition1D::new(n, p);
    let mut y = vec![0.0; n];
    for (i, j, v) in out.results {
        if i == 0 {
            let (s, l) = part.range(j);
            assert_eq!(v.len(), l);
            y[s..s + l].copy_from_slice(&v);
        }
    }
    y
}

fn check_matvec(n: usize, p: usize, n_dup: Option<usize>) {
    let full = test_matrix(n);
    let x: Vec<f64> = (0..n).map(|t| (t as f64 * 0.3).sin()).collect();
    let want = full.matvec(&x);
    let got = run_matvec(n, p, n_dup);
    for t in 0..n {
        assert!(
            (got[t] - want[t]).abs() < 1e-9,
            "matvec n={n} p={p} n_dup={n_dup:?} elem {t}: {} vs {}",
            got[t],
            want[t]
        );
    }
}

#[test]
fn matvec_blocking_correct() {
    check_matvec(17, 2, None);
    check_matvec(23, 3, None);
    check_matvec(16, 4, None);
}

#[test]
fn matvec_pipelined_correct_all_ndup() {
    for d in [1, 2, 4] {
        check_matvec(17, 2, Some(d));
        check_matvec(23, 3, Some(d));
    }
}

#[test]
fn matvec_replicas_agree_down_columns() {
    // Every rank in a column must hold the same y_j.
    let n = 12;
    let p = 2;
    let out = run(
        SimConfig::natural(4, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let part = Partition1D::new(n, p);
            let full = test_matrix(n);
            let grid = BlockGrid::new(n, p);
            let a = BlockBuf::Real(grid.extract(&full, mesh.i, mesh.j));
            let x_full: Vec<f64> = (0..n).map(|t| t as f64).collect();
            let (s, l) = part.range(mesh.j);
            let input = MatvecInput {
                n,
                a,
                x: VecBuf::Real(x_full[s..s + l].to_vec()),
            };
            match matvec_blocking(&rc, &mesh, &input) {
                VecBuf::Real(v) => (mesh.j, v),
                _ => unreachable!(),
            }
        },
    )
    .unwrap();
    for j in 0..p {
        let copies: Vec<&Vec<f64>> = out
            .results
            .iter()
            .filter(|(jj, _)| *jj == j)
            .map(|(_, v)| v)
            .collect();
        assert_eq!(copies.len(), p);
        for c in &copies[1..] {
            assert_eq!(*c, copies[0], "column {j} replicas disagree");
        }
    }
}

// ---------------------------------------------------------------------
// 2.5D SymmSquareCube (Algorithm 6).
// ---------------------------------------------------------------------

fn run_symm25d(n: usize, q: usize, c: usize, n_dup: usize) -> (Matrix, Matrix) {
    let out = run(
        SimConfig::natural(q * q * c, 4, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh25D::new(&rc, q, c);
            let grid = BlockGrid::new(n, q);
            let d_block = (mesh.k == 0)
                .then(|| BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j)));
            let grd_ndup = NDupComms::new(&mesh.grd, n_dup);
            let input = SymmInput { n, d_block };
            let result = symm_square_cube_25d(&rc, &mesh, &grd_ndup, &input);
            result.d2.map(|d2| {
                (
                    mesh.i,
                    mesh.j,
                    d2.unwrap_real().clone().into_vec(),
                    result.d3.unwrap().unwrap_real().clone().into_vec(),
                )
            })
        },
    )
    .unwrap_or_else(|e| panic!("2.5D n={n} q={q} c={c}: {e}"));

    let grid = BlockGrid::new(n, q);
    let mut d2_blocks = vec![Matrix::zeros(0, 0); q * q];
    let mut d3_blocks = vec![Matrix::zeros(0, 0); q * q];
    for res in out.results.into_iter().flatten() {
        let (i, j, d2, d3) = res;
        let (r, cc) = grid.block_dims(i, j);
        d2_blocks[i * q + j] = Matrix::from_vec(r, cc, d2);
        d3_blocks[i * q + j] = Matrix::from_vec(r, cc, d3);
    }
    (grid.assemble(&d2_blocks), grid.assemble(&d3_blocks))
}

fn check_symm25d(n: usize, q: usize, c: usize, n_dup: usize) {
    let d = test_matrix(n);
    let d2_ref = gemm(&d, &d);
    let d3_ref = gemm(&d2_ref, &d);
    let (d2, d3) = run_symm25d(n, q, c, n_dup);
    assert!(
        d2.max_abs_diff(&d2_ref) < 1e-8,
        "2.5D D² wrong (n={n}, q={q}, c={c}, n_dup={n_dup})"
    );
    assert!(
        d3.max_abs_diff(&d3_ref) < 1e-7,
        "2.5D D³ wrong (n={n}, q={q}, c={c}, n_dup={n_dup})"
    );
}

#[test]
fn symm25d_pure_cannon_c1() {
    // c = 1 degenerates to plain 2-D Cannon (q steps, one plane).
    check_symm25d(18, 2, 1, 1);
    check_symm25d(21, 3, 1, 1);
}

#[test]
fn symm25d_replicated_planes() {
    check_symm25d(18, 2, 2, 1); // 8 ranks, fully 3-D-like
    check_symm25d(21, 3, 3, 1); // 27 ranks
    check_symm25d(22, 4, 2, 1); // 32 ranks, 2 planes of 2 steps
}

#[test]
fn symm25d_with_nonblocking_overlap() {
    check_symm25d(18, 2, 2, 2);
    check_symm25d(22, 4, 2, 4);
}

#[test]
fn symm25d_unbalanced_blocks() {
    // n = 23 over q = 4: blocks of 6,6,6,5.
    check_symm25d(23, 4, 2, 2);
}
