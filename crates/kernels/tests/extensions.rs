//! Tests for the extension kernels: SUMMA (the 2-D related-work baseline)
//! and block CG with overlapped reductions (the paper's future work).

use ovcomm_densemat::{gemm, symmetric_with_spectrum, BlockBuf, BlockGrid, Matrix, Partition1D};
use ovcomm_kernels::{
    block_cg, symm_square_cube_cosma, symm_square_cube_summa, BlockCgConfig, CgComms, Mesh2D,
    SummaBundles, SymmInput,
};
use ovcomm_simmpi::{run, RankCtx, SimConfig};
use ovcomm_simnet::MachineProfile;

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        1.0 / (1.0 + i.abs_diff(j) as f64) + if i == j { 0.5 } else { 0.0 }
    })
}

fn run_summa(n: usize, p: usize, n_dup: usize) -> (Matrix, Matrix) {
    let out = run(
        SimConfig::natural(p * p, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let bundles = SummaBundles::new(&mesh, n_dup);
            let d_block = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
            let input = SymmInput {
                n,
                d_block: Some(d_block),
            };
            let result = symm_square_cube_summa(&rc, &mesh, &bundles, &input);
            (
                mesh.i,
                mesh.j,
                result.d2.unwrap().unwrap_real().clone().into_vec(),
                result.d3.unwrap().unwrap_real().clone().into_vec(),
            )
        },
    )
    .unwrap_or_else(|e| panic!("SUMMA n={n} p={p}: {e}"));

    let grid = BlockGrid::new(n, p);
    let mut d2_blocks = vec![Matrix::zeros(0, 0); p * p];
    let mut d3_blocks = vec![Matrix::zeros(0, 0); p * p];
    for (i, j, d2, d3) in out.results {
        let (r, c) = grid.block_dims(i, j);
        d2_blocks[i * p + j] = Matrix::from_vec(r, c, d2);
        d3_blocks[i * p + j] = Matrix::from_vec(r, c, d3);
    }
    (grid.assemble(&d2_blocks), grid.assemble(&d3_blocks))
}

#[test]
fn summa_square_cube_correct() {
    for (n, p, n_dup) in [(18, 2, 1), (20, 3, 1), (20, 3, 2), (25, 4, 4)] {
        let d = test_matrix(n);
        let d2_ref = gemm(&d, &d);
        let d3_ref = gemm(&d2_ref, &d);
        let (d2, d3) = run_summa(n, p, n_dup);
        assert!(
            d2.max_abs_diff(&d2_ref) < 1e-9,
            "SUMMA D² wrong (n={n}, p={p}, n_dup={n_dup})"
        );
        assert!(
            d3.max_abs_diff(&d3_ref) < 1e-8,
            "SUMMA D³ wrong (n={n}, p={p}, n_dup={n_dup})"
        );
    }
}

#[test]
fn summa_phantom_and_real_timing_agree() {
    let go = |phantom: bool| {
        run(
            SimConfig::natural(9, 3, MachineProfile::test_profile()),
            move |rc: RankCtx| {
                let mesh = Mesh2D::new(&rc, 3);
                let grid = BlockGrid::new(21, 3);
                let bundles = SummaBundles::new(&mesh, 2);
                let d_block = if phantom {
                    let (r, c) = grid.block_dims(mesh.i, mesh.j);
                    BlockBuf::Phantom(r, c)
                } else {
                    BlockBuf::Real(grid.extract(&test_matrix(21), mesh.i, mesh.j))
                };
                let input = SymmInput {
                    n: 21,
                    d_block: Some(d_block),
                };
                let _ = symm_square_cube_summa(&rc, &mesh, &bundles, &input);
                rc.now().as_nanos()
            },
        )
        .unwrap()
    };
    assert_eq!(go(false).makespan, go(true).makespan);
}

// ---------------------------------------------------------------------
// COSMA-style one-sided multiply.
// ---------------------------------------------------------------------

fn run_cosma(n: usize, p: usize) -> (Matrix, Matrix) {
    let out = run(
        SimConfig::natural(p * p, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let d_block = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
            let input = SymmInput {
                n,
                d_block: Some(d_block),
            };
            let result = symm_square_cube_cosma(&rc, &mesh, &input);
            (
                mesh.i,
                mesh.j,
                result.d2.unwrap().unwrap_real().clone().into_vec(),
                result.d3.unwrap().unwrap_real().clone().into_vec(),
            )
        },
    )
    .unwrap_or_else(|e| panic!("cosma n={n} p={p}: {e}"));

    let grid = BlockGrid::new(n, p);
    let mut d2_blocks = vec![Matrix::zeros(0, 0); p * p];
    let mut d3_blocks = vec![Matrix::zeros(0, 0); p * p];
    for (i, j, d2, d3) in out.results {
        let (r, c) = grid.block_dims(i, j);
        d2_blocks[i * p + j] = Matrix::from_vec(r, c, d2);
        d3_blocks[i * p + j] = Matrix::from_vec(r, c, d3);
    }
    (grid.assemble(&d2_blocks), grid.assemble(&d3_blocks))
}

#[test]
fn cosma_square_cube_correct() {
    for (n, p) in [(18, 2), (20, 3), (25, 4)] {
        let d = test_matrix(n);
        let d2_ref = gemm(&d, &d);
        let d3_ref = gemm(&d2_ref, &d);
        let (d2, d3) = run_cosma(n, p);
        assert!(
            d2.max_abs_diff(&d2_ref) < 1e-9,
            "cosma D² wrong (n={n}, p={p})"
        );
        assert!(
            d3.max_abs_diff(&d3_ref) < 1e-8,
            "cosma D³ wrong (n={n}, p={p})"
        );
    }
}

#[test]
fn cosma_and_summa_blocks_are_bit_identical() {
    // Same step order, same GEMM accumulation — only the transport differs
    // (one-sided gets vs broadcast trees), so the numbers must agree bit
    // for bit, not just within tolerance.
    let (c2, c3) = run_cosma(20, 3);
    let (s2, s3) = run_summa(20, 3, 2);
    assert_eq!(c2.max_abs_diff(&s2), 0.0, "D² differs from SUMMA");
    assert_eq!(c3.max_abs_diff(&s3), 0.0, "D³ differs from SUMMA");
}

#[test]
fn cosma_phantom_and_real_timing_agree() {
    let go = |phantom: bool| {
        run(
            SimConfig::natural(9, 3, MachineProfile::test_profile()),
            move |rc: RankCtx| {
                let mesh = Mesh2D::new(&rc, 3);
                let grid = BlockGrid::new(21, 3);
                let d_block = if phantom {
                    let (r, c) = grid.block_dims(mesh.i, mesh.j);
                    BlockBuf::Phantom(r, c)
                } else {
                    BlockBuf::Real(grid.extract(&test_matrix(21), mesh.i, mesh.j))
                };
                let input = SymmInput {
                    n: 21,
                    d_block: Some(d_block),
                };
                let _ = symm_square_cube_cosma(&rc, &mesh, &input);
                rc.now().as_nanos()
            },
        )
        .unwrap()
    };
    assert_eq!(go(false).makespan, go(true).makespan);
}

// ---------------------------------------------------------------------
// Block CG.
// ---------------------------------------------------------------------

fn spd_matrix(n: usize, seed: u64) -> Matrix {
    // Positive eigenvalues in [1, 11]: well-conditioned SPD.
    let eigs: Vec<f64> = (0..n).map(|i| 1.0 + 10.0 * i as f64 / n as f64).collect();
    symmetric_with_spectrum(&eigs, seed)
}

fn run_block_cg(n: usize, p: usize, s: usize, overlap: bool) -> (Matrix, usize, bool, f64) {
    let seed = 77;
    let out = run(
        SimConfig::natural(p * p, 2, MachineProfile::test_profile()),
        move |rc: RankCtx| {
            let mesh = Mesh2D::new(&rc, p);
            let grid = BlockGrid::new(n, p);
            let part = Partition1D::new(n, p);
            let a_full = spd_matrix(n, seed);
            let a = BlockBuf::Real(grid.extract(&a_full, mesh.i, mesh.j));
            // RHS: deterministic n×s.
            let b_full = Matrix::from_fn(n, s, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
            let (st, l) = part.range(mesh.j);
            let b_seg = BlockBuf::Real(b_full.submatrix(st, 0, l, s));
            let comms = CgComms::new(&mesh, 2);
            let cfg = BlockCgConfig {
                n,
                s,
                tol: 1e-10,
                max_iter: 200,
                overlap,
            };
            let res = block_cg(&rc, &mesh, &comms, &cfg, &a, &b_seg);
            (
                mesh.i,
                mesh.j,
                res.iterations,
                res.converged,
                res.rel_residual,
                res.x_segment.unwrap_real().clone().into_vec(),
            )
        },
    )
    .unwrap_or_else(|e| panic!("block CG n={n} p={p} s={s}: {e}"));

    // Assemble X from row-0 ranks.
    let part = Partition1D::new(n, p);
    let mut x = Matrix::zeros(n, s);
    let mut iters = 0;
    let mut conv = false;
    let mut rel = 0.0;
    for (i, j, it, c, r, seg) in out.results {
        if i == 0 {
            let (st, l) = part.range(j);
            let m = Matrix::from_vec(l, s, seg);
            x.set_submatrix(st, 0, &m);
            iters = it;
            conv = c;
            rel = r;
        }
    }
    (x, iters, conv, rel)
}

#[test]
fn block_cg_solves_spd_system() {
    let (n, p, s) = (40, 2, 3);
    let (x, iters, converged, rel) = run_block_cg(n, p, s, false);
    assert!(
        converged,
        "CG did not converge in {iters} iterations (rel {rel})"
    );
    let a = spd_matrix(n, 77);
    let b = Matrix::from_fn(n, s, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
    let ax = gemm(&a, &x);
    let mut resid = ax.clone();
    resid.axpy(-1.0, &b);
    let rel_true = resid.frob_norm() / b.frob_norm();
    assert!(rel_true < 1e-8, "true residual {rel_true}");
}

#[test]
fn overlapped_and_blocking_cg_agree() {
    let (x1, it1, c1, _) = run_block_cg(30, 3, 2, false);
    let (x2, it2, c2, _) = run_block_cg(30, 3, 2, true);
    assert!(c1 && c2);
    assert_eq!(it1, it2, "same iteration count");
    assert!(
        x1.max_abs_diff(&x2) < 1e-12,
        "overlap must not change the numerics"
    );
}

#[test]
fn overlapped_gram_reductions_save_time_at_scale() {
    // Phantom run on the calibrated profile with many nodes: the two
    // concurrent Gram chains hide one latency chain per iteration.
    let go = |overlap: bool| {
        run(
            SimConfig::natural(64, 1, MachineProfile::stampede2_skylake()),
            move |rc: RankCtx| {
                let mesh = Mesh2D::new(&rc, 8);
                let grid = BlockGrid::new(4096, 8);
                let part = Partition1D::new(4096, 8);
                let (r, c) = grid.block_dims(mesh.i, mesh.j);
                let a = BlockBuf::Phantom(r, c);
                let b = BlockBuf::Phantom(part.len(mesh.j), 8);
                let comms = CgComms::new(&mesh, 2);
                let cfg = BlockCgConfig {
                    n: 4096,
                    s: 8,
                    tol: 1e-9,
                    max_iter: 10,
                    overlap,
                };
                let _ = block_cg(&rc, &mesh, &comms, &cfg, &a, &b);
                rc.now().as_nanos()
            },
        )
        .unwrap()
        .makespan
    };
    let blocking = go(false);
    let overlapped = go(true);
    assert!(
        overlapped < blocking,
        "overlapped grams ({overlapped:?}) must beat sequential ({blocking:?})"
    );
}

// ---------------------------------------------------------------------
// Force-decomposition MD (the paper's particle-simulation future work).
// ---------------------------------------------------------------------

mod md {
    use super::*;
    use ovcomm_kernels::{md_init, md_run, MdConfig};

    /// Serial reference of the same toy dynamics.
    fn reference_md(n: usize, steps: usize, dt: f64) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n).map(|t| t as f64 * 1.05).collect();
        let mut v = vec![0.0; n];
        let force = |x: &Vec<f64>| -> Vec<f64> {
            let mut f = vec![0.0; n];
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let d = x[a] - x[b];
                    let r = d.abs().max(1e-3);
                    f[a] += -(r - 1.0) / r * d;
                }
            }
            f
        };
        for _ in 0..steps {
            let f = force(&x);
            for t in 0..n {
                v[t] += dt * f[t];
                x[t] += dt * v[t];
            }
        }
        x
    }

    fn run_md(n: usize, p: usize, steps: usize, overlap: Option<usize>) -> Vec<f64> {
        let dt = 0.01;
        let out = run(
            SimConfig::natural(p * p, 2, MachineProfile::test_profile()),
            move |rc: RankCtx| {
                let mesh = Mesh2D::new(&rc, p);
                let cfg = MdConfig {
                    n_particles: n,
                    steps,
                    dt,
                    overlap,
                    neighbors: None,
                };
                let state = md_init(&rc, &mesh, &cfg, false);
                let fin = md_run(&rc, &mesh, &cfg, state);
                match fin.x {
                    ovcomm_kernels::VecBuf::Real(v) => (mesh.i, mesh.j, v),
                    _ => unreachable!(),
                }
            },
        )
        .unwrap();
        let part = Partition1D::new(n, p);
        let mut x = vec![0.0; n];
        for (i, j, seg) in out.results {
            if i == 0 {
                let (s, l) = part.range(j);
                x[s..s + l].copy_from_slice(&seg[..l]);
            }
        }
        x
    }

    #[test]
    fn md_matches_serial_reference() {
        let n = 14;
        let want = reference_md(n, 6, 0.01);
        for p in [2usize, 3] {
            let got = run_md(n, p, 6, None);
            for t in 0..n {
                assert!(
                    (got[t] - want[t]).abs() < 1e-9,
                    "p={p} particle {t}: {} vs {}",
                    got[t],
                    want[t]
                );
            }
        }
    }

    #[test]
    fn overlapped_md_matches_blocking() {
        let n = 12;
        let a = run_md(n, 2, 5, None);
        let b = run_md(n, 2, 5, Some(3));
        for t in 0..n {
            assert!((a[t] - b[t]).abs() < 1e-12, "particle {t}");
        }
    }

    #[test]
    fn overlapped_md_saves_time_at_scale() {
        let go = |overlap: Option<usize>| {
            run(
                SimConfig::natural(64, 1, MachineProfile::stampede2_skylake()),
                move |rc: RankCtx| {
                    let mesh = Mesh2D::new(&rc, 8);
                    let cfg = MdConfig {
                        n_particles: 1 << 22, // 4M particles → 4 MB segments
                        steps: 3,
                        dt: 0.01,
                        overlap,
                        neighbors: Some(64),
                    };
                    let state = md_init(&rc, &mesh, &cfg, true);
                    let _ = md_run(&rc, &mesh, &cfg, state);
                    rc.now().as_nanos()
                },
            )
            .unwrap()
            .makespan
        };
        let blocking = go(None);
        let overlapped = go(Some(4));
        assert!(
            overlapped < blocking,
            "overlapped MD ({overlapped:?}) must beat blocking ({blocking:?})"
        );
    }
}

// ---------------------------------------------------------------------
// Pipelined SUMMA (panel prefetch with nonblocking collectives).
// ---------------------------------------------------------------------

mod summa_pipelined {
    use super::*;
    use ovcomm_kernels::{summa_multiply, summa_multiply_pipelined};

    fn multiply_both(n: usize, p: usize, n_dup: usize) -> (Matrix, Matrix, u64, u64) {
        let go = |pipelined: bool| {
            run(
                SimConfig::natural(p * p, 1, MachineProfile::stampede2_skylake()),
                move |rc: RankCtx| {
                    let mesh = Mesh2D::new(&rc, p);
                    let grid = BlockGrid::new(n, p);
                    let bundles = SummaBundles::new(&mesh, n_dup);
                    let a = BlockBuf::Real(grid.extract(&test_matrix(n), mesh.i, mesh.j));
                    let b =
                        BlockBuf::Real(grid.extract(&test_matrix(n).transpose(), mesh.i, mesh.j));
                    let rate = rc.profile().process_flops(1, n / p);
                    rc.world().barrier();
                    let c = if pipelined {
                        summa_multiply_pipelined(&rc, &mesh, &grid, &bundles, &a, &b, rate)
                    } else {
                        summa_multiply(&rc, &mesh, &grid, &bundles, &a, &b, rate)
                    };
                    rc.world().barrier();
                    (mesh.i, mesh.j, c.unwrap_real().clone().into_vec())
                },
            )
            .unwrap()
        };
        let plain = go(false);
        let piped = go(true);
        let grid = BlockGrid::new(n, p);
        let assemble = |results: Vec<(usize, usize, Vec<f64>)>| {
            let mut blocks = vec![Matrix::zeros(0, 0); p * p];
            for (i, j, v) in results {
                let (r, c) = grid.block_dims(i, j);
                blocks[i * p + j] = Matrix::from_vec(r, c, v);
            }
            grid.assemble(&blocks)
        };
        let t_plain = plain.makespan.as_nanos();
        let t_piped = piped.makespan.as_nanos();
        (
            assemble(plain.results),
            assemble(piped.results),
            t_plain,
            t_piped,
        )
    }

    #[test]
    fn pipelined_summa_is_correct_and_not_slower() {
        let n = 36;
        let p = 3;
        let (c_plain, c_piped, t_plain, t_piped) = multiply_both(n, p, 2);
        let a = test_matrix(n);
        let b = test_matrix(n).transpose();
        let want = gemm(&a, &b);
        assert!(c_plain.max_abs_diff(&want) < 1e-8);
        assert!(c_piped.max_abs_diff(&want) < 1e-8);
        assert!(
            t_piped <= t_plain,
            "pipelined SUMMA ({t_piped}ns) must not lose to plain ({t_plain}ns)"
        );
    }
}
