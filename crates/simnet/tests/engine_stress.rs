//! Engine stress tests: many actors, interleaved timers and flows,
//! determinism of the event order under host-scheduling noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use ovcomm_simnet::{Engine, EventKey, ParkCell, SimTime};

/// Spawn `n` actors whose bodies run on threads; the engine loop runs on
/// this thread. Returns per-actor final wake times.
fn run_actors<F>(n: usize, body: F) -> Vec<u64>
where
    F: Fn(usize, &Engine, &Arc<ParkCell>) -> u64 + Send + Sync + 'static,
{
    let engine = Arc::new(Engine::new());
    let body = Arc::new(body);
    let cells: Vec<Arc<ParkCell>> = (0..n).map(|_| Arc::new(ParkCell::new())).collect();
    for (i, cell) in cells.iter().enumerate() {
        engine.register_actor(i as u32, cell.clone());
    }
    let results = Arc::new(Mutex::new(vec![0u64; n]));
    let mut handles = Vec::new();
    for (i, cell) in cells.into_iter().enumerate() {
        let engine2 = engine.clone();
        let body2 = body.clone();
        let results2 = results.clone();
        handles.push(thread::spawn(move || {
            engine2.await_release(&cell);
            let out = body2(i, &engine2, &cell);
            results2.lock()[i] = out;
            engine2.actor_finished(i as u32);
        }));
    }
    engine.run_loop();
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(results).unwrap().into_inner()
}

/// A virtual sleep implemented directly on the engine primitives.
fn vsleep(engine: &Engine, cell: &Arc<ParkCell>, id: usize, seq: &AtomicU64, at: u64) -> u64 {
    let key = EventKey {
        time: SimTime(at),
        class: 1,
        origin: id as u32,
        seq: seq.fetch_add(1, Ordering::Relaxed),
    };
    let cell2 = cell.clone();
    engine.schedule(
        key,
        Box::new(move |e| {
            e.wake(&cell2, SimTime(at));
        }),
    );
    engine.park(cell).as_nanos()
}

#[test]
fn hundred_actors_with_interleaved_timers_are_deterministic() {
    let go = || {
        run_actors(100, |i, engine, cell| {
            let seq = AtomicU64::new(0);
            let mut t = 0u64;
            // Deterministic but irregular per-actor schedule.
            for round in 0..20 {
                let delay = 100 + ((i * 37 + round * 13) % 50) as u64 * 10;
                t = vsleep(engine, cell, i, &seq, t + delay);
            }
            t
        })
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "wake times must be identical across runs");
    assert_eq!(a.len(), 100);
    for (i, &t) in a.iter().enumerate() {
        assert!(t >= 20 * 100, "actor {i} finished too early: {t}");
    }
}

#[test]
fn flows_and_timers_interleave_correctly() {
    // One actor drives timers while flows complete around it; the flow
    // completion times must reflect bandwidth sharing with precise timing.
    let engine = Arc::new(Engine::new());
    let nic = engine.add_resource(1e9);
    let completions = Arc::new(Mutex::new(Vec::<u64>::new()));
    let cell = Arc::new(ParkCell::new());
    engine.register_actor(0, cell.clone());
    let engine2 = engine.clone();
    let completions2 = completions.clone();
    let t = thread::spawn(move || {
        engine2.await_release(&cell);
        let seq = AtomicU64::new(0);
        // Start flow A (2 MB) at t=0 via an event.
        let c2 = completions2.clone();
        engine2.schedule(
            EventKey {
                time: SimTime(0),
                class: 0,
                origin: 0,
                seq: seq.fetch_add(1, Ordering::Relaxed),
            },
            Box::new(move |e| {
                let c3 = c2.clone();
                e.start_flow(
                    vec![nic],
                    1e9,
                    2_000_000.0,
                    Box::new(move |e2| {
                        c3.lock().push(e2.now().as_nanos());
                    }),
                );
            }),
        );
        // Start flow B (1 MB) at t = 1 ms: A has 1 MB left; they share.
        let c2 = completions2.clone();
        engine2.schedule(
            EventKey {
                time: SimTime(1_000_000),
                class: 0,
                origin: 0,
                seq: seq.fetch_add(1, Ordering::Relaxed),
            },
            Box::new(move |e| {
                let c3 = c2.clone();
                e.start_flow(
                    vec![nic],
                    1e9,
                    1_000_000.0,
                    Box::new(move |e2| {
                        c3.lock().push(e2.now().as_nanos());
                    }),
                );
            }),
        );
        // Sleep long enough for both flows to finish.
        let wake = 10_000_000u64;
        let cellw = cell.clone();
        engine2.schedule(
            EventKey {
                time: SimTime(wake),
                class: 2,
                origin: 0,
                seq: seq.fetch_add(1, Ordering::Relaxed),
            },
            Box::new(move |e| e.wake(&cellw, SimTime(wake))),
        );
        engine2.park(&cell);
        engine2.actor_finished(0);
    });
    engine.run_loop();
    t.join().unwrap();
    let times = completions.lock().clone();
    assert_eq!(times.len(), 2);
    // From t=1ms both flows share 1 GB/s: each has 1 MB left → both finish
    // at t = 3 ms (work conservation: 2 MB remaining over 1 GB/s).
    for &tt in &times {
        assert!(
            (tt as i64 - 3_000_000).abs() < 100,
            "completion at {tt}ns, expected ~3ms"
        );
    }
}

#[test]
fn trace_spans_accumulate_across_actors() {
    let engine = Arc::new(Engine::new());
    engine.enable_trace();
    let cell = Arc::new(ParkCell::new());
    engine.register_actor(0, cell.clone());
    let engine2 = engine.clone();
    let t = thread::spawn(move || {
        engine2.await_release(&cell);
        for i in 0..5 {
            engine2.record_span(ovcomm_simnet::TraceSpan {
                actor: i,
                kind: ovcomm_simnet::SpanKind::Compute,
                label: format!("span {i}"),
                chunk: None,
                start: SimTime(i as u64 * 100),
                end: SimTime(i as u64 * 100 + 50),
            });
        }
        engine2.actor_finished(0);
    });
    engine.run_loop();
    t.join().unwrap();
    let trace = engine.take_trace().expect("trace enabled");
    assert_eq!(trace.spans().len(), 5);
    assert_eq!(trace.for_actor(3).count(), 1);
}
