//! Property tests for the max–min fair flow allocator: capacity limits,
//! per-flow caps, work conservation and fairness hold for arbitrary
//! topologies and flow sets.

use proptest::prelude::*;

use ovcomm_simnet::{FlowNet, FlowSpec, ResourceId};

#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    flows: Vec<(Vec<usize>, f64, f64)>, // (resource indices, cap, bytes)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let caps = prop::collection::vec(1.0e6..1.0e10f64, 1..6);
    caps.prop_flat_map(|capacities| {
        let nres = capacities.len();
        let flow = (
            prop::collection::vec(0..nres, 1..=nres.min(3)),
            1.0e5..1.0e10f64,
            0.0..1.0e9f64,
        );
        let flows = prop::collection::vec(flow, 1..12);
        (Just(capacities), flows).prop_map(|(capacities, flows)| Scenario { capacities, flows })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn max_min_allocation_invariants(s in scenario()) {
        let mut net = FlowNet::new();
        let res: Vec<ResourceId> = s.capacities.iter().map(|&c| net.add_resource(c)).collect();
        let mut ids = Vec::new();
        for (rs, cap, bytes) in &s.flows {
            let resources: Vec<ResourceId> = rs.iter().map(|&i| res[i]).collect();
            ids.push(net.add(FlowSpec { resources, cap: *cap, bytes: *bytes }));
        }

        // 1. Every flow gets a strictly positive rate no greater than its cap.
        for (id, (_, cap, _)) in ids.iter().zip(&s.flows) {
            let r = net.rate(*id);
            prop_assert!(r > 0.0, "flow starved");
            prop_assert!(r <= cap * (1.0 + 1e-9), "rate {r} exceeds cap {cap}");
        }

        // 2. No resource is over-allocated.
        for (ri, &capacity) in s.capacities.iter().enumerate() {
            let used: f64 = ids
                .iter()
                .zip(&s.flows)
                .filter(|(_, (rs, _, _))| rs.contains(&ri))
                .map(|(id, _)| net.rate(*id))
                .sum();
            prop_assert!(
                used <= capacity * (1.0 + 1e-6),
                "resource {ri} over-allocated: {used} > {capacity}"
            );
        }

        // 3. Work conservation / max-min: every flow is bottlenecked by its
        // own cap or by some saturated resource it crosses.
        for (id, (rs, cap, _)) in ids.iter().zip(&s.flows) {
            let r = net.rate(*id);
            let at_cap = r >= cap * (1.0 - 1e-6);
            let at_bottleneck = rs.iter().any(|&ri| {
                let used: f64 = ids
                    .iter()
                    .zip(&s.flows)
                    .filter(|(_, (rs2, _, _))| rs2.contains(&ri))
                    .map(|(id2, _)| net.rate(*id2))
                    .sum();
                used >= s.capacities[ri] * (1.0 - 1e-6)
            });
            prop_assert!(
                at_cap || at_bottleneck,
                "flow neither capped nor bottlenecked (rate {r}, cap {cap})"
            );
        }
    }

    #[test]
    fn progress_conserves_bytes(bytes in 1.0..1e9f64, dt in 0.0..10.0f64) {
        let mut net = FlowNet::new();
        let r = net.add_resource(1e9);
        let f = net.add(FlowSpec { resources: vec![r], cap: 2e9, bytes });
        let rate = net.rate(f);
        net.progress(dt);
        let expect = (bytes - rate * dt).max(0.0);
        prop_assert!((net.remaining(f) - expect).abs() < 1e-6 * bytes.max(1.0));
    }

    #[test]
    fn removal_never_decreases_other_rates(n in 2usize..8) {
        let mut net = FlowNet::new();
        let r = net.add_resource(1e9);
        let ids: Vec<_> = (0..n)
            .map(|_| net.add(FlowSpec { resources: vec![r], cap: 5e8, bytes: 1e6 }))
            .collect();
        let before: Vec<f64> = ids.iter().map(|&i| net.rate(i)).collect();
        net.remove(ids[0]);
        for (&id, &b) in ids[1..].iter().zip(&before[1..]) {
            prop_assert!(net.rate(id) >= b - 1e-6, "rate dropped after removal");
        }
    }
}
