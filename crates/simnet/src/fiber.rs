//! Stackful coroutines ("fibers") for event-driven actor execution.
//!
//! A [`Fiber`] runs a closure on its own heap-allocated stack. The closure
//! can suspend itself at any depth with [`fiber_yield`], returning control to
//! whoever called [`Fiber::resume`]; the next `resume` continues exactly
//! where the closure left off. This is what lets the discrete-event engine
//! drive tens of thousands of simulated ranks from one OS thread: each rank
//! is a fiber whose blocking points (wait, rendezvous, park-until-time) yield
//! back to the scheduler instead of parking an OS thread.
//!
//! # Implementation
//!
//! On x86-64 Unix the switch is ~10 instructions of inline assembly saving
//! the System V callee-saved registers (`rbp rbx r12–r15`) and swapping
//! `rsp`; everything else (instruction pointer, locals) lives on the fiber's
//! stack. On other targets a portable fallback backs each fiber with a
//! lazily-spawned OS thread and a condvar handoff — same API, same
//! one-runner-at-a-time semantics, just without the scalability.
//!
//! # Panics and cancellation
//!
//! Panics never unwind across the assembly boundary: the fiber entry shim
//! catches them at the root of the fiber stack and re-raises them from
//! `resume` on the caller's stack. Dropping a suspended fiber *cancels* it:
//! the fiber is resumed one last time with a cancellation flag set, and
//! `fiber_yield` raises a [`ForcedUnwind`] panic so that every live local on
//! the fiber stack runs its destructor before the stack is freed.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};

/// Sentinel panic payload used to unwind a cancelled fiber's stack. Caught
/// and swallowed at the fiber root; user code should not catch it (re-raise
/// it if a broad `catch_unwind` sees a payload of this type).
pub struct ForcedUnwind;

/// Default fiber stack size. Stacks are allocated zeroed, so untouched pages
/// cost address space only, not resident memory.
pub const DEFAULT_STACK_SIZE: usize = 1 << 20;

const MIN_STACK_SIZE: usize = 64 * 1024;

/// Magic written at the low end of each fiber stack; checked after every
/// resume to catch stack overflows (which would otherwise silently corrupt
/// the adjacent heap).
const STACK_CANARY: u64 = 0xF1BE_2CAF_EC0D_A217;

/// True while the calling code is executing inside a fiber.
pub fn in_fiber() -> bool {
    imp::in_fiber()
}

/// Suspend the current fiber, returning control to the caller of
/// [`Fiber::resume`]. Panics if called outside a fiber. If the fiber was
/// cancelled while suspended, this raises a [`ForcedUnwind`] panic instead
/// of returning.
pub fn fiber_yield() {
    imp::fiber_yield()
}

/// A suspended or running coroutine with its own stack. See module docs.
pub struct Fiber {
    inner: imp::FiberImpl,
}

impl Fiber {
    /// Create a fiber that will run `f` on its first [`Fiber::resume`]. The
    /// requested stack size is rounded up to a small minimum.
    pub fn new<F>(stack_size: usize, f: F) -> Fiber
    where
        F: FnOnce() + Send + 'static,
    {
        Fiber {
            inner: imp::FiberImpl::new(stack_size.max(MIN_STACK_SIZE), Box::new(f)),
        }
    }

    /// Run the fiber until it yields or its closure returns. Panics raised
    /// (and not caught) inside the closure are re-raised here, on the
    /// caller's stack. Must not be called on a finished fiber.
    pub fn resume(&mut self) {
        assert!(!self.done(), "resuming a finished fiber");
        self.inner.resume();
    }

    /// Whether the fiber's closure has returned (or unwound).
    pub fn done(&self) -> bool {
        self.inner.done()
    }
}

#[cfg(all(target_arch = "x86_64", unix, not(miri)))]
mod imp {
    use super::*;

    // The context switch: save the System V callee-saved registers on the
    // current stack, publish the resulting rsp through `save_rsp`, adopt
    // `target_rsp`, and restore. The `ret` resumes the target context after
    // *its* last `ovcomm_raw_switch` call — or, for a fresh fiber, enters
    // `ovcomm_fiber_start` via the hand-built frame below.
    std::arch::global_asm!(
        ".text",
        ".balign 16",
        ".globl ovcomm_raw_switch",
        ".type ovcomm_raw_switch, @function",
        "ovcomm_raw_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov qword ptr [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".size ovcomm_raw_switch, . - ovcomm_raw_switch",
        // Entry shim for a fresh fiber: the bootstrap frame put the FiberCtl
        // pointer where `r12` is restored from, so forward it as the first
        // argument. `ovcomm_fiber_entry` never returns (it loops yielding),
        // hence the trap.
        ".balign 16",
        ".globl ovcomm_fiber_start",
        ".type ovcomm_fiber_start, @function",
        "ovcomm_fiber_start:",
        "mov rdi, r12",
        "call ovcomm_fiber_entry",
        "ud2",
        ".size ovcomm_fiber_start, . - ovcomm_fiber_start",
    );

    extern "C" {
        fn ovcomm_raw_switch(save_rsp: *mut usize, target_rsp: usize);
        fn ovcomm_fiber_start();
    }

    pub(super) struct FiberCtl {
        /// Fiber's rsp while suspended.
        fiber_rsp: usize,
        /// Resumer's rsp while the fiber runs.
        parent_rsp: usize,
        cancel: bool,
        done: bool,
        entry: Option<Box<dyn FnOnce() + Send + 'static>>,
        panic: Option<Box<dyn Any + Send>>,
    }

    thread_local! {
        static CURRENT: Cell<*mut FiberCtl> = const { Cell::new(std::ptr::null_mut()) };
    }

    pub(super) fn in_fiber() -> bool {
        CURRENT.with(|c| !c.get().is_null())
    }

    pub(super) fn fiber_yield() {
        let ctl = CURRENT.with(|c| c.get());
        assert!(!ctl.is_null(), "fiber_yield called outside a fiber");
        unsafe {
            let parent = (*ctl).parent_rsp;
            ovcomm_raw_switch(&mut (*ctl).fiber_rsp, parent);
            if (*ctl).cancel {
                panic::panic_any(ForcedUnwind);
            }
        }
    }

    /// Root of every fiber stack. Runs the entry closure with a panic
    /// firewall (nothing may unwind into the assembly shim), records the
    /// outcome, and then yields forever — a finished fiber that is resumed
    /// again just bounces straight back.
    #[no_mangle]
    unsafe extern "C" fn ovcomm_fiber_entry(ctl: *mut FiberCtl) -> ! {
        {
            let entry = (*ctl).entry.take().unwrap_or_else(|| std::process::abort());
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(entry)) {
                if !payload.is::<ForcedUnwind>() {
                    (*ctl).panic = Some(payload);
                }
            }
            (*ctl).done = true;
        }
        loop {
            let parent = (*ctl).parent_rsp;
            ovcomm_raw_switch(&mut (*ctl).fiber_rsp, parent);
        }
    }

    pub(super) struct FiberImpl {
        ctl: Box<FiberCtl>,
        stack: Box<[u8]>,
    }

    // The closure is `Send` and the raw pointers only ever reference memory
    // owned by this struct; a fiber is only ever *run* by one thread at a
    // time because `resume` takes `&mut self`.
    unsafe impl Send for FiberImpl {}

    impl FiberImpl {
        pub(super) fn new(stack_size: usize, f: Box<dyn FnOnce() + Send + 'static>) -> FiberImpl {
            // Zeroed allocation: the allocator hands back untouched
            // (copy-on-write zero) pages, so large stacks are cheap until
            // actually used.
            let stack = vec![0u8; stack_size].into_boxed_slice();
            let mut ctl = Box::new(FiberCtl {
                fiber_rsp: 0,
                parent_rsp: 0,
                cancel: false,
                done: false,
                entry: Some(f),
                panic: None,
            });
            let base = stack.as_ptr() as usize;
            // Bootstrap frame, laid out so `ovcomm_raw_switch`'s restore
            // sequence pops zeros into the callee-saved registers (except
            // r12 = FiberCtl pointer) and `ret`s into `ovcomm_fiber_start`.
            // `rsp % 16 == 8` at the shim's entry keeps the System V stack
            // alignment contract for the `call` it performs.
            let top = (base + stack_size) & !15usize;
            let rsp = top - 72;
            debug_assert_eq!(rsp % 16, 8);
            unsafe {
                let p = rsp as *mut usize;
                p.write(0); // r15
                p.add(1).write(0); // r14
                p.add(2).write(0); // r13
                p.add(3).write(&mut *ctl as *mut FiberCtl as usize); // r12
                p.add(4).write(0); // rbx
                p.add(5).write(0); // rbp
                p.add(6).write(ovcomm_fiber_start as *const () as usize); // return address
                (base as *mut u64).write(STACK_CANARY);
            }
            ctl.fiber_rsp = rsp;
            FiberImpl { ctl, stack }
        }

        pub(super) fn resume(&mut self) {
            let ctl: *mut FiberCtl = &mut *self.ctl;
            let prev = CURRENT.with(|c| c.replace(ctl));
            unsafe {
                ovcomm_raw_switch(&mut (*ctl).parent_rsp, (*ctl).fiber_rsp);
            }
            CURRENT.with(|c| c.set(prev));
            let canary = unsafe { (self.stack.as_ptr() as *const u64).read() };
            assert_eq!(canary, STACK_CANARY, "fiber stack overflow detected");
            if let Some(p) = self.ctl.panic.take() {
                panic::resume_unwind(p);
            }
        }

        pub(super) fn done(&self) -> bool {
            self.ctl.done
        }
    }

    impl Drop for FiberImpl {
        fn drop(&mut self) {
            // Started but suspended: cancel so the fiber stack unwinds and
            // every live local runs its destructor before the stack is
            // freed. A never-started fiber just drops its closure; a
            // finished one has nothing left on its stack.
            if !self.ctl.done && self.ctl.entry.is_none() {
                self.ctl.cancel = true;
                self.resume();
                debug_assert!(self.ctl.done);
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", unix, not(miri))))]
mod imp {
    //! Portable fallback: each fiber is backed by a lazily-spawned OS thread
    //! with a strict condvar handoff — exactly one of {caller, fiber thread}
    //! runs at any moment, so the scheduling semantics match the
    //! assembly-based implementation (just without its scalability).

    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Turn {
        Parent,
        Fiber,
        Done,
    }

    struct Shared {
        state: Mutex<State>,
        cv: Condvar,
    }

    struct State {
        turn: Turn,
        cancel: bool,
        panic: Option<Box<dyn Any + Send>>,
    }

    thread_local! {
        static CURRENT: Cell<*const Shared> = const { Cell::new(std::ptr::null()) };
    }

    pub(super) fn in_fiber() -> bool {
        CURRENT.with(|c| !c.get().is_null())
    }

    #[allow(clippy::expect_used)]
    pub(super) fn fiber_yield() {
        let shared = CURRENT.with(|c| c.get());
        assert!(!shared.is_null(), "fiber_yield called outside a fiber");
        let shared = unsafe { &*shared };
        let mut st = shared.state.lock().expect("fiber handoff poisoned");
        st.turn = Turn::Parent;
        shared.cv.notify_all();
        while st.turn != Turn::Fiber {
            st = shared.cv.wait(st).expect("fiber handoff poisoned");
        }
        let cancel = st.cancel;
        drop(st);
        if cancel {
            panic::panic_any(ForcedUnwind);
        }
    }

    pub(super) struct FiberImpl {
        shared: Arc<Shared>,
        entry: Option<Box<dyn FnOnce() + Send + 'static>>,
        thread: Option<std::thread::JoinHandle<()>>,
        stack_size: usize,
        done: bool,
    }

    impl FiberImpl {
        pub(super) fn new(stack_size: usize, f: Box<dyn FnOnce() + Send + 'static>) -> FiberImpl {
            FiberImpl {
                shared: Arc::new(Shared {
                    state: Mutex::new(State {
                        turn: Turn::Parent,
                        cancel: false,
                        panic: None,
                    }),
                    cv: Condvar::new(),
                }),
                entry: Some(f),
                thread: None,
                stack_size,
                done: false,
            }
        }

        #[allow(clippy::expect_used)]
        pub(super) fn resume(&mut self) {
            if let Some(entry) = self.entry.take() {
                let shared = self.shared.clone();
                let builder = std::thread::Builder::new()
                    .name("ovcomm-fiber".into())
                    .stack_size(self.stack_size);
                let handle = builder
                    .spawn(move || {
                        {
                            let mut st = shared.state.lock().expect("fiber handoff poisoned");
                            while st.turn != Turn::Fiber {
                                st = shared.cv.wait(st).expect("fiber handoff poisoned");
                            }
                        }
                        CURRENT.with(|c| c.set(&*shared as *const Shared));
                        let result = panic::catch_unwind(AssertUnwindSafe(entry));
                        CURRENT.with(|c| c.set(std::ptr::null()));
                        let mut st = shared.state.lock().expect("fiber handoff poisoned");
                        if let Err(payload) = result {
                            if !payload.is::<ForcedUnwind>() {
                                st.panic = Some(payload);
                            }
                        }
                        st.turn = Turn::Done;
                        shared.cv.notify_all();
                    })
                    .expect("spawning fiber fallback thread");
                self.thread = Some(handle);
            }
            let mut st = self.shared.state.lock().expect("fiber handoff poisoned");
            st.turn = Turn::Fiber;
            self.shared.cv.notify_all();
            while st.turn == Turn::Fiber {
                st = self.shared.cv.wait(st).expect("fiber handoff poisoned");
            }
            if st.turn == Turn::Done {
                self.done = true;
            }
            let payload = st.panic.take();
            drop(st);
            if self.done {
                if let Some(t) = self.thread.take() {
                    let _ = t.join();
                }
            }
            if let Some(p) = payload {
                panic::resume_unwind(p);
            }
        }

        pub(super) fn done(&self) -> bool {
            self.done
        }
    }

    impl Drop for FiberImpl {
        #[allow(clippy::expect_used)]
        fn drop(&mut self) {
            if !self.done && self.thread.is_some() {
                self.shared
                    .state
                    .lock()
                    .expect("fiber handoff poisoned")
                    .cancel = true;
                self.resume();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_to_completion_without_yield() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = hits.clone();
        let mut f = Fiber::new(0, move || {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!f.done());
        f.resume();
        assert!(f.done());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn yield_suspends_and_resume_continues() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::<&'static str>::new()));
        let l2 = log.clone();
        let mut f = Fiber::new(0, move || {
            l2.lock().push("a");
            fiber_yield();
            l2.lock().push("b");
            fiber_yield();
            l2.lock().push("c");
        });
        f.resume();
        assert_eq!(*log.lock(), vec!["a"]);
        assert!(!f.done());
        f.resume();
        assert_eq!(*log.lock(), vec!["a", "b"]);
        f.resume();
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
        assert!(f.done());
    }

    #[test]
    fn in_fiber_reflects_context() {
        assert!(!in_fiber());
        let saw = Arc::new(AtomicUsize::new(0));
        let s2 = saw.clone();
        let mut f = Fiber::new(0, move || {
            if in_fiber() {
                s2.store(1, Ordering::SeqCst);
            }
        });
        f.resume();
        assert!(!in_fiber());
        assert_eq!(saw.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_fibers_interleave_deterministically() {
        // Round-robin 100 fibers, 10 yields each, on one thread.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut fibers: Vec<Fiber> = (0..100)
            .map(|_| {
                let c = counter.clone();
                Fiber::new(0, move || {
                    for _ in 0..10 {
                        c.fetch_add(1, Ordering::SeqCst);
                        fiber_yield();
                    }
                })
            })
            .collect();
        while fibers.iter().any(|f| !f.done()) {
            for f in fibers.iter_mut().filter(|f| !f.done()) {
                f.resume();
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn panic_propagates_to_resumer() {
        let mut f = Fiber::new(0, || panic!("boom in fiber"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.resume()))
            .expect_err("panic should propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom in fiber");
        assert!(f.done());
    }

    #[test]
    fn drop_of_suspended_fiber_runs_destructors() {
        struct Sentinel(Arc<AtomicUsize>);
        impl Drop for Sentinel {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d2 = drops.clone();
        let mut f = Fiber::new(0, move || {
            let _s = Sentinel(d2);
            fiber_yield();
            fiber_yield();
        });
        f.resume();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(f);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_of_unstarted_fiber_is_clean() {
        struct Sentinel(Arc<AtomicUsize>);
        impl Drop for Sentinel {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let s = Sentinel(drops.clone());
        let f = Fiber::new(0, move || {
            let _keep = s;
        });
        drop(f);
        // The closure (and its captures) are dropped without ever running.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn non_send_locals_inside_fiber_are_fine() {
        // The closure must be Send, but values created inside the fiber
        // don't have to be.
        let mut f = Fiber::new(0, || {
            let rc = Rc::new(5usize);
            let rc2 = rc.clone();
            fiber_yield();
            assert_eq!(*rc2, 5);
        });
        f.resume();
        f.resume();
        assert!(f.done());
    }

    #[test]
    fn nested_resume_from_within_a_fiber() {
        // A fiber may itself drive another fiber (the engine never does,
        // but the CURRENT bookkeeping must nest correctly).
        let log = Arc::new(parking_lot::Mutex::new(Vec::<u32>::new()));
        let l2 = log.clone();
        let mut outer = Fiber::new(0, move || {
            l2.lock().push(1);
            let l3 = l2.clone();
            let mut inner = Fiber::new(0, move || {
                l3.lock().push(2);
                fiber_yield();
                l3.lock().push(3);
            });
            inner.resume();
            l2.lock().push(4);
            inner.resume();
            l2.lock().push(5);
        });
        outer.resume();
        assert!(outer.done());
        assert_eq!(*log.lock(), vec![1, 2, 4, 3, 5]);
    }

    #[test]
    fn deep_call_stack_within_default_size() {
        fn recurse(n: usize) -> usize {
            if n == 0 {
                fiber_yield();
                0
            } else {
                recurse(n - 1) + 1
            }
        }
        let mut f = Fiber::new(DEFAULT_STACK_SIZE, || {
            assert_eq!(recurse(500), 500);
        });
        f.resume();
        f.resume();
        assert!(f.done());
    }
}
