//! Machine profiles: every calibration constant of the simulated cluster.
//!
//! The default profile, [`MachineProfile::stampede2_skylake`], is fitted to
//! the absolute anchors the paper reports for the Stampede2 Skylake partition
//! (§V): ~12 000 MB/s peak unidirectional inter-node bandwidth, a single MPI
//! process unable to reach peak except at very large messages (Fig. 3),
//! blocking 8 MB broadcast ≈ 1392 μs vs. blocking 8 MB reduction ≈ 5746 μs on
//! 4 nodes (Fig. 6), nonblocking-post cost roughly equal to an internal
//! buffer copy (Ireduce post of 8 MB ≈ 1139 μs), and two local DGEMMs of the
//! 1hsg_70 system taking 0.01794 s on a node (§V-A, ≈1.56 TFlops/node).

use crate::time::SimDur;

/// All tunable constants describing one cluster's nodes, NICs and software
/// stack. Bandwidths are bytes/second.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// NIC capacity per direction (peak unidirectional bandwidth).
    pub nic_bw: f64,
    /// Asymptotic single-stream bandwidth for one in-flight message.
    pub stream_rmax: f64,
    /// Message size (bytes) at which a single stream reaches half of
    /// `stream_rmax`; models protocol pipelining inefficiency — the reason a
    /// single process per node cannot saturate the NIC (Fig. 3).
    pub stream_nhalf: f64,
    /// One-way network latency between nodes.
    pub alpha_inter: SimDur,
    /// One-way latency between processes on the same node (shared memory).
    pub alpha_intra: SimDur,
    /// Per-pair intra-node (shared-memory) stream bandwidth.
    pub shm_stream_bw: f64,
    /// Aggregate intra-node communication capacity (memory bandwidth share).
    pub node_mem_bw: f64,
    /// Bandwidth of internal library buffer copies; nonblocking posts of
    /// large operations are charged `post_base + n / copy_bw` (Fig. 6 shows
    /// posting an 8 MB `MPI_Ireduce` costs ≈ one buffer copy).
    pub copy_bw: f64,
    /// Fixed software cost of posting a nonblocking operation.
    pub post_base: SimDur,
    /// Fixed software cost of posting/initiating a blocking point-to-point.
    pub small_post: SimDur,
    /// Messages strictly below this size use the eager protocol: the sender
    /// buffers the message (a copy) and proceeds without waiting for the
    /// receiver. At or above, rendezvous synchronization applies.
    pub eager_limit: usize,
    /// Extra handshake delay for rendezvous-protocol messages.
    pub rendezvous_rtt: SimDur,
    /// Streaming rate of the local reduction kernel (one pass over two
    /// operand buffers producing one output), per reduction stream.
    pub gamma_reduce_bw: f64,
    /// How many concurrent reduction streams a single process can sustain
    /// (main thread + asynchronous progress), as a multiple of
    /// `gamma_reduce_bw`. Concurrent nonblocking collectives on one rank
    /// share this capacity — this is what keeps N_DUP pipelines from
    /// getting a free N_DUP× speedup on reduction compute.
    pub reduce_parallel: f64,
    /// Dense GEMM rate of a whole node when one process drives all cores.
    pub node_flops: f64,
    /// Per-collective-round software slack (progress-engine scheduling,
    /// request bookkeeping) added on top of message costs.
    pub coll_round_slack: SimDur,
    /// Polling period used by sleeping processes in the multiple-PPN
    /// mechanism (§III-B says 10 ms: `MPI_Test` + `usleep`).
    pub sleep_poll: SimDur,
}

impl MachineProfile {
    /// Profile calibrated against the paper's Stampede2 Skylake numbers.
    pub fn stampede2_skylake() -> MachineProfile {
        MachineProfile {
            name: "stampede2-skylake",
            nic_bw: 12.0e9,
            stream_rmax: 12.2e9,
            stream_nhalf: 192.0 * 1024.0,
            alpha_inter: SimDur::from_nanos(2_300),
            alpha_intra: SimDur::from_nanos(500),
            shm_stream_bw: 10.0e9,
            node_mem_bw: 80.0e9,
            copy_bw: 7.5e9,
            post_base: SimDur::from_nanos(2_000),
            small_post: SimDur::from_nanos(300),
            eager_limit: 64 * 1024,
            rendezvous_rtt: SimDur::from_nanos(4_600),
            gamma_reduce_bw: 1.6e9,
            reduce_parallel: 2.0,
            node_flops: 1.56e12,
            coll_round_slack: SimDur::from_nanos(1_500),
            sleep_poll: SimDur::from_millis(10),
        }
    }

    /// A commodity cluster: 10 GbE (1.25 GB/s), higher latency, slower
    /// intra-node path — the regime where communication overlap matters
    /// even more than on Omni-Path (used by the network ablation).
    pub fn commodity_10gbe() -> MachineProfile {
        MachineProfile {
            name: "commodity-10gbe",
            nic_bw: 1.25e9,
            stream_rmax: 1.28e9,
            stream_nhalf: 96.0 * 1024.0,
            alpha_inter: SimDur::from_micros(15),
            alpha_intra: SimDur::from_nanos(800),
            shm_stream_bw: 6.0e9,
            node_mem_bw: 40.0e9,
            copy_bw: 5.0e9,
            post_base: SimDur::from_micros(3),
            small_post: SimDur::from_nanos(500),
            eager_limit: 32 * 1024,
            rendezvous_rtt: SimDur::from_micros(30),
            gamma_reduce_bw: 1.6e9,
            reduce_parallel: 2.0,
            node_flops: 1.0e12,
            coll_round_slack: SimDur::from_micros(3),
            sleep_poll: SimDur::from_millis(10),
        }
    }

    /// A forward-looking fat-NIC system (HDR-class 25 GB/s effective, lower
    /// latency): the regime where a single stream is even further from
    /// saturating the NIC.
    pub fn fat_nic_hdr() -> MachineProfile {
        MachineProfile {
            name: "fat-nic-hdr",
            nic_bw: 25.0e9,
            stream_rmax: 26.0e9,
            stream_nhalf: 384.0 * 1024.0,
            alpha_inter: SimDur::from_nanos(1_300),
            alpha_intra: SimDur::from_nanos(400),
            shm_stream_bw: 14.0e9,
            node_mem_bw: 120.0e9,
            copy_bw: 12.0e9,
            post_base: SimDur::from_nanos(1_500),
            small_post: SimDur::from_nanos(250),
            eager_limit: 64 * 1024,
            rendezvous_rtt: SimDur::from_nanos(2_600),
            gamma_reduce_bw: 2.5e9,
            reduce_parallel: 2.0,
            node_flops: 3.0e12,
            coll_round_slack: SimDur::from_nanos(1_200),
            sleep_poll: SimDur::from_millis(10),
        }
    }

    /// A small, fast, latency-dominated profile for unit tests: round
    /// numbers, large eager limit, so tests reason about exact times easily.
    pub fn test_profile() -> MachineProfile {
        MachineProfile {
            name: "test",
            nic_bw: 1.0e9,
            stream_rmax: 1.0e9,
            stream_nhalf: 1.0, // effectively no single-stream penalty
            alpha_inter: SimDur::from_micros(1),
            alpha_intra: SimDur::from_nanos(100),
            shm_stream_bw: 1.0e9,
            node_mem_bw: 4.0e9,
            copy_bw: 1.0e9,
            post_base: SimDur::from_nanos(100),
            small_post: SimDur::from_nanos(50),
            eager_limit: 64 * 1024,
            rendezvous_rtt: SimDur::from_micros(2),
            gamma_reduce_bw: 1.0e9,
            reduce_parallel: 2.0,
            node_flops: 1.0e12,
            sleep_poll: SimDur::from_millis(10),
            coll_round_slack: SimDur::from_nanos(100),
        }
    }

    /// Single-stream bandwidth cap for a message of `n` bytes crossing the
    /// inter-node network: `rmax · n / (n + n_half)`, floored so tiny
    /// messages still make progress (their time is dominated by latency and
    /// posting costs anyway).
    pub fn stream_cap(&self, n: usize) -> f64 {
        let n = n as f64;
        let cap = self.stream_rmax * n / (n + self.stream_nhalf);
        cap.max(16.0e6)
    }

    /// Time to copy `n` bytes through an internal library buffer.
    pub fn copy_time(&self, n: usize) -> SimDur {
        SimDur::from_secs_f64(n as f64 / self.copy_bw)
    }

    /// Time for one process to reduce (e.g. sum) an `n`-byte operand into an
    /// accumulation buffer.
    pub fn reduce_compute_time(&self, n: usize) -> SimDur {
        SimDur::from_secs_f64(n as f64 / self.gamma_reduce_bw)
    }

    /// Dense GEMM rate (flop/s) of one process when `ppn` processes share a
    /// node and local blocks are `block_dim`² — the node's cores are divided
    /// among processes, with a mild efficiency loss for small blocks and a
    /// mild overhead for very high process counts.
    pub fn process_flops(&self, ppn: usize, block_dim: usize) -> f64 {
        assert!(ppn >= 1, "ppn must be at least 1");
        let block_eff = {
            let d = block_dim as f64;
            (d / (d + 48.0)).clamp(0.05, 1.0)
        };
        let ppn_eff = match ppn {
            1 => 1.0,
            2..=6 => 0.99,
            _ => 0.96,
        };
        self.node_flops / ppn as f64 * block_eff * ppn_eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cap_rises_with_size() {
        let p = MachineProfile::stampede2_skylake();
        let small = p.stream_cap(16 * 1024);
        let mid = p.stream_cap(1024 * 1024);
        let large = p.stream_cap(16 * 1024 * 1024);
        assert!(small < mid && mid < large);
        // A single 16 MB stream should be able to approach the NIC peak
        // ("except for very large message sizes, the peak available
        // bandwidth cannot be attained by a single process", §V-A).
        assert!(large > 0.95 * p.nic_bw, "large cap {large}");
        // ...but a 64 KB stream must be far from peak.
        assert!(p.stream_cap(64 * 1024) < 0.4 * p.nic_bw);
    }

    #[test]
    fn stream_cap_has_floor() {
        let p = MachineProfile::stampede2_skylake();
        assert!(p.stream_cap(1) >= 16.0e6);
    }

    #[test]
    fn copy_and_reduce_times_scale_linearly() {
        let p = MachineProfile::stampede2_skylake();
        let one = p.copy_time(1 << 20).as_nanos();
        let two = p.copy_time(2 << 20).as_nanos();
        assert!((two as i64 - 2 * one as i64).unsigned_abs() <= 2);
        // 8 MB copy at 7.5 GB/s ≈ 1118 us — the paper's Ireduce post anchor.
        let post = p.copy_time(8 * 1024 * 1024).as_micros_f64();
        assert!((post - 1118.0).abs() < 5.0, "8MB copy {post}us");
    }

    #[test]
    fn node_flops_anchor() {
        // §V-A: two local multiplications of 1912^2 blocks take 0.01794 s,
        // i.e. 2·(2·1912³) flops in that time ≈ 1.56 TFlops.
        let p = MachineProfile::stampede2_skylake();
        let flops = 2.0 * 2.0 * 1912.0_f64.powi(3);
        let t = flops / p.process_flops(1, 1912);
        assert!((t - 0.01794).abs() < 0.002, "two-gemm time {t}");
    }

    #[test]
    fn process_flops_divides_among_ppn() {
        let p = MachineProfile::stampede2_skylake();
        let one = p.process_flops(1, 2000);
        let four = p.process_flops(4, 2000);
        assert!(four < one);
        // Aggregate across 4 processes stays within a few percent of 1 PPN.
        assert!((4.0 * four / one - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "ppn must be at least 1")]
    fn zero_ppn_rejected() {
        MachineProfile::stampede2_skylake().process_flops(0, 100);
    }

    #[test]
    fn alternative_profiles_are_internally_consistent() {
        for p in [
            MachineProfile::commodity_10gbe(),
            MachineProfile::fat_nic_hdr(),
            MachineProfile::stampede2_skylake(),
        ] {
            // Stream cap never exceeds its own asymptote and approaches it
            // for huge messages.
            assert!(p.stream_cap(1 << 30) <= p.stream_rmax);
            assert!(p.stream_cap(1 << 30) > 0.9 * p.stream_rmax, "{}", p.name);
            // Eager limit below the rendezvous-worthy sizes.
            assert!(p.eager_limit >= 4 * 1024 && p.eager_limit <= 1 << 20);
            // Copying is slower than the NIC only on the slow profile.
            assert!(p.copy_bw > 0.0 && p.gamma_reduce_bw > 0.0);
        }
        // Ordering across generations.
        let slow = MachineProfile::commodity_10gbe();
        let mid = MachineProfile::stampede2_skylake();
        let fast = MachineProfile::fat_nic_hdr();
        assert!(slow.nic_bw < mid.nic_bw && mid.nic_bw < fast.nic_bw);
        assert!(slow.alpha_inter > mid.alpha_inter);
        assert!(mid.alpha_inter > fast.alpha_inter);
    }
}
