//! Cluster topology: nodes, their network resources, the fabric connecting
//! them, and the mapping of ranks (processes) onto nodes.
//!
//! Three fabric models are supported:
//!
//! * [`Fabric::FullBisection`] — the fabric is assumed non-blocking, as is
//!   standard for flow-level models of full-bisection fat trees (Stampede2's
//!   Omni-Path fat tree with six core switches behaves this way for the
//!   paper's job sizes): only the NICs (one transmit and one receive resource
//!   per node) and the intra-node memory channel constrain transfers.
//! * [`Fabric::FatTree`] — a three-level fat tree (leaf, spine, core) with
//!   explicit per-direction link resources and deterministic d-mod-k routing,
//!   so inter-pod traffic contends on real uplinks. Use this to study
//!   multi-tenant interference and oversubscription.
//! * [`Fabric::Dragonfly`] — groups of routers with all-to-all local and
//!   global connections and deterministic minimal routing.
//!
//! The `FullBisection` path is bit-compatible with the historic model (same
//! resources registered in the same order), so existing committed results do
//! not move when the fabric field is left at its default.

use crate::flow::{FlowNet, ResourceId, ResourceKind};
use crate::profile::MachineProfile;

/// The switching fabric connecting the nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Fabric {
    /// Non-blocking fabric: only NICs and memory channels constrain
    /// transfers. The historic default.
    FullBisection,
    /// Three-level fat tree. Hosts attach to leaf switches, leaves to every
    /// spine of their pod, spines to core switches. Routing is deterministic
    /// d-mod-k (the destination address selects the spine and core), which is
    /// how static ECMP hashing is usually modeled.
    FatTree {
        /// Number of pods.
        pods: usize,
        /// Leaf switches per pod.
        leaves_per_pod: usize,
        /// Hosts attached to each leaf.
        hosts_per_leaf: usize,
        /// Spine switches per pod (each leaf has one up/down link pair to
        /// each spine of its pod).
        spines_per_pod: usize,
        /// Core switches reachable from each spine (each spine has one
        /// up/down link pair to each of its cores).
        cores_per_spine: usize,
        /// Capacity of every fabric link, bytes/second per direction.
        link_bw: f64,
    },
    /// Dragonfly: `groups` groups of `routers_per_group` routers, each
    /// hosting `hosts_per_router` nodes. Routers within a group are fully
    /// connected (one link per ordered router pair); every ordered pair of
    /// groups is connected by one global link. Minimal routing.
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers per group (`a` in the literature).
        routers_per_group: usize,
        /// Hosts per router (`h` in the literature).
        hosts_per_router: usize,
        /// Capacity of intra-group router-to-router links, bytes/second.
        local_bw: f64,
        /// Capacity of group-to-group global links, bytes/second.
        global_bw: f64,
    },
}

impl Fabric {
    /// Number of host slots this fabric provides (`None` = unbounded, for
    /// the non-blocking fabric).
    pub fn host_slots(&self) -> Option<usize> {
        match self {
            Fabric::FullBisection => None,
            Fabric::FatTree {
                pods,
                leaves_per_pod,
                hosts_per_leaf,
                ..
            } => Some(pods * leaves_per_pod * hosts_per_leaf),
            Fabric::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
                ..
            } => Some(groups * routers_per_group * hosts_per_router),
        }
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Hardware/software constants.
    pub profile: MachineProfile,
    /// The switching fabric. Defaults to [`Fabric::FullBisection`].
    pub fabric: Fabric,
}

impl ClusterSpec {
    /// A cluster of `nodes` identical nodes with the given profile on a
    /// non-blocking fabric.
    pub fn new(nodes: usize, profile: MachineProfile) -> ClusterSpec {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec {
            nodes,
            profile,
            fabric: Fabric::FullBisection,
        }
    }

    /// Replace the fabric. The fabric must provide at least `self.nodes`
    /// host slots; nodes are assigned to slots in order (host `n` sits under
    /// leaf `n / hosts_per_leaf`, or router `n / hosts_per_router`).
    pub fn with_fabric(mut self, fabric: Fabric) -> ClusterSpec {
        if let Some(slots) = fabric.host_slots() {
            assert!(
                self.nodes <= slots,
                "fabric has {slots} host slots but the cluster has {} nodes",
                self.nodes
            );
        }
        self.fabric = fabric;
        self
    }

    /// Register this cluster's resources into a [`FlowNet`] and return the
    /// lookup table. Per-node NIC/memory resources are registered first (in
    /// the same order as the historic non-blocking model), then any fabric
    /// link resources.
    pub fn build_resources(&self, net: &mut FlowNet) -> ClusterResources {
        let mut tx = Vec::with_capacity(self.nodes);
        let mut rx = Vec::with_capacity(self.nodes);
        let mut mem = Vec::with_capacity(self.nodes);
        for node in 0..self.nodes {
            let n = node as u32;
            tx.push(net.add_resource_kind(self.profile.nic_bw, ResourceKind::NicTx(n)));
            rx.push(net.add_resource_kind(self.profile.nic_bw, ResourceKind::NicRx(n)));
            mem.push(net.add_resource_kind(self.profile.node_mem_bw, ResourceKind::Mem(n)));
        }
        let links = match self.fabric {
            Fabric::FullBisection => LinkTable::None,
            Fabric::FatTree {
                pods,
                leaves_per_pod,
                hosts_per_leaf,
                spines_per_pod,
                cores_per_spine,
                link_bw,
            } => {
                assert!(
                    pods >= 1 && leaves_per_pod >= 1 && hosts_per_leaf >= 1 && spines_per_pod >= 1,
                    "degenerate fat tree"
                );
                let mut next = 0u32;
                let mut link = |net: &mut FlowNet| {
                    let id = net.add_resource_kind(link_bw, ResourceKind::Link(next));
                    next += 1;
                    id
                };
                // leaf_up/leaf_down[pod][leaf][spine]
                let nleaf = pods * leaves_per_pod * spines_per_pod;
                let mut leaf_up = Vec::with_capacity(nleaf);
                let mut leaf_down = Vec::with_capacity(nleaf);
                for _ in 0..nleaf {
                    leaf_up.push(link(net));
                }
                for _ in 0..nleaf {
                    leaf_down.push(link(net));
                }
                // spine_up/spine_down[pod][spine][core]
                let nspine = pods * spines_per_pod * cores_per_spine;
                let mut spine_up = Vec::with_capacity(nspine);
                let mut spine_down = Vec::with_capacity(nspine);
                for _ in 0..nspine {
                    spine_up.push(link(net));
                }
                for _ in 0..nspine {
                    spine_down.push(link(net));
                }
                LinkTable::FatTree {
                    leaves_per_pod,
                    hosts_per_leaf,
                    spines_per_pod,
                    cores_per_spine,
                    leaf_up,
                    leaf_down,
                    spine_up,
                    spine_down,
                }
            }
            Fabric::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
                local_bw,
                global_bw,
            } => {
                assert!(
                    groups >= 1 && routers_per_group >= 1 && hosts_per_router >= 1,
                    "degenerate dragonfly"
                );
                let mut next = 0u32;
                // local[group][r_src][r_dst] (full grid; the diagonal is
                // registered but never routed over).
                let a = routers_per_group;
                let mut local = Vec::with_capacity(groups * a * a);
                for _ in 0..groups * a * a {
                    local.push(net.add_resource_kind(local_bw, ResourceKind::Link(next)));
                    next += 1;
                }
                // global[g_src][g_dst] (full grid, diagonal unused).
                let mut global = Vec::with_capacity(groups * groups);
                for _ in 0..groups * groups {
                    global.push(net.add_resource_kind(global_bw, ResourceKind::Link(next)));
                    next += 1;
                }
                LinkTable::Dragonfly {
                    routers_per_group,
                    hosts_per_router,
                    groups,
                    local,
                    global,
                }
            }
        };
        ClusterResources { tx, rx, mem, links }
    }
}

/// Fabric link lookup tables, internal to [`ClusterResources`].
#[derive(Debug, Clone)]
enum LinkTable {
    /// Non-blocking fabric: no link resources.
    None,
    /// Fat-tree links.
    FatTree {
        leaves_per_pod: usize,
        hosts_per_leaf: usize,
        spines_per_pod: usize,
        cores_per_spine: usize,
        leaf_up: Vec<ResourceId>,
        leaf_down: Vec<ResourceId>,
        spine_up: Vec<ResourceId>,
        spine_down: Vec<ResourceId>,
    },
    /// Dragonfly links.
    Dragonfly {
        routers_per_group: usize,
        hosts_per_router: usize,
        groups: usize,
        local: Vec<ResourceId>,
        global: Vec<ResourceId>,
    },
}

/// Resource ids for each node plus fabric links, produced by
/// [`ClusterSpec::build_resources`].
#[derive(Debug, Clone)]
pub struct ClusterResources {
    tx: Vec<ResourceId>,
    rx: Vec<ResourceId>,
    mem: Vec<ResourceId>,
    links: LinkTable,
}

impl ClusterResources {
    /// Assemble from explicit per-node resource ids (ids must have been
    /// registered in the same order `build_resources` uses: tx, rx, mem per
    /// node). The fabric is non-blocking.
    pub fn from_parts(
        tx: Vec<ResourceId>,
        rx: Vec<ResourceId>,
        mem: Vec<ResourceId>,
    ) -> ClusterResources {
        assert!(tx.len() == rx.len() && rx.len() == mem.len());
        ClusterResources {
            tx,
            rx,
            mem,
            links: LinkTable::None,
        }
    }

    /// Resources consumed by a transfer from `src` node to `dst` node, plus
    /// whether it is intra-node. For link-modeling fabrics the vector also
    /// contains every fabric link on the deterministic route.
    pub fn path(&self, src: usize, dst: usize) -> (Vec<ResourceId>, bool) {
        if src == dst {
            return (vec![self.mem[src]], true);
        }
        match &self.links {
            LinkTable::None => (vec![self.tx[src], self.rx[dst]], false),
            LinkTable::FatTree {
                leaves_per_pod,
                hosts_per_leaf,
                spines_per_pod,
                cores_per_spine,
                leaf_up,
                leaf_down,
                spine_up,
                spine_down,
            } => {
                let (lpp, hpl, spp, cps) = (
                    *leaves_per_pod,
                    *hosts_per_leaf,
                    *spines_per_pod,
                    *cores_per_spine,
                );
                let (sp, sl) = (src / (lpp * hpl), (src / hpl) % lpp);
                let (dp, dl) = (dst / (lpp * hpl), (dst / hpl) % lpp);
                let mut path = vec![self.tx[src]];
                if (sp, sl) != (dp, dl) {
                    // d-mod-k: the destination address picks the spine (and
                    // core, if the route leaves the pod).
                    let s = dst % spp;
                    path.push(leaf_up[(sp * lpp + sl) * spp + s]);
                    if sp != dp {
                        let c = (dst / spp) % cps;
                        path.push(spine_up[(sp * spp + s) * cps + c]);
                        path.push(spine_down[(dp * spp + s) * cps + c]);
                    }
                    path.push(leaf_down[(dp * lpp + dl) * spp + s]);
                }
                path.push(self.rx[dst]);
                (path, false)
            }
            LinkTable::Dragonfly {
                routers_per_group,
                hosts_per_router,
                groups,
                local,
                global,
            } => {
                let (a, h) = (*routers_per_group, *hosts_per_router);
                let (sg, sr) = (src / (a * h), (src / h) % a);
                let (dg, dr) = (dst / (a * h), (dst / h) % a);
                let mut path = vec![self.tx[src]];
                if sg == dg {
                    if sr != dr {
                        path.push(local[(sg * a + sr) * a + dr]);
                    }
                } else {
                    // Minimal route: the gateway router of a group toward
                    // group g is router g % a (one global link per ordered
                    // group pair).
                    let gw_s = dg % a;
                    let gw_d = sg % a;
                    if sr != gw_s {
                        path.push(local[(sg * a + sr) * a + gw_s]);
                    }
                    path.push(global[sg * *groups + dg]);
                    if gw_d != dr {
                        path.push(local[(dg * a + gw_d) * a + dr]);
                    }
                }
                path.push(self.rx[dst]);
                (path, false)
            }
        }
    }

    /// NIC transmit resource of a node.
    pub fn tx(&self, node: usize) -> ResourceId {
        self.tx[node]
    }

    /// NIC receive resource of a node.
    pub fn rx(&self, node: usize) -> ResourceId {
        self.rx[node]
    }

    /// Intra-node memory channel of a node.
    pub fn mem(&self, node: usize) -> ResourceId {
        self.mem[node]
    }

    /// Number of fabric link resources (zero for the non-blocking fabric).
    pub fn num_links(&self) -> usize {
        match &self.links {
            LinkTable::None => 0,
            LinkTable::FatTree {
                leaf_up,
                leaf_down,
                spine_up,
                spine_down,
                ..
            } => leaf_up.len() + leaf_down.len() + spine_up.len() + spine_down.len(),
            LinkTable::Dragonfly { local, global, .. } => local.len() + global.len(),
        }
    }
}

/// How [`NodeMap::grouped`] spreads logical nodes over topology groups
/// (fat-tree pods, dragonfly groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPlacement {
    /// Fill each group completely before starting the next: logical node `k`
    /// is physical node `k`. Collectives see mostly intra-group traffic.
    Block,
    /// Deal logical nodes across groups like cards: logical node `k` is slot
    /// `k / ngroups` of group `k % ngroups`. Collectives see mostly
    /// inter-group traffic — the adversarial placement.
    RoundRobin,
}

/// Mapping of ranks to nodes.
///
/// The paper uses the "natural" assignment: MPI ranks on a node are numbered
/// consecutively (`node = rank / ppn`), with ranks assigned row by row in one
/// plane of the process mesh and then plane by plane (§V-D).
#[derive(Debug, Clone)]
pub struct NodeMap {
    node_of: Vec<usize>,
    nodes: usize,
}

impl NodeMap {
    /// Consecutive ("natural") placement: ranks `[k·ppn, (k+1)·ppn)` live on
    /// node `k`. The node count is `ceil(nranks / ppn)`.
    pub fn natural(nranks: usize, ppn: usize) -> NodeMap {
        assert!(nranks >= 1 && ppn >= 1);
        let node_of = (0..nranks).map(|r| r / ppn).collect::<Vec<_>>();
        let nodes = nranks.div_ceil(ppn);
        NodeMap { node_of, nodes }
    }

    /// Round-robin placement across `nodes` nodes (rank r → node r % nodes).
    pub fn round_robin(nranks: usize, nodes: usize) -> NodeMap {
        assert!(nranks >= 1 && nodes >= 1);
        NodeMap {
            node_of: (0..nranks).map(|r| r % nodes).collect(),
            nodes,
        }
    }

    /// Explicit placement.
    pub fn custom(node_of: Vec<usize>) -> NodeMap {
        assert!(!node_of.is_empty());
        let nodes = node_of.iter().copied().max().unwrap_or(0) + 1;
        NodeMap { node_of, nodes }
    }

    /// Placement over a grouped topology (fat-tree pods of
    /// `nodes_per_group = leaves_per_pod · hosts_per_leaf` hosts, or
    /// dragonfly groups of `routers_per_group · hosts_per_router` hosts).
    ///
    /// Ranks fill logical nodes consecutively (`ppn` per node, as in
    /// [`NodeMap::natural`]); `placement` then decides which *physical* node
    /// each logical node occupies: [`GroupPlacement::Block`] packs groups one
    /// after another, [`GroupPlacement::RoundRobin`] deals consecutive
    /// logical nodes to different groups.
    pub fn grouped(
        nranks: usize,
        ppn: usize,
        nodes_per_group: usize,
        ngroups: usize,
        placement: GroupPlacement,
    ) -> NodeMap {
        assert!(nranks >= 1 && ppn >= 1 && nodes_per_group >= 1 && ngroups >= 1);
        let logical_nodes = nranks.div_ceil(ppn);
        assert!(
            logical_nodes <= nodes_per_group * ngroups,
            "{logical_nodes} nodes do not fit in {ngroups} groups of {nodes_per_group}"
        );
        let phys = |k: usize| match placement {
            GroupPlacement::Block => k,
            GroupPlacement::RoundRobin => (k % ngroups) * nodes_per_group + k / ngroups,
        };
        let node_of: Vec<usize> = (0..nranks).map(|r| phys(r / ppn)).collect();
        let nodes = node_of.iter().copied().max().unwrap_or(0) + 1;
        NodeMap { node_of, nodes }
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of nodes actually used.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_mapping_is_consecutive() {
        let m = NodeMap::natural(10, 4);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(9), 2);
        assert!(m.same_node(4, 7));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    fn round_robin_mapping() {
        let m = NodeMap::round_robin(6, 4);
        assert_eq!(m.node_of(5), 1);
        assert_eq!(m.nodes(), 4);
    }

    #[test]
    fn custom_mapping_counts_nodes() {
        let m = NodeMap::custom(vec![0, 2, 2, 1]);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.nranks(), 4);
    }

    #[test]
    fn resources_distinguish_intra_and_inter() {
        let spec = ClusterSpec::new(3, MachineProfile::test_profile());
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        assert_eq!(net.num_resources(), 9);
        let (inter, intra) = res.path(0, 2);
        assert!(!intra);
        assert_eq!(inter, vec![res.tx(0), res.rx(2)]);
        let (local, intra) = res.path(1, 1);
        assert!(intra);
        assert_eq!(local, vec![res.mem(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        ClusterSpec::new(0, MachineProfile::test_profile());
    }

    fn small_fat_tree() -> Fabric {
        // 2 pods × 2 leaves × 2 hosts = 8 hosts, 2 spines/pod, 2 cores/spine.
        Fabric::FatTree {
            pods: 2,
            leaves_per_pod: 2,
            hosts_per_leaf: 2,
            spines_per_pod: 2,
            cores_per_spine: 2,
            link_bw: 10e9,
        }
    }

    #[test]
    fn fat_tree_paths_use_expected_hops() {
        let spec =
            ClusterSpec::new(8, MachineProfile::test_profile()).with_fabric(small_fat_tree());
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        // 8 nodes × 3 + links: leaf 2·2·2 per direction = 16, spine 2·2·2
        // per direction = 16.
        assert_eq!(res.num_links(), 32);
        assert_eq!(net.num_resources(), 24 + 32);

        // Same leaf (nodes 0 and 1 under pod 0, leaf 0): NICs only.
        let (p, intra) = res.path(0, 1);
        assert!(!intra);
        assert_eq!(p.len(), 2);

        // Same pod, different leaf (0 → 2): tx, leaf-up, leaf-down, rx.
        let (p, _) = res.path(0, 2);
        assert_eq!(p.len(), 4);

        // Different pod (0 → 4): tx, leaf-up, spine-up, spine-down,
        // leaf-down, rx.
        let (p, _) = res.path(0, 4);
        assert_eq!(p.len(), 6);

        // Intra-node stays memory-only.
        let (p, intra) = res.path(3, 3);
        assert!(intra);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn fat_tree_routes_are_deterministic_and_destination_hashed() {
        let spec =
            ClusterSpec::new(8, MachineProfile::test_profile()).with_fabric(small_fat_tree());
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        // Same (src, dst) twice → identical route.
        assert_eq!(res.path(1, 6), res.path(1, 6));
        // Different destinations under the same remote leaf may still pick
        // different spines (d-mod-k: spine = dst % spines_per_pod).
        let (p6, _) = res.path(1, 6);
        let (p7, _) = res.path(1, 7);
        assert_ne!(p6[1], p7[1], "dst 6 and 7 should hash to different spines");
    }

    #[test]
    fn dragonfly_paths_use_expected_hops() {
        // 3 groups × 2 routers × 2 hosts = 12 hosts.
        let fabric = Fabric::Dragonfly {
            groups: 3,
            routers_per_group: 2,
            hosts_per_router: 2,
            local_bw: 8e9,
            global_bw: 4e9,
        };
        let spec = ClusterSpec::new(12, MachineProfile::test_profile()).with_fabric(fabric);
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        assert_eq!(res.num_links(), 3 * 4 + 9);

        // Same router (0 → 1): NICs only.
        assert_eq!(res.path(0, 1).0.len(), 2);
        // Same group, different router (0 → 2): one local hop.
        assert_eq!(res.path(0, 2).0.len(), 3);
        // Different group (0 → 4, group 0 router 0 → group 1 router 0):
        // gateway of group 0 toward group 1 is router 1 % 2 = 1, so the
        // route is tx, local(0→1), global(0→1), rx — the destination router
        // 0 of group 1 is that group's return gateway only if sg % a hits
        // it; here gw_d = 0 % 2 = 0 = dst router, so no exit-side local hop.
        assert_eq!(res.path(0, 4).0.len(), 4);
        // Deterministic.
        assert_eq!(res.path(0, 4), res.path(0, 4));
    }

    #[test]
    fn fabric_rejects_overfull_cluster() {
        let result = std::panic::catch_unwind(|| {
            ClusterSpec::new(9, MachineProfile::test_profile()).with_fabric(small_fat_tree())
        });
        assert!(result.is_err(), "8-slot fabric must reject 9 nodes");
    }

    #[test]
    fn grouped_block_packs_groups() {
        // 8 logical nodes (16 ranks, ppn 2) over 4 groups of 2 nodes.
        let m = NodeMap::grouped(16, 2, 2, 4, GroupPlacement::Block);
        assert_eq!(m.nodes(), 8);
        // Ranks 0..4 land in group 0 (nodes 0, 1).
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 1);
        assert_eq!(m.node_of(4), 2);
    }

    #[test]
    fn grouped_round_robin_deals_across_groups() {
        let m = NodeMap::grouped(16, 2, 2, 4, GroupPlacement::RoundRobin);
        // Logical node k → group k % 4, slot k / 4.
        assert_eq!(m.node_of(0), 0); // logical 0 → group 0 slot 0 → phys 0
        assert_eq!(m.node_of(2), 2); // logical 1 → group 1 slot 0 → phys 2
        assert_eq!(m.node_of(4), 4); // logical 2 → group 2 slot 0 → phys 4
        assert_eq!(m.node_of(8), 1); // logical 4 → group 0 slot 1 → phys 1
        assert_eq!(m.nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn grouped_rejects_overflow() {
        NodeMap::grouped(100, 1, 2, 4, GroupPlacement::Block);
    }

    #[test]
    fn fat_tree_uplink_contention_is_modeled() {
        // Two hosts on the same leaf sending to hosts on another pod via the
        // same spine must share that leaf's uplink.
        let spec =
            ClusterSpec::new(8, MachineProfile::test_profile()).with_fabric(Fabric::FatTree {
                pods: 2,
                leaves_per_pod: 2,
                hosts_per_leaf: 2,
                spines_per_pod: 1,
                cores_per_spine: 1,
                link_bw: 1e9,
            });
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        let (pa, _) = res.path(0, 4);
        let (pb, _) = res.path(1, 5);
        // Both routes traverse leaf 0's single uplink.
        assert_eq!(pa[1], pb[1]);
        use crate::flow::FlowSpec;
        let fa = net.add(FlowSpec {
            resources: pa,
            cap: 100e9,
            bytes: 1e6,
        });
        let fb = net.add(FlowSpec {
            resources: pb,
            cap: 100e9,
            bytes: 1e6,
        });
        assert!((net.rate(fa) - 0.5e9).abs() < 1e3);
        assert!((net.rate(fb) - 0.5e9).abs() < 1e3);
    }
}
