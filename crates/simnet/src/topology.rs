//! Cluster topology: nodes, their network resources, and the mapping of
//! ranks (processes) onto nodes.
//!
//! The fabric itself (a fat tree with six core switches on Stampede2) is
//! assumed non-blocking, as is standard for flow-level models of full-bisection
//! fat trees: only the NICs (one transmit and one receive resource per node)
//! and the intra-node memory channel constrain transfers.

use crate::flow::{FlowNet, ResourceId, ResourceKind};
use crate::profile::MachineProfile;

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Hardware/software constants.
    pub profile: MachineProfile,
}

impl ClusterSpec {
    /// A cluster of `nodes` identical nodes with the given profile.
    pub fn new(nodes: usize, profile: MachineProfile) -> ClusterSpec {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterSpec { nodes, profile }
    }

    /// Register this cluster's resources into a [`FlowNet`] and return the
    /// lookup table.
    pub fn build_resources(&self, net: &mut FlowNet) -> ClusterResources {
        let mut tx = Vec::with_capacity(self.nodes);
        let mut rx = Vec::with_capacity(self.nodes);
        let mut mem = Vec::with_capacity(self.nodes);
        for node in 0..self.nodes {
            let n = node as u32;
            tx.push(net.add_resource_kind(self.profile.nic_bw, ResourceKind::NicTx(n)));
            rx.push(net.add_resource_kind(self.profile.nic_bw, ResourceKind::NicRx(n)));
            mem.push(net.add_resource_kind(self.profile.node_mem_bw, ResourceKind::Mem(n)));
        }
        ClusterResources { tx, rx, mem }
    }
}

/// Resource ids for each node, produced by [`ClusterSpec::build_resources`].
#[derive(Debug, Clone)]
pub struct ClusterResources {
    tx: Vec<ResourceId>,
    rx: Vec<ResourceId>,
    mem: Vec<ResourceId>,
}

impl ClusterResources {
    /// Assemble from explicit per-node resource ids (ids must have been
    /// registered in the same order `build_resources` uses: tx, rx, mem per
    /// node).
    pub fn from_parts(
        tx: Vec<ResourceId>,
        rx: Vec<ResourceId>,
        mem: Vec<ResourceId>,
    ) -> ClusterResources {
        assert!(tx.len() == rx.len() && rx.len() == mem.len());
        ClusterResources { tx, rx, mem }
    }

    /// Resources consumed by a transfer from `src` node to `dst` node, plus
    /// whether it is intra-node.
    pub fn path(&self, src: usize, dst: usize) -> (Vec<ResourceId>, bool) {
        if src == dst {
            (vec![self.mem[src]], true)
        } else {
            (vec![self.tx[src], self.rx[dst]], false)
        }
    }

    /// NIC transmit resource of a node.
    pub fn tx(&self, node: usize) -> ResourceId {
        self.tx[node]
    }

    /// NIC receive resource of a node.
    pub fn rx(&self, node: usize) -> ResourceId {
        self.rx[node]
    }

    /// Intra-node memory channel of a node.
    pub fn mem(&self, node: usize) -> ResourceId {
        self.mem[node]
    }
}

/// Mapping of ranks to nodes.
///
/// The paper uses the "natural" assignment: MPI ranks on a node are numbered
/// consecutively (`node = rank / ppn`), with ranks assigned row by row in one
/// plane of the process mesh and then plane by plane (§V-D).
#[derive(Debug, Clone)]
pub struct NodeMap {
    node_of: Vec<usize>,
    nodes: usize,
}

impl NodeMap {
    /// Consecutive ("natural") placement: ranks `[k·ppn, (k+1)·ppn)` live on
    /// node `k`. The node count is `ceil(nranks / ppn)`.
    pub fn natural(nranks: usize, ppn: usize) -> NodeMap {
        assert!(nranks >= 1 && ppn >= 1);
        let node_of = (0..nranks).map(|r| r / ppn).collect::<Vec<_>>();
        let nodes = nranks.div_ceil(ppn);
        NodeMap { node_of, nodes }
    }

    /// Round-robin placement across `nodes` nodes (rank r → node r % nodes).
    pub fn round_robin(nranks: usize, nodes: usize) -> NodeMap {
        assert!(nranks >= 1 && nodes >= 1);
        NodeMap {
            node_of: (0..nranks).map(|r| r % nodes).collect(),
            nodes,
        }
    }

    /// Explicit placement.
    pub fn custom(node_of: Vec<usize>) -> NodeMap {
        assert!(!node_of.is_empty());
        let nodes = node_of.iter().copied().max().unwrap_or(0) + 1;
        NodeMap { node_of, nodes }
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of nodes actually used.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_mapping_is_consecutive() {
        let m = NodeMap::natural(10, 4);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(9), 2);
        assert!(m.same_node(4, 7));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    fn round_robin_mapping() {
        let m = NodeMap::round_robin(6, 4);
        assert_eq!(m.node_of(5), 1);
        assert_eq!(m.nodes(), 4);
    }

    #[test]
    fn custom_mapping_counts_nodes() {
        let m = NodeMap::custom(vec![0, 2, 2, 1]);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.nranks(), 4);
    }

    #[test]
    fn resources_distinguish_intra_and_inter() {
        let spec = ClusterSpec::new(3, MachineProfile::test_profile());
        let mut net = FlowNet::new();
        let res = spec.build_resources(&mut net);
        assert_eq!(net.num_resources(), 9);
        let (inter, intra) = res.path(0, 2);
        assert!(!intra);
        assert_eq!(inter, vec![res.tx(0), res.rx(2)]);
        let (local, intra) = res.path(1, 1);
        assert!(intra);
        assert_eq!(local, vec![res.mem(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        ClusterSpec::new(0, MachineProfile::test_profile());
    }
}
