//! The discrete-event engine with serialized actors.
//!
//! Actor (rank) code runs either on OS threads that *block* in communication
//! calls (thread mode, exactly like an MPI program) or as stackful
//! [`Fiber`]s that *yield* at the same points (event-driven mode, which
//! scales to tens of thousands of ranks on one core). Either way the engine
//! serializes execution: at any moment exactly one of {an actor, an event
//! callback} runs. Virtual time advances only inside the scheduler loop.
//!
//! # Determinism
//!
//! The scheduler interleaves two deterministic orders:
//!
//! * **Events** are totally ordered by [`EventKey`] `(time, class, origin,
//!   seq)`. Actor-posted events carry the actor's id and a per-actor
//!   sequence number; engine-posted events carry [`ENGINE_ORIGIN`] and an
//!   engine counter (which is itself deterministic because only one context
//!   runs at a time).
//! * **Actor releases** are totally ordered by `(wake time, actor id)`.
//!
//! At each step the scheduler picks the earlier of the two; an actor release
//! wins a time tie against an event. Because actors may only schedule events
//! at or after their own local clocks and wakes never target the past, the
//! executed sequence — and therefore every virtual timestamp, trace span
//! order, and verify log — is identical across runs and independent of OS
//! thread scheduling.
//!
//! # Actor protocol
//!
//! An actor is registered with [`Engine::register_actor`] (threads) or
//! [`Engine::register_fiber_at`] (fibers) together with its [`ParkCell`].
//! The actor's body must call [`Engine::await_release`] on that cell before
//! touching anything else, park only via [`Engine::park`] **on its own
//! registered cell**, and call [`Engine::actor_finished`] when done
//! (normally via a drop guard). Wakes directed at a registered cell are
//! routed through the scheduler's ready queue; waking an unregistered cell
//! would release a thread outside the serialization discipline, so all
//! cells parked on must be registered.
//!
//! # Lock ordering
//!
//! `Engine`'s core mutex and each [`ParkCell`]'s mutex are never held
//! simultaneously. Higher layers (simmpi) take their own state lock *before*
//! calling into the engine; engine callbacks and fiber bodies run with the
//! core lock released.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::fiber::{self, Fiber};
use crate::flow::{FlowId, FlowNet, FlowSpec, ResourceId, ResourceKind, ResourceStats};
use crate::time::{SimDur, SimTime};
use crate::topology::{ClusterResources, ClusterSpec};
use crate::trace::{Trace, TraceEdge, TraceSpan};

/// Origin id used for events scheduled by the engine itself (flow
/// completions, timer chains created inside callbacks).
pub const ENGINE_ORIGIN: u32 = u32::MAX;

/// Event class for flow-completion events (sorts after same-time actor
/// events so that, e.g., a wake posted "at" a flow's completion instant is
/// handled deterministically).
pub const CLASS_FLOW: u8 = 200;

/// Cell id meaning "not registered with the engine".
const ACTOR_NONE: u32 = u32::MAX;

/// A callback run by the event loop at its scheduled virtual time, with the
/// core lock released.
pub type Action = Box<dyn FnOnce(&Engine) + Send>;

/// Total ordering key for events: `(time, class, origin, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Virtual time the event fires.
    pub time: SimTime,
    /// Secondary ordering class; lower classes fire first at equal times.
    pub class: u8,
    /// Posting actor (or [`ENGINE_ORIGIN`]).
    pub origin: u32,
    /// Per-origin monotonic sequence number.
    pub seq: u64,
}

enum Slot {
    Call(Action),
    FlowDone(FlowId),
}

struct FlowMeta {
    key: EventKey,
    on_complete: Option<Action>,
    /// When the flow started, for queueing-delay accounting.
    started: SimTime,
    /// Seconds the flow would take at its full per-flow cap with no
    /// contention; the excess of actual over this is queueing delay.
    ideal_secs: f64,
}

/// Snapshot of one resource's registration and accumulated utilization.
#[derive(Debug, Clone)]
pub struct ResourceEntry {
    /// What the resource models.
    pub kind: ResourceKind,
    /// Registered capacity in bytes/second.
    pub capacity: f64,
    /// Busy/overlap time integrals, bytes carried, concurrency high-water.
    pub stats: ResourceStats,
}

/// Snapshot of network-level accounting, taken via [`Engine::net_stats`].
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// All registered resources, in registration order.
    pub resources: Vec<ResourceEntry>,
    /// Flows that ran to completion.
    pub completed_flows: u64,
    /// Sum over completed flows of (actual duration − contention-free
    /// duration at the flow's own cap), in seconds.
    pub total_queue_delay_secs: f64,
    /// Largest single-flow queueing delay, in seconds.
    pub max_queue_delay_secs: f64,
}

/// How a parked actor was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// Normal wake; the actor's clock becomes the wake time.
    Normal,
    /// The simulation deadlocked: no runnable actor and no pending event.
    Deadlock,
}

#[derive(Default)]
struct CellState {
    pending: Option<SimTime>,
    deadlock: bool,
}

/// Per-actor parking spot. An actor parks on its cell inside blocking
/// calls; the scheduler releases it at its turn in `(time, id)` order.
pub struct ParkCell {
    state: Mutex<CellState>,
    cv: Condvar,
    /// The actor id this cell was registered under ([`ACTOR_NONE`] while
    /// unregistered). Lets [`Engine::wake`] route wakes to the ready queue.
    id: AtomicU32,
}

impl Default for ParkCell {
    fn default() -> Self {
        Self::new()
    }
}

impl ParkCell {
    /// Fresh, unarmed cell.
    pub fn new() -> ParkCell {
        ParkCell {
            state: Mutex::new(CellState::default()),
            cv: Condvar::new(),
            id: AtomicU32::new(ACTOR_NONE),
        }
    }

    /// Block the calling thread until woken; returns the wake time.
    fn wait(&self) -> (SimTime, WakeKind) {
        let mut st = self.state.lock();
        loop {
            if st.deadlock {
                return (SimTime::ZERO, WakeKind::Deadlock);
            }
            if let Some(t) = st.pending.take() {
                return (t, WakeKind::Normal);
            }
            self.cv.wait(&mut st);
        }
    }

    /// Deposit a pending wake at `t` (repeated wakes merge to the latest
    /// time) and notify any parked thread. No scheduler involvement.
    fn deposit(&self, t: SimTime) {
        let mut st = self.state.lock();
        st.pending = Some(st.pending.map_or(t, |p| p.max(t)));
        drop(st);
        self.cv.notify_all();
    }

    /// Engine-free wake: deposit a pending wake at `t` (repeated wakes merge
    /// to the latest time) and notify any parked thread. For wall-clock
    /// runtimes that reuse the cell as a plain parking spot without the
    /// virtual-time engine's scheduling. Never mix the `_direct` methods
    /// with [`Engine::park`]/[`Engine::wake`] on the same cell.
    pub fn wake_direct(&self, t: SimTime) {
        self.deposit(t);
    }

    /// Engine-free park: block until a pending wake is deposited, returning
    /// the wake time.
    pub fn park_direct(&self) -> SimTime {
        let mut st = self.state.lock();
        loop {
            if let Some(t) = st.pending.take() {
                return t;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Engine-free park with a timeout: block until a pending wake arrives
    /// or `timeout` elapses. Returns the wake time, or `None` on timeout —
    /// wall-clock runtimes use the timeout to poll an abort flag so a real
    /// deadlock does not hang the process forever.
    pub fn park_timeout_direct(&self, timeout: std::time::Duration) -> Option<SimTime> {
        let mut st = self.state.lock();
        loop {
            if let Some(t) = st.pending.take() {
                return Some(t);
            }
            if self.cv.wait_for(&mut st, timeout).timed_out() {
                return st.pending.take();
            }
        }
    }

    /// Engine-free: consume a pending wake without sleeping, if one exists.
    pub fn take_pending_direct(&self) -> Option<SimTime> {
        self.state.lock().pending.take()
    }
}

/// How an actor's suspended continuation is stored.
enum ActorSlot {
    /// Actor body runs on an OS thread parked on the cell.
    Thread(Arc<ParkCell>),
    /// Actor body is a fiber; `None` while the fiber is running (the
    /// scheduler takes it out to resume it outside the core lock).
    Fiber(Option<Fiber>, Arc<ParkCell>),
}

impl ActorSlot {
    fn cell(&self) -> &Arc<ParkCell> {
        match self {
            ActorSlot::Thread(c) => c,
            ActorSlot::Fiber(_, c) => c,
        }
    }
}

struct Core {
    now: SimTime,
    queue: BTreeMap<EventKey, Slot>,
    live: usize,
    engine_seq: u64,
    flows: FlowNet,
    flow_meta: BTreeMap<FlowId, FlowMeta>,
    flows_settled_at: SimTime,
    actors: BTreeMap<u32, ActorSlot>,
    /// Actors awaiting release, ordered by `(wake time, id)`.
    ready: BTreeSet<(SimTime, u32)>,
    /// Pending release time per ready actor (wakes merge to the max).
    ready_time: BTreeMap<u32, SimTime>,
    /// The actor currently running, if any. While set, the scheduler waits.
    current: Option<u32>,
    trace: Option<Trace>,
    completed_flows: u64,
    total_queue_delay_secs: f64,
    max_queue_delay_secs: f64,
    deadlocked: bool,
    /// Actor ids that were parked when deadlock was declared.
    deadlock_actors: Vec<u32>,
    stopped: bool,
}

/// The virtual-time discrete-event engine. Shared by reference between the
/// scheduler thread and all actor threads/fibers.
pub struct Engine {
    core: Mutex<Core>,
    cv: Condvar,
}

const DEADLOCK_MSG: &str = "simulation deadlock: every rank is blocked and no event is pending \
                            (mismatched send/recv or collective call order?)";

impl Engine {
    /// New engine at virtual time zero with no resources or actors.
    pub fn new() -> Engine {
        Engine {
            core: Mutex::new(Core {
                now: SimTime::ZERO,
                queue: BTreeMap::new(),
                live: 0,
                engine_seq: 0,
                flows: FlowNet::new(),
                flow_meta: BTreeMap::new(),
                flows_settled_at: SimTime::ZERO,
                actors: BTreeMap::new(),
                ready: BTreeSet::new(),
                ready_time: BTreeMap::new(),
                current: None,
                trace: None,
                completed_flows: 0,
                total_queue_delay_secs: 0.0,
                max_queue_delay_secs: 0.0,
                deadlocked: false,
                deadlock_actors: Vec::new(),
                stopped: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enable span tracing (for Fig.-6-style timelines).
    pub fn enable_trace(&self) {
        self.core.lock().trace = Some(Trace::new());
    }

    /// Record a span if tracing is enabled.
    pub fn record_span(&self, span: TraceSpan) {
        if let Some(t) = self.core.lock().trace.as_mut() {
            t.push(span);
        }
    }

    /// Record a happens-before edge if tracing is enabled.
    pub fn record_edge(&self, edge: TraceEdge) {
        if let Some(t) = self.core.lock().trace.as_mut() {
            t.push_edge(edge);
        }
    }

    /// Take the accumulated trace, if tracing was enabled.
    pub fn take_trace(&self) -> Option<Trace> {
        self.core.lock().trace.take()
    }

    /// Register a network resource (must happen before flows use it).
    pub fn add_resource(&self, capacity: f64) -> ResourceId {
        self.core.lock().flows.add_resource(capacity)
    }

    /// Register a network resource labeled with what it models, for
    /// utilization accounting (see [`Engine::net_stats`]).
    pub fn add_resource_kind(&self, capacity: f64, kind: ResourceKind) -> ResourceId {
        self.core.lock().flows.add_resource_kind(capacity, kind)
    }

    /// Register a whole cluster's resources (NICs, memory channels, and —
    /// for fat-tree/dragonfly fabrics — per-link resources) in one lock
    /// acquisition and return the routing table.
    pub fn build_cluster(&self, spec: &ClusterSpec) -> ClusterResources {
        spec.build_resources(&mut self.core.lock().flows)
    }

    /// Snapshot per-resource utilization and flow-level queueing-delay
    /// accounting. Utilization integrals are settled up to the engine's
    /// current virtual time before the snapshot is taken.
    pub fn net_stats(&self) -> NetStats {
        let mut core = self.core.lock();
        let now = core.now;
        core.settle_flows(now);
        core.flows.settle_all();
        NetStats {
            resources: core
                .flows
                .resources()
                .map(|(_, kind, capacity, stats)| ResourceEntry {
                    kind,
                    capacity,
                    stats,
                })
                .collect(),
            completed_flows: core.completed_flows,
            total_queue_delay_secs: core.total_queue_delay_secs,
            max_queue_delay_secs: core.max_queue_delay_secs,
        }
    }

    /// Number of trace spans that were clamped on insertion (end before
    /// start). Zero when tracing is off. See [`Trace::clamped`].
    pub fn clamped_spans(&self) -> usize {
        self.core.lock().trace.as_ref().map_or(0, Trace::clamped)
    }

    /// Current virtual time of the event loop. Actor code should use its own
    /// local clock; this is primarily for event callbacks.
    pub fn now(&self) -> SimTime {
        self.core.lock().now
    }

    /// Whether the run ended in deadlock.
    pub fn deadlocked(&self) -> bool {
        self.core.lock().deadlocked
    }

    /// Actor ids that were parked when deadlock was declared (empty if the
    /// run did not deadlock). Higher layers use this to build wait-for
    /// diagnoses.
    pub fn deadlocked_actors(&self) -> Vec<u32> {
        self.core.lock().deadlock_actors.clone()
    }

    /// Register a thread-backed actor, ready to be released at time zero.
    /// The actor's body must call [`Engine::await_release`] on `cell` before
    /// doing anything else.
    pub fn register_actor(&self, id: u32, cell: Arc<ParkCell>) {
        self.register_actor_at(id, cell, SimTime::ZERO);
    }

    /// Register a thread-backed actor that becomes ready at `ready_at`
    /// (e.g. a collective-op job released at its post time).
    pub fn register_actor_at(&self, id: u32, cell: Arc<ParkCell>, ready_at: SimTime) {
        self.register_slot(id, ActorSlot::Thread(cell), ready_at);
    }

    /// Register a fiber-backed actor that becomes ready at `ready_at`. The
    /// scheduler resumes the fiber at its turns; the fiber's body must call
    /// [`Engine::await_release`] on `cell` first, park only via
    /// [`Engine::park`] on `cell`, and call [`Engine::actor_finished`]
    /// before returning.
    pub fn register_fiber_at(&self, id: u32, fiber: Fiber, cell: Arc<ParkCell>, ready_at: SimTime) {
        self.register_slot(id, ActorSlot::Fiber(Some(fiber), cell), ready_at);
    }

    fn register_slot(&self, id: u32, slot: ActorSlot, ready_at: SimTime) {
        assert!(id != ACTOR_NONE, "actor id {id} is reserved");
        slot.cell().id.store(id, Ordering::Relaxed);
        let mut core = self.core.lock();
        debug_assert!(ready_at >= core.now, "actor {id} registered in the past");
        assert!(
            core.actors.insert(id, slot).is_none(),
            "actor {id} registered twice"
        );
        core.live += 1;
        core.ready.insert((ready_at, id));
        core.ready_time.insert(id, ready_at);
    }

    /// Mark an actor finished (called from the actor's body, including on
    /// unwind).
    // An unknown id here is engine-state corruption; crashing is correct.
    #[allow(clippy::expect_used)]
    pub fn actor_finished(&self, id: u32) {
        let mut core = self.core.lock();
        core.actors.remove(&id).expect("finishing unknown actor");
        core.live -= 1;
        if let Some(t) = core.ready_time.remove(&id) {
            core.ready.remove(&(t, id));
        }
        if core.current == Some(id) {
            core.current = None;
            self.cv.notify_all();
        }
    }

    /// Block the calling actor until the scheduler releases it for the
    /// first time; returns the release time. Must be the first engine call
    /// an actor's body makes (for fibers it just consumes the deposited
    /// release time).
    pub fn await_release(&self, cell: &ParkCell) -> SimTime {
        if fiber::in_fiber() {
            // The scheduler deposits the release time before resuming.
            cell.state.lock().pending.take().unwrap_or(SimTime::ZERO)
        } else {
            match cell.wait() {
                (t, WakeKind::Normal) => t,
                (_, WakeKind::Deadlock) => panic!("{DEADLOCK_MSG}"),
            }
        }
    }

    /// Schedule an action at an explicit key. Panics on key collision —
    /// callers must use unique per-origin sequence numbers.
    pub fn schedule(&self, key: EventKey, action: Action) {
        let mut core = self.core.lock();
        assert!(!core.stopped, "scheduling after the simulation has stopped");
        let prev = core.queue.insert(key, Slot::Call(action));
        assert!(prev.is_none(), "event key collision: {key:?}");
    }

    /// Schedule an action with an engine-assigned sequence number. The
    /// engine counter is deterministic because exactly one context (actor or
    /// callback) runs at a time.
    pub fn schedule_engine(&self, time: SimTime, class: u8, action: Action) -> EventKey {
        let mut core = self.core.lock();
        assert!(!core.stopped, "scheduling after stop");
        let key = EventKey {
            time,
            class,
            origin: ENGINE_ORIGIN,
            seq: core.engine_seq,
        };
        core.engine_seq += 1;
        let prev = core.queue.insert(key, Slot::Call(action));
        debug_assert!(prev.is_none());
        key
    }

    /// Cancel a previously scheduled action. Returns it if it had not fired.
    pub fn cancel(&self, key: EventKey) -> Option<Action> {
        match self.core.lock().queue.remove(&key) {
            Some(Slot::Call(a)) => Some(a),
            Some(Slot::FlowDone(_)) => panic!("cannot cancel a flow event"),
            None => None,
        }
    }

    /// Start a bulk transfer. Must be called from an event callback (so that
    /// the flow starts exactly at the callback's virtual time);
    /// `on_complete` runs when the last byte arrives.
    ///
    /// Returns the flow id (useful only for diagnostics).
    pub fn start_flow(
        &self,
        resources: Vec<ResourceId>,
        cap: f64,
        bytes: f64,
        on_complete: Action,
    ) -> FlowId {
        let mut core = self.core.lock();
        assert!(!core.stopped, "starting a flow after stop");
        let now = core.now;
        core.settle_flows(now);
        let id = core.flows.add(FlowSpec {
            resources,
            cap,
            bytes,
        });
        let eta = core.flows.eta_secs(id);
        assert!(
            eta.is_finite(),
            "flow {id:?} has infinite ETA (zero rate with bytes remaining)"
        );
        let seq = core.engine_seq;
        core.engine_seq += 1;
        let key = EventKey {
            time: now + SimDur::from_secs_f64(eta),
            class: CLASS_FLOW,
            origin: ENGINE_ORIGIN,
            seq,
        };
        core.flow_meta.insert(
            id,
            FlowMeta {
                key,
                on_complete: Some(on_complete),
                started: now,
                ideal_secs: if cap > 0.0 { bytes / cap } else { 0.0 },
            },
        );
        let prev = core.queue.insert(key, Slot::FlowDone(id));
        debug_assert!(prev.is_none(), "flow key collision");
        core.apply_rate_changes(Some(id));
        id
    }

    /// Release a parked actor at virtual time `t`. May be called before the
    /// actor has actually gone to sleep (the wake is then consumed
    /// immediately); repeated wakes merge to the latest time. The cell must
    /// belong to a registered actor.
    pub fn wake(&self, cell: &ParkCell, t: SimTime) {
        let id = cell.id.load(Ordering::Relaxed);
        let mut core = self.core.lock();
        let routed = id != ACTOR_NONE && core.current != Some(id) && core.actors.contains_key(&id);
        if routed {
            // The target is parked (or walking toward its park): queue the
            // release; the scheduler will deposit the wake at its turn.
            let c = &mut *core;
            match c.ready_time.entry(id) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let old = *e.get();
                    if t > old {
                        c.ready.remove(&(old, id));
                        c.ready.insert((t, id));
                        *e.get_mut() = t;
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(t);
                    c.ready.insert((t, id));
                }
            }
        } else {
            // Self-wake of the running actor (or an unregistered cell):
            // deposit directly; `park`/`consume_pending` picks it up without
            // a scheduler round-trip.
            drop(core);
            cell.deposit(t);
        }
    }

    /// Consume a pending wake on `cell` without sleeping. Waiters that find
    /// their condition satisfied *without* parking call this to clear a
    /// self-wake deposited while they were running.
    pub fn consume_pending(&self, cell: &ParkCell) -> Option<SimTime> {
        cell.state.lock().pending.take()
    }

    /// Declare the calling actor blocked and sleep until the scheduler
    /// releases it. Returns the wake time; panics with a diagnostic if the
    /// simulation deadlocked. Must be called on the actor's own registered
    /// cell.
    pub fn park(&self, cell: &ParkCell) -> SimTime {
        // A wake deposited while we were running (self-wake): consume it
        // without a scheduler round-trip — the actor just keeps running,
        // which is exactly what the old runnable-count engine did.
        if let Some(t) = cell.state.lock().pending.take() {
            return t;
        }
        if fiber::in_fiber() {
            {
                let mut core = self.core.lock();
                debug_assert_eq!(
                    core.current,
                    Some(cell.id.load(Ordering::Relaxed)),
                    "fiber parking on a cell it is not registered under"
                );
                core.current = None;
            }
            // The scheduler is blocked inside `Fiber::resume`; yielding
            // returns control to it. It resumes us with a deposited wake
            // (or the deadlock flag).
            fiber::fiber_yield();
            let mut st = cell.state.lock();
            if st.deadlock {
                drop(st);
                panic!("{DEADLOCK_MSG}");
            }
            match st.pending.take() {
                Some(t) => t,
                None => {
                    drop(st);
                    panic!("fiber resumed without a pending wake");
                }
            }
        } else {
            {
                let mut core = self.core.lock();
                core.current = None;
                self.cv.notify_all();
            }
            match cell.wait() {
                (t, WakeKind::Normal) => t,
                (_, WakeKind::Deadlock) => panic!("{DEADLOCK_MSG}"),
            }
        }
    }

    /// Run the scheduler until all actors have finished (or deadlock).
    /// Typically run on the caller's thread while thread-actors block and
    /// fiber-actors are resumed inline.
    // The `expect`s below assert queue/flow-table agreement — invariants
    // whose violation means the engine itself is broken, not user error.
    #[allow(clippy::expect_used)]
    pub fn run_loop(&self) {
        enum Work {
            Event(Action),
            ReleaseThread(Arc<ParkCell>, SimTime),
            RunFiber(u32, Fiber, Arc<ParkCell>, SimTime),
            Deadlock(Vec<Arc<ParkCell>>, Vec<Fiber>),
            Return,
        }
        loop {
            let work: Work = {
                let mut core = self.core.lock();
                loop {
                    if core.stopped {
                        break Work::Return;
                    }
                    if core.current.is_some() {
                        // A thread-actor is running; wait for it to park or
                        // finish. (Fiber-actors never leave `current` set
                        // across a scheduler iteration.)
                        self.cv.wait(&mut core);
                        continue;
                    }
                    if core.live == 0 {
                        core.stopped = true;
                        break Work::Return;
                    }
                    let next_actor = core.ready.first().copied();
                    let next_event = core.queue.keys().next().copied();
                    match (next_actor, next_event) {
                        (None, None) => {
                            // Deadlock: release everyone with a diagnostic.
                            core.deadlocked = true;
                            core.deadlock_actors = core.actors.keys().copied().collect();
                            core.stopped = true;
                            let mut cells = Vec::new();
                            let mut fibers = Vec::new();
                            for slot in core.actors.values_mut() {
                                cells.push(slot.cell().clone());
                                if let ActorSlot::Fiber(f, _) = slot {
                                    if let Some(f) = f.take() {
                                        fibers.push(f);
                                    }
                                }
                            }
                            break Work::Deadlock(cells, fibers);
                        }
                        (Some((ta, id)), ev) if ev.is_none_or(|k| ta <= k.time) => {
                            // Release the earliest ready actor; actors win
                            // ties against same-time events.
                            core.ready.remove(&(ta, id));
                            core.ready_time.remove(&id);
                            if ta > core.now {
                                core.now = ta;
                            }
                            core.current = Some(id);
                            match core.actors.get_mut(&id).expect("ready actor missing") {
                                ActorSlot::Thread(cell) => {
                                    break Work::ReleaseThread(cell.clone(), ta);
                                }
                                ActorSlot::Fiber(fiber, cell) => {
                                    let fiber = fiber.take().expect("fiber already running");
                                    break Work::RunFiber(id, fiber, cell.clone(), ta);
                                }
                            }
                        }
                        // The guard above always passes when there is no
                        // event, so this arm only ever sees `Some` events.
                        (_, _) => {
                            let (key, slot) = core.queue.pop_first().expect("queue non-empty");
                            debug_assert!(key.time >= core.now, "event in the past: {key:?}");
                            core.now = key.time;
                            match slot {
                                Slot::Call(a) => break Work::Event(a),
                                Slot::FlowDone(id) => {
                                    let now = core.now;
                                    core.settle_flows(now);
                                    let mut meta =
                                        core.flow_meta.remove(&id).expect("flow meta missing");
                                    core.flows.remove(id);
                                    core.apply_rate_changes(None);
                                    let actual = now.saturating_since(meta.started).as_secs_f64();
                                    let delay = (actual - meta.ideal_secs).max(0.0);
                                    core.completed_flows += 1;
                                    core.total_queue_delay_secs += delay;
                                    core.max_queue_delay_secs =
                                        core.max_queue_delay_secs.max(delay);
                                    let cb =
                                        meta.on_complete.take().expect("flow callback missing");
                                    break Work::Event(cb);
                                }
                            }
                        }
                    }
                }
            };
            match work {
                Work::Return => return,
                Work::Event(a) => a(self),
                Work::ReleaseThread(cell, t) => {
                    // Hand the turn to the thread; the next scheduler
                    // iteration waits until it parks or finishes.
                    cell.deposit(t);
                }
                Work::RunFiber(id, mut fiber, cell, t) => {
                    cell.deposit(t);
                    fiber.resume();
                    // The fiber parked (put it back) or finished (its
                    // `actor_finished` removed the map entry; drop it).
                    let mut core = self.core.lock();
                    if let Some(ActorSlot::Fiber(slot, _)) = core.actors.get_mut(&id) {
                        debug_assert!(slot.is_none());
                        *slot = Some(fiber);
                    } else {
                        debug_assert!(fiber.done());
                    }
                }
                Work::Deadlock(cells, fibers) => {
                    for cell in cells {
                        let mut st = cell.state.lock();
                        st.deadlock = true;
                        drop(st);
                        cell.cv.notify_all();
                    }
                    // Resume each suspended fiber once: its `park` sees the
                    // deadlock flag and panics, unwinding the fiber stack
                    // through the actor's own panic handling.
                    for mut fiber in fibers {
                        if !fiber.done() {
                            fiber.resume();
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Number of flows currently in the network (diagnostics).
    pub fn active_flows(&self) -> usize {
        self.core.lock().flows.num_flows()
    }

    /// Drop any fibers still registered (defensive cleanup after an
    /// abnormal run). Fibers are cancelled outside the core lock so their
    /// unwinding destructors may call back into the engine.
    pub fn drain_fibers(&self) {
        let mut held = Vec::new();
        {
            let mut core = self.core.lock();
            for slot in core.actors.values_mut() {
                if let ActorSlot::Fiber(f, _) = slot {
                    if let Some(f) = f.take() {
                        held.push(f);
                    }
                }
            }
        }
        drop(held);
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Core {
    fn settle_flows(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.flows_settled_at);
        if dt > SimDur::ZERO {
            self.flows.progress(dt.as_secs_f64());
        }
        self.flows_settled_at = now;
    }

    /// Re-key the completion events of flows whose rates changed in the
    /// last add/remove. `skip` is a just-added flow whose event was created
    /// directly by the caller.
    // Every active flow has a meta entry and a queued completion event by
    // construction; a miss is engine-state corruption.
    #[allow(clippy::expect_used)]
    fn apply_rate_changes(&mut self, skip: Option<FlowId>) {
        let now = self.flows_settled_at;
        for id in self.flows.take_rate_changes() {
            if Some(id) == skip {
                continue;
            }
            let eta = self.flows.eta_secs(id);
            assert!(
                eta.is_finite(),
                "flow {id:?} has infinite ETA (zero rate with bytes remaining)"
            );
            let t = now + SimDur::from_secs_f64(eta);
            let meta = self.flow_meta.get_mut(&id).expect("meta for active flow");
            if meta.key.time != t {
                let slot = self
                    .queue
                    .remove(&meta.key)
                    .expect("flow completion event missing");
                debug_assert!(matches!(slot, Slot::FlowDone(_)));
                meta.key.time = t;
                let prev = self.queue.insert(meta.key, slot);
                debug_assert!(prev.is_none(), "flow key collision");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    /// Drive a single-actor simulation: the actor body gets (engine, its
    /// registered cell) after the scheduler releases it.
    fn run_one_actor<F>(engine: Arc<Engine>, body: F)
    where
        F: FnOnce(&Engine, &Arc<ParkCell>) + Send + 'static,
    {
        let cell = Arc::new(ParkCell::new());
        engine.register_actor(0, cell.clone());
        let eng2 = engine.clone();
        let t = thread::spawn(move || {
            eng2.await_release(&cell);
            body(&eng2, &cell);
            eng2.actor_finished(0);
        });
        engine.run_loop();
        t.join().unwrap();
    }

    #[test]
    fn timer_event_wakes_actor_at_scheduled_time() {
        let engine = Arc::new(Engine::new());
        let woke_at = Arc::new(AtomicU64::new(0));
        let woke_at2 = woke_at.clone();
        run_one_actor(engine, move |eng, cell| {
            // Schedule a wake at t = 5us, then park.
            let cell_for_event = cell.clone();
            eng.schedule(
                EventKey {
                    time: SimTime(5_000),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    e.wake(&cell_for_event, SimTime(5_000));
                }),
            );
            let t = eng.park(cell);
            woke_at2.store(t.as_nanos(), Ordering::SeqCst);
        });
        assert_eq!(woke_at.load(Ordering::SeqCst), 5_000);
    }

    #[test]
    fn events_fire_in_key_order() {
        let engine = Arc::new(Engine::new());
        let order = Arc::new(Mutex::new(Vec::<u32>::new()));
        let order2 = order.clone();
        run_one_actor(engine, move |eng, cell| {
            for (i, t) in [(0u32, 9_000u64), (1, 3_000), (2, 3_000)] {
                let order3 = order2.clone();
                let cell2 = cell.clone();
                eng.schedule(
                    EventKey {
                        time: SimTime(t),
                        class: 0,
                        origin: 0,
                        seq: i as u64,
                    },
                    Box::new(move |e| {
                        order3.lock().push(i);
                        if i == 0 {
                            // Last event by time: release the actor.
                            e.wake(&cell2, SimTime(9_000));
                        }
                    }),
                );
            }
            eng.park(cell);
        });
        // Same-time events (1, 2) fire in seq order, then the later one (0).
        assert_eq!(*order.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn flow_completion_time_matches_bandwidth() {
        let engine = Arc::new(Engine::new());
        let nic = engine.add_resource(1e9); // 1 GB/s
        let done_at = Arc::new(AtomicU64::new(0));
        let done_at2 = done_at.clone();
        run_one_actor(engine, move |eng, cell| {
            let cell2 = cell.clone();
            // Kick off the flow from an event so it starts at t=0 exactly.
            eng.schedule(
                EventKey {
                    time: SimTime(0),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    let cell3 = cell2.clone();
                    e.start_flow(
                        vec![nic],
                        1e9,
                        1_000_000.0, // 1 MB at 1 GB/s = 1 ms
                        Box::new(move |e2| {
                            e2.wake(&cell3, e2.now());
                        }),
                    );
                }),
            );
            let t = eng.park(cell);
            done_at2.store(t.as_nanos(), Ordering::SeqCst);
        });
        let t = done_at.load(Ordering::SeqCst);
        assert!((t as i64 - 1_000_000).abs() < 10, "flow done at {t}ns");
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Two 1 MB flows on one 1 GB/s NIC started together: each runs at
        // 0.5 GB/s and finishes at 2 ms (fair sharing, work conservation).
        let engine = Arc::new(Engine::new());
        let nic = engine.add_resource(1e9);
        let done = Arc::new(Mutex::new(Vec::<u64>::new()));
        let done2 = done.clone();
        run_one_actor(engine, move |eng, cell| {
            let cell2 = cell.clone();
            let done3 = done2.clone();
            eng.schedule(
                EventKey {
                    time: SimTime(0),
                    class: 0,
                    origin: 0,
                    seq: 0,
                },
                Box::new(move |e| {
                    let remaining = Arc::new(AtomicU64::new(2));
                    for _ in 0..2 {
                        let done4 = done3.clone();
                        let cell3 = cell2.clone();
                        let rem = remaining.clone();
                        e.start_flow(
                            vec![nic],
                            1e9,
                            1_000_000.0,
                            Box::new(move |e2| {
                                done4.lock().push(e2.now().as_nanos());
                                if rem.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    e2.wake(&cell3, e2.now());
                                }
                            }),
                        );
                    }
                }),
            );
            eng.park(cell);
        });
        let times = done.lock().clone();
        assert_eq!(times.len(), 2);
        for t in times {
            assert!((t as i64 - 2_000_000).abs() < 10, "finished at {t}ns");
        }
    }

    #[test]
    fn deadlock_is_detected_and_panics_parked_actor() {
        let engine = Arc::new(Engine::new());
        let cell = Arc::new(ParkCell::new());
        engine.register_actor(0, cell.clone());
        let eng2 = engine.clone();
        let t = thread::spawn(move || {
            eng2.await_release(&cell);
            // Park with nothing scheduled: guaranteed deadlock.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng2.park(&cell);
            }));
            eng2.actor_finished(0);
            assert!(result.is_err(), "park should panic on deadlock");
        });
        engine.run_loop();
        t.join().unwrap();
        assert!(engine.deadlocked());
        assert_eq!(engine.deadlocked_actors(), vec![0]);
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        let engine = Arc::new(Engine::new());
        run_one_actor(engine, move |eng, cell| {
            // Self-wake (e.g. a request completed before the waiter looked).
            eng.wake(cell, SimTime(42));
            let t = eng.park(cell);
            assert_eq!(t.as_nanos(), 42);
        });
    }

    #[test]
    fn merged_wakes_keep_latest_time() {
        let engine = Arc::new(Engine::new());
        run_one_actor(engine, move |eng, cell| {
            eng.wake(cell, SimTime(10));
            eng.wake(cell, SimTime(30));
            eng.wake(cell, SimTime(20));
            assert_eq!(eng.park(cell).as_nanos(), 30);
        });
    }

    /// Run `n` fiber actors under the scheduler; each body gets its index,
    /// the engine, and its registered cell.
    fn run_fiber_actors<F>(engine: &Arc<Engine>, n: usize, body: F)
    where
        F: Fn(usize, Arc<Engine>, Arc<ParkCell>) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        for i in 0..n {
            let cell = Arc::new(ParkCell::new());
            let eng2 = engine.clone();
            let cell2 = cell.clone();
            let body2 = body.clone();
            let fiber = Fiber::new(
                128 * 1024,
                Box::new(move || {
                    eng2.await_release(&cell2);
                    body2(i, eng2.clone(), cell2.clone());
                    eng2.actor_finished(i as u32);
                }),
            );
            engine.register_fiber_at(i as u32, fiber, cell, SimTime::ZERO);
        }
        engine.run_loop();
    }

    #[test]
    fn fiber_actors_sleep_and_wake_in_time_order() {
        let engine = Arc::new(Engine::new());
        let order = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
        let order2 = order.clone();
        run_fiber_actors(&engine, 8, move |i, eng, cell| {
            let seq = AtomicU64::new(0);
            // Staggered virtual sleeps; lower i sleeps longer.
            let mut t = 0u64;
            for round in 0..5u64 {
                let at = t + 1_000 * (8 - i as u64) + round;
                let cell2 = cell.clone();
                eng.schedule(
                    EventKey {
                        time: SimTime(at),
                        class: 1,
                        origin: i as u32,
                        seq: seq.fetch_add(1, Ordering::Relaxed),
                    },
                    Box::new(move |e| e.wake(&cell2, SimTime(at))),
                );
                t = eng.park(&cell).as_nanos();
                assert_eq!(t, at);
            }
            order2.lock().push((t, i));
        });
        let got = order.lock().clone();
        assert_eq!(got.len(), 8);
        // Completion order must be sorted by (final wake time, id).
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn fiber_deadlock_unwinds_all_fibers() {
        let engine = Arc::new(Engine::new());
        let unwound = Arc::new(AtomicU64::new(0));
        let u2 = unwound.clone();
        run_fiber_actors(&engine, 4, move |i, eng, cell| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Everyone parks with nothing scheduled after actor 0's
                // startup event: guaranteed deadlock.
                eng.park(&cell);
            }));
            if let Err(p) = result {
                let msg = p.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(msg.contains("simulation deadlock"), "actor {i}: {msg}");
                u2.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(engine.deadlocked());
        assert_eq!(unwound.load(Ordering::SeqCst), 4);
        assert_eq!(engine.deadlocked_actors().len(), 4);
    }

    #[test]
    fn mixed_thread_and_fiber_actors_interleave_by_time_and_id() {
        // One thread actor (id 0) and two fiber actors (ids 1, 2), all
        // sleeping to the same instants: release order must be id order.
        let engine = Arc::new(Engine::new());
        let order = Arc::new(Mutex::new(Vec::<u32>::new()));

        let tcell = Arc::new(ParkCell::new());
        engine.register_actor(0, tcell.clone());
        let eng_t = engine.clone();
        let order_t = order.clone();
        let th = thread::spawn(move || {
            eng_t.await_release(&tcell);
            let seq = AtomicU64::new(0);
            for round in 0..3u64 {
                let at = (round + 1) * 1_000;
                let c2 = tcell.clone();
                eng_t.schedule(
                    EventKey {
                        time: SimTime(at),
                        class: 1,
                        origin: 0,
                        seq: seq.fetch_add(1, Ordering::Relaxed),
                    },
                    Box::new(move |e| e.wake(&c2, SimTime(at))),
                );
                eng_t.park(&tcell);
                order_t.lock().push(0);
            }
            eng_t.actor_finished(0);
        });

        for i in 1u32..3 {
            let cell = Arc::new(ParkCell::new());
            let eng2 = engine.clone();
            let cell2 = cell.clone();
            let order2 = order.clone();
            let fiber = Fiber::new(
                128 * 1024,
                Box::new(move || {
                    eng2.await_release(&cell2);
                    let seq = AtomicU64::new(0);
                    for round in 0..3u64 {
                        let at = (round + 1) * 1_000;
                        let c2 = cell2.clone();
                        eng2.schedule(
                            EventKey {
                                time: SimTime(at),
                                class: 1,
                                origin: i,
                                seq: seq.fetch_add(1, Ordering::Relaxed),
                            },
                            Box::new(move |e| e.wake(&c2, SimTime(at))),
                        );
                        eng2.park(&cell2);
                        order2.lock().push(i);
                    }
                    eng2.actor_finished(i);
                }),
            );
            engine.register_fiber_at(i, fiber, cell, SimTime::ZERO);
        }

        engine.run_loop();
        th.join().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn same_time_wakes_release_in_id_order_across_runs() {
        // The fig6 fix: same-virtual-time releases must be ordered by actor
        // id, identically on every run.
        let go = || {
            let engine = Arc::new(Engine::new());
            let order = Arc::new(Mutex::new(Vec::<usize>::new()));
            let order2 = order.clone();
            run_fiber_actors(&engine, 16, move |i, eng, cell| {
                let cell2 = cell.clone();
                eng.schedule(
                    EventKey {
                        time: SimTime(500),
                        class: 1,
                        origin: i as u32,
                        seq: 0,
                    },
                    Box::new(move |e| e.wake(&cell2, SimTime(500))),
                );
                eng.park(&cell);
                order2.lock().push(i);
            });
            Arc::try_unwrap(order).unwrap().into_inner()
        };
        let a = go();
        assert_eq!(a, (0..16).collect::<Vec<_>>());
        assert_eq!(a, go());
    }

    #[test]
    fn fiber_rank_panic_is_catchable_inside_fiber() {
        // A rank body panic caught inside the fiber (as simmpi does) lets
        // the rest of the simulation proceed.
        let engine = Arc::new(Engine::new());
        let survived = Arc::new(AtomicU64::new(0));
        let s2 = survived.clone();
        run_fiber_actors(&engine, 2, move |i, eng, cell| {
            if i == 0 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    panic!("rank 0 exploded");
                }));
                assert!(r.is_err());
            } else {
                let cell2 = cell.clone();
                eng.schedule(
                    EventKey {
                        time: SimTime(100),
                        class: 1,
                        origin: i as u32,
                        seq: 0,
                    },
                    Box::new(move |e| e.wake(&cell2, SimTime(100))),
                );
                eng.park(&cell);
                s2.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(survived.load(Ordering::SeqCst), 1);
        assert!(!engine.deadlocked());
    }
}
